"""XML substrate: parser, ``pre|size|level`` shredder, containers, serializer."""

from .document import (DocumentContainer, DocumentStore, NodeKind, NodeRef,
                       StoreSnapshot)
from .names import NamePool, QName
from .parser import XMLPullParser, parse_events
from .serializer import serialize_item, serialize_node, serialize_sequence, serialize_subtree
from .shredder import shred_document, shred_events, shred_file, shred_string

__all__ = [
    "DocumentContainer",
    "DocumentStore",
    "NamePool",
    "NodeKind",
    "NodeRef",
    "QName",
    "StoreSnapshot",
    "XMLPullParser",
    "parse_events",
    "serialize_item",
    "serialize_node",
    "serialize_sequence",
    "serialize_subtree",
    "shred_document",
    "shred_events",
    "shred_file",
    "shred_string",
]
