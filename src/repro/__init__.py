"""repro — a reproduction of MonetDB/XQuery (Boncz et al., SIGMOD 2006).

A purely relational XQuery processor: XML documents are shredded into
``pre|size|level`` tables, XQuery is compiled by loop-lifting into relational
algebra over ``iter|pos|item`` sequence tables, XPath location steps run on
the loop-lifted staircase join, and a property-driven optimization layer
recognises value joins and avoids sorts.

Quickstart::

    from repro import MonetXQuery

    mxq = MonetXQuery()
    mxq.load_document_text("<site><a>1</a><a>2</a></site>", name="doc.xml")
    result = mxq.query('for $a in /site/a return $a/text()')
    print(result.serialize())
"""

from .errors import (ReproError, RelationalError, StorageError, XMLError,
                     XQueryError, XQuerySyntaxError, XQueryTypeError,
                     XQueryUnsupportedError)
from .xquery.engine import (EngineOptions, MonetXQuery, PlanCacheStats,
                            PreparedQuery, QueryResult)
from .xquery.updates import XMLUpdater
from .server import QueryServer, SubplanCache

__version__ = "0.1.0"

__all__ = [
    "EngineOptions",
    "MonetXQuery",
    "PlanCacheStats",
    "PreparedQuery",
    "QueryResult",
    "QueryServer",
    "ReproError",
    "RelationalError",
    "StorageError",
    "SubplanCache",
    "XMLError",
    "XMLUpdater",
    "XQueryError",
    "XQuerySyntaxError",
    "XQueryTypeError",
    "XQueryUnsupportedError",
    "__version__",
]
