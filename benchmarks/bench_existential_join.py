"""Figure 8 — existential theta-join strategies.

Strategy (a) joins and then removes duplicate iteration pairs; strategy (b)
pushes the join beyond min/max aggregates so no duplicates arise.  Expected
shape: for order comparisons over sequences with many items per iteration the
aggregate plan wins, and both return identical pairs.
"""

import random

import pytest

from repro.xquery.joins import existential_join


def make_inputs(groups: int, items_per_group: int, seed: int):
    rng = random.Random(seed)
    left = [(group, rng.uniform(0, 100))
            for group in range(1, groups + 1)
            for _ in range(items_per_group)]
    right = [(group, rng.uniform(0, 100))
             for group in range(1, groups + 1)
             for _ in range(items_per_group)]
    return left, right


@pytest.mark.parametrize("strategy", ["dedup", "aggregate"])
@pytest.mark.parametrize("items_per_group", [4, 16])
def test_fig8_existential_strategies(benchmark, strategy, items_per_group):
    left, right = make_inputs(groups=40, items_per_group=items_per_group, seed=1)

    def run():
        return len(existential_join(left, right, "lt", strategy=strategy))

    pairs = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig8"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["items_per_group"] = items_per_group
    benchmark.extra_info["result_pairs"] = pairs
    # both strategies must agree on the result
    assert existential_join(left, right, "lt", strategy="dedup") == \
        existential_join(left, right, "lt", strategy="aggregate")
