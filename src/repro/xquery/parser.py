"""Recursive-descent parser for the supported XQuery subset.

The grammar covers what the XMark benchmark queries (and typical data-
oriented XQuery) need: a query prolog with function and variable
declarations, FLWOR expressions (``for``/``let``/``where``/``order by``/
``return``), quantified expressions, conditionals, and/or, general and value
comparisons, arithmetic, path expressions with all staircase-join axes and
predicates, function calls, literals, parenthesised expressions and direct
element constructors with attribute value templates and enclosed
expressions.

Anything outside the subset raises :class:`~repro.errors.XQuerySyntaxError`
or :class:`~repro.errors.XQueryUnsupportedError` with a message naming the
unsupported construct.
"""

from __future__ import annotations

from typing import Any

from ..errors import XQuerySyntaxError, XQueryUnsupportedError
from ..staircase.axes import Axis
from ..xml.parser import unescape
from . import ast
from .lexer import Lexer, Token, is_name_start


_GENERAL_COMPARISONS = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le",
                        ">": "gt", ">=": "ge"}
_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
_ADDITIVE = {"+": "add", "-": "sub"}
_MULTIPLICATIVE = {"*": "mul", "div": "div", "idiv": "idiv", "mod": "mod"}

_AXIS_NAMES = {
    "child": Axis.CHILD,
    "descendant": Axis.DESCENDANT,
    "descendant-or-self": Axis.DESCENDANT_OR_SELF,
    "parent": Axis.PARENT,
    "ancestor": Axis.ANCESTOR,
    "ancestor-or-self": Axis.ANCESTOR_OR_SELF,
    "following": Axis.FOLLOWING,
    "preceding": Axis.PRECEDING,
    "following-sibling": Axis.FOLLOWING_SIBLING,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
    "attribute": Axis.ATTRIBUTE,
    "self": Axis.SELF,
}

_KIND_TESTS = {"text", "node", "comment", "processing-instruction", "element"}

#: names that terminate an expression when they appear where a binary
#: operator could continue (FLWOR keywords etc.)
_CLAUSE_KEYWORDS = {"return", "where", "order", "stable", "ascending",
                    "descending", "satisfies", "then", "else", "in", "at",
                    "for", "let", "by", "empty"}


def parse(source: str) -> ast.Module:
    """Parse a query string into an :class:`~repro.xquery.ast.Module`."""
    return XQueryParser(source).parse_module()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (no prolog) — convenience for tests."""
    return parse(source).body


class XQueryParser:
    def __init__(self, source: str):
        self.lexer = Lexer(source)
        self.current: Token = self.lexer.next_token()

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    def _advance(self) -> Token:
        token = self.current
        self.current = self.lexer.next_token()
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}, found {self.current.value!r}")
        return self._advance()

    def _expect_name(self, name: str) -> Token:
        if not self.current.is_name(name):
            raise self._error(f"expected {name!r}, found {self.current.value!r}")
        return self._advance()

    def _error(self, message: str) -> XQuerySyntaxError:
        return self.lexer.error(message, position=self.current.start)

    # ------------------------------------------------------------------ #
    # module / prolog
    # ------------------------------------------------------------------ #
    def parse_module(self) -> ast.Module:
        functions: dict[str, ast.FunctionDecl] = {}
        variables: list[ast.VariableDecl] = []
        while self.current.is_name("declare"):
            self._advance()
            if self.current.is_name("function"):
                self._advance()
                declaration = self._parse_function_decl()
                functions[declaration.name] = declaration
            elif self.current.is_name("variable"):
                self._advance()
                variables.append(self._parse_variable_decl())
            elif self.current.is_name("namespace", "boundary-space", "option",
                                      "default", "base-uri"):
                # tolerated but ignored prolog declarations
                while not self.current.is_symbol(";") and self.current.kind != "eof":
                    self._advance()
                self._expect_symbol(";")
            else:
                raise XQueryUnsupportedError(
                    f"unsupported prolog declaration 'declare {self.current.value}'")
        body = self.parse_expr()
        if self.current.kind != "eof":
            raise self._error(f"unexpected trailing input {self.current.value!r}")
        return ast.Module(functions=functions, variables=variables, body=body)

    def _parse_function_decl(self) -> ast.FunctionDecl:
        if self.current.kind != "name":
            raise self._error("expected a function name")
        name = self._advance().value
        self._expect_symbol("(")
        parameters: list[str] = []
        while not self.current.is_symbol(")"):
            if self.current.kind != "variable":
                raise self._error("expected a parameter variable")
            parameters.append(self._advance().value)
            self._skip_type_annotation()
            if self.current.is_symbol(","):
                self._advance()
        self._expect_symbol(")")
        self._skip_return_type()
        self._expect_symbol("{")
        body = self.parse_expr()
        self._expect_symbol("}")
        if self.current.is_symbol(";"):
            self._advance()
        return ast.FunctionDecl(name=str(name), parameters=[str(p) for p in parameters],
                                body=body)

    def _parse_variable_decl(self) -> ast.VariableDecl:
        if self.current.kind != "variable":
            raise self._error("expected a variable name")
        name = self._advance().value
        self._skip_type_annotation()
        self._expect_symbol(":=")
        value = self.parse_expr_single()
        if self.current.is_symbol(";"):
            self._advance()
        return ast.VariableDecl(name=str(name), value=value)

    def _skip_type_annotation(self) -> None:
        if self.current.is_name("as"):
            self._advance()
            # a sequence type: name (possibly parenthesised) + occurrence marker
            if self.current.kind == "name":
                self._advance()
            if self.current.is_symbol("("):
                self._advance()
                self._expect_symbol(")")
            if self.current.is_symbol("?", "*", "+"):
                self._advance()

    def _skip_return_type(self) -> None:
        self._skip_type_annotation()

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expr(self) -> ast.Expr:
        first = self.parse_expr_single()
        if not self.current.is_symbol(","):
            return first
        items = [first]
        while self.current.is_symbol(","):
            self._advance()
            items.append(self.parse_expr_single())
        return ast.SequenceExpr(items)

    def parse_expr_single(self) -> ast.Expr:
        if self.current.is_name("for", "let"):
            return self._parse_flwor()
        if self.current.is_name("some", "every"):
            return self._parse_quantified()
        if self.current.is_name("if") :
            return self._parse_if()
        return self._parse_or()

    # -- FLWOR -------------------------------------------------------------- #
    def _parse_flwor(self) -> ast.FLWORExpr:
        clauses: list[ast.Expr] = []
        while self.current.is_name("for", "let"):
            keyword = self._advance().value
            while True:
                if self.current.kind != "variable":
                    raise self._error("expected a variable in FLWOR clause")
                variable = str(self._advance().value)
                self._skip_type_annotation()
                if keyword == "for":
                    position_variable = None
                    if self.current.is_name("at"):
                        self._advance()
                        if self.current.kind != "variable":
                            raise self._error("expected a positional variable after 'at'")
                        position_variable = str(self._advance().value)
                    self._expect_name("in")
                    sequence = self.parse_expr_single()
                    clauses.append(ast.ForClause(variable, sequence,
                                                 position_variable))
                else:
                    self._expect_symbol(":=")
                    value = self.parse_expr_single()
                    clauses.append(ast.LetClause(variable, value))
                if self.current.is_symbol(","):
                    self._advance()
                    continue
                break
        where = None
        if self.current.is_name("where"):
            self._advance()
            where = self.parse_expr_single()
        order_by: list[ast.OrderSpec] = []
        if self.current.is_name("stable"):
            self._advance()
        if self.current.is_name("order"):
            self._advance()
            self._expect_name("by")
            while True:
                key = self.parse_expr_single()
                descending = False
                if self.current.is_name("ascending"):
                    self._advance()
                elif self.current.is_name("descending"):
                    self._advance()
                    descending = True
                if self.current.is_name("empty"):
                    self._advance()
                    self._advance()          # greatest | least
                order_by.append(ast.OrderSpec(key, descending))
                if self.current.is_symbol(","):
                    self._advance()
                    continue
                break
        self._expect_name("return")
        return_expr = self.parse_expr_single()
        return ast.FLWORExpr(clauses=clauses, where=where, order_by=order_by,
                             return_expr=return_expr)

    def _parse_quantified(self) -> ast.QuantifiedExpr:
        quantifier = str(self._advance().value)
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            if self.current.kind != "variable":
                raise self._error("expected a variable in quantified expression")
            variable = str(self._advance().value)
            self._skip_type_annotation()
            self._expect_name("in")
            sequence = self.parse_expr_single()
            bindings.append((variable, sequence))
            if self.current.is_symbol(","):
                self._advance()
                continue
            break
        self._expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.QuantifiedExpr(quantifier, bindings, satisfies)

    def _parse_if(self) -> ast.IfExpr:
        self._expect_name("if")
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        self._expect_name("then")
        then_branch = self.parse_expr_single()
        self._expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.IfExpr(condition, then_branch, else_branch)

    # -- boolean / comparison / arithmetic ----------------------------------- #
    def _parse_or(self) -> ast.Expr:
        operands = [self._parse_and()]
        while self.current.is_name("or"):
            self._advance()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.OrExpr(operands)

    def _parse_and(self) -> ast.Expr:
        operands = [self._parse_comparison()]
        while self.current.is_name("and"):
            self._advance()
            operands.append(self._parse_comparison())
        if len(operands) == 1:
            return operands[0]
        return ast.AndExpr(operands)

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        if self.current.kind == "symbol" and self.current.value in _GENERAL_COMPARISONS:
            op = _GENERAL_COMPARISONS[str(self._advance().value)]
            right = self._parse_range()
            return ast.GeneralComparison(op, left, right)
        if self.current.kind == "name" and self.current.value in _VALUE_COMPARISONS:
            op = str(self._advance().value)
            right = self._parse_range()
            return ast.ValueComparison(op, left, right)
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self.current.is_name("to"):
            self._advance()
            right = self._parse_additive()
            return ast.RangeExpr(left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.kind == "symbol" and self.current.value in _ADDITIVE:
            op = _ADDITIVE[str(self._advance().value)]
            right = self._parse_multiplicative()
            left = ast.ArithmeticExpr(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while ((self.current.is_symbol("*"))
               or (self.current.kind == "name"
                   and self.current.value in ("div", "idiv", "mod"))):
            op = _MULTIPLICATIVE[str(self._advance().value)]
            right = self._parse_unary()
            left = ast.ArithmeticExpr(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_symbol("-"):
            self._advance()
            return ast.UnaryExpr(True, self._parse_unary())
        if self.current.is_symbol("+"):
            self._advance()
            return ast.UnaryExpr(False, self._parse_unary())
        return self._parse_path()

    # -- paths ---------------------------------------------------------------- #
    def _parse_path(self) -> ast.Expr:
        steps: list[ast.Expr] = []
        start: ast.Expr | None = None

        if self.current.is_symbol("/", "//"):
            absolute = True
            descendant = self.current.value == "//"
            self._advance()
            if descendant:
                steps.append(ast.AxisStep(Axis.DESCENDANT_OR_SELF,
                                          ast.NodeTestExpr(kind="node")))
            elif not self._at_step_start():
                # a lone "/" selects the document root
                return ast.PathExpr(start=None, steps=[], absolute=True)
            steps.append(self._parse_step())
        else:
            absolute = False
            first = self._parse_step()
            if not self.current.is_symbol("/", "//"):
                return self._step_as_expr(first)
            steps.append(first)

        while self.current.is_symbol("/", "//"):
            if self.current.value == "//":
                self._advance()
                steps.append(ast.AxisStep(Axis.DESCENDANT_OR_SELF,
                                          ast.NodeTestExpr(kind="node")))
            else:
                self._advance()
            steps.append(self._parse_step())

        if not absolute and steps and isinstance(steps[0], ast.FilterStep):
            start_step = steps.pop(0)
            if start_step.predicates:
                start = ast.FilterExpr(start_step.expression, start_step.predicates)
            else:
                start = start_step.expression
        return ast.PathExpr(start=start, steps=steps, absolute=absolute)

    def _step_as_expr(self, step: ast.Expr) -> ast.Expr:
        """A single step that is not followed by '/': unwrap primaries."""
        if isinstance(step, ast.FilterStep):
            if step.predicates:
                return ast.FilterExpr(step.expression, step.predicates)
            return step.expression
        return ast.PathExpr(start=None, steps=[step], absolute=False)

    def _at_step_start(self) -> bool:
        token = self.current
        if token.kind in ("name", "variable", "number", "string"):
            return True
        return token.is_symbol("@", ".", "..", "*", "(", "<")

    def _parse_step(self) -> ast.Expr:
        token = self.current
        # attribute abbreviation
        if token.is_symbol("@"):
            self._advance()
            node_test = self._parse_node_test(default_kind="attribute")
            predicates = self._parse_predicates()
            return ast.AxisStep(Axis.ATTRIBUTE, node_test, predicates)
        if token.is_symbol(".."):
            self._advance()
            return ast.AxisStep(Axis.PARENT, ast.NodeTestExpr(kind="node"),
                                self._parse_predicates())
        # explicit axis
        if token.kind == "name" and token.value in _AXIS_NAMES \
                and self._peek_is_axis_separator():
            axis = _AXIS_NAMES[str(self._advance().value)]
            self._expect_symbol("::")
            default_kind = "attribute" if axis is Axis.ATTRIBUTE else "element"
            node_test = self._parse_node_test(default_kind=default_kind)
            predicates = self._parse_predicates()
            return ast.AxisStep(axis, node_test, predicates)
        # kind tests and plain name tests (child axis)
        if token.is_symbol("*"):
            self._advance()
            return ast.AxisStep(Axis.CHILD, ast.NodeTestExpr(kind="element", name="*"),
                                self._parse_predicates())
        if token.kind == "name":
            if token.value in _KIND_TESTS and self._peek_is_symbol("("):
                node_test = self._parse_node_test(default_kind="element")
                return ast.AxisStep(Axis.CHILD, node_test, self._parse_predicates())
            if not self._peek_is_symbol("(") and not self._peek_is_symbol("{"):
                name = str(self._advance().value)
                return ast.AxisStep(Axis.CHILD,
                                    ast.NodeTestExpr(kind="element", name=name),
                                    self._parse_predicates())
        # fall back to a primary expression step
        primary = self._parse_primary()
        predicates = self._parse_predicates()
        return ast.FilterStep(primary, predicates)

    def _peek_is_axis_separator(self) -> bool:
        save = self.lexer.position
        next_token = self.lexer.next_token()
        self.lexer.position = save
        return next_token.is_symbol("::")

    def _peek_is_symbol(self, symbol: str) -> bool:
        save = self.lexer.position
        next_token = self.lexer.next_token()
        self.lexer.position = save
        return next_token.is_symbol(symbol)

    def _parse_node_test(self, *, default_kind: str) -> ast.NodeTestExpr:
        token = self.current
        if token.is_symbol("*"):
            self._advance()
            return ast.NodeTestExpr(kind=default_kind, name="*")
        if token.kind != "name":
            raise self._error(f"expected a node test, found {token.value!r}")
        name = str(self._advance().value)
        if name in _KIND_TESTS and self.current.is_symbol("("):
            self._advance()
            argument = None
            if self.current.kind in ("string", "name"):
                argument = str(self._advance().value)
            self._expect_symbol(")")
            kind = name
            return ast.NodeTestExpr(kind=kind, name=argument)
        return ast.NodeTestExpr(kind=default_kind, name=name)

    def _parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self.current.is_symbol("["):
            self._advance()
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        return predicates

    # -- primaries ------------------------------------------------------------ #
    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self._advance()
            return ast.Literal(str(token.value))
        if token.kind == "variable":
            self._advance()
            return ast.VarRef(str(token.value))
        if token.is_symbol("("):
            self._advance()
            if self.current.is_symbol(")"):
                self._advance()
                return ast.EmptySequence()
            expression = self.parse_expr()
            self._expect_symbol(")")
            return expression
        if token.is_symbol("."):
            self._advance()
            return ast.ContextItem()
        if token.is_symbol("<"):
            return self._parse_direct_constructor()
        if token.kind == "name":
            if self.current.value == "text" and self._peek_is_symbol("{"):
                self._advance()
                self._expect_symbol("{")
                content = self.parse_expr()
                self._expect_symbol("}")
                return ast.TextConstructor(content)
            if self.current.value == "element" and self._peek_is_symbol("{"):
                raise XQueryUnsupportedError(
                    "computed element constructors are not supported; "
                    "use direct constructors")
            if self._peek_is_symbol("("):
                return self._parse_function_call()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_function_call(self) -> ast.FunctionCall:
        name = str(self._advance().value)
        self._expect_symbol("(")
        arguments: list[ast.Expr] = []
        while not self.current.is_symbol(")"):
            arguments.append(self.parse_expr_single())
            if self.current.is_symbol(","):
                self._advance()
        self._expect_symbol(")")
        # strip the fn: prefix — the function library is prefix-free
        if name.startswith("fn:"):
            name = name[3:]
        return ast.FunctionCall(name, arguments)

    # ------------------------------------------------------------------ #
    # direct element constructors (raw character parsing)
    # ------------------------------------------------------------------ #
    def _parse_direct_constructor(self) -> ast.ElementConstructor:
        # self.current is the '<' token; raw parsing starts right after it
        self.lexer.position = self.current.end
        element = self._parse_raw_element()
        self._advance_after_raw()
        return element

    def _advance_after_raw(self) -> None:
        """Re-establish the one-token lookahead after raw character parsing."""
        self.current = self.lexer.next_token()

    def _raw_read_name(self) -> str:
        lexer = self.lexer
        start = lexer.position
        while not lexer.at_end() and (lexer.peek_char().isalnum()
                                      or lexer.peek_char() in "_-.:"):
            lexer.position += 1
        if start == lexer.position:
            raise lexer.error("expected a name in element constructor")
        return lexer.source[start:lexer.position]

    def _raw_skip_spaces(self) -> None:
        while not self.lexer.at_end() and self.lexer.peek_char().isspace():
            self.lexer.position += 1

    def _parse_raw_element(self) -> ast.ElementConstructor:
        lexer = self.lexer
        name = self._raw_read_name()
        attributes: list[tuple[str, ast.AttributeValue]] = []
        while True:
            self._raw_skip_spaces()
            char = lexer.peek_char()
            if char == "/":
                if lexer.peek_char(1) != ">":
                    raise lexer.error("malformed empty-element tag")
                lexer.position += 2
                return ast.ElementConstructor(name, attributes, [])
            if char == ">":
                lexer.position += 1
                content = self._parse_raw_content(name)
                return ast.ElementConstructor(name, attributes, content)
            attribute_name = self._raw_read_name()
            self._raw_skip_spaces()
            if lexer.peek_char() != "=":
                raise lexer.error("expected '=' in attribute")
            lexer.position += 1
            self._raw_skip_spaces()
            quote = lexer.peek_char()
            if quote not in "\"'":
                raise lexer.error("expected a quoted attribute value")
            lexer.position += 1
            attributes.append((attribute_name, self._parse_raw_value_template(quote)))

    def _parse_raw_value_template(self, quote: str) -> ast.AttributeValue:
        lexer = self.lexer
        parts: list[Any] = []
        text: list[str] = []
        while True:
            if lexer.at_end():
                raise lexer.error("unterminated attribute value")
            char = lexer.peek_char()
            if char == quote:
                lexer.position += 1
                break
            if char == "{":
                if lexer.peek_char(1) == "{":
                    text.append("{")
                    lexer.position += 2
                    continue
                if text:
                    parts.append(unescape("".join(text)))
                    text = []
                lexer.position += 1
                parts.append(self._parse_enclosed_expr())
                continue
            if char == "}" and lexer.peek_char(1) == "}":
                text.append("}")
                lexer.position += 2
                continue
            text.append(char)
            lexer.position += 1
        if text:
            parts.append(unescape("".join(text)))
        return ast.AttributeValue(parts)

    def _parse_enclosed_expr(self) -> ast.Expr:
        """Parse ``{ expr }`` starting right after the opening brace."""
        self._advance_after_raw()
        expression = self.parse_expr()
        if not self.current.is_symbol("}"):
            raise self._error("expected '}' to close the enclosed expression")
        # continue raw parsing right after the closing brace
        self.lexer.position = self.current.end
        return expression

    def _parse_raw_content(self, name: str) -> list[Any]:
        lexer = self.lexer
        content: list[Any] = []
        text: list[str] = []

        def flush_text(*, keep_whitespace: bool = False) -> None:
            if not text:
                return
            chunk = "".join(text)
            text.clear()
            if chunk.strip() or keep_whitespace:
                content.append(unescape(chunk))

        while True:
            if lexer.at_end():
                raise lexer.error(f"unterminated element constructor <{name}>")
            char = lexer.peek_char()
            if char == "<":
                if lexer.peek_char(1) == "/":
                    flush_text()
                    lexer.position += 2
                    end_name = self._raw_read_name()
                    self._raw_skip_spaces()
                    if lexer.peek_char() != ">":
                        raise lexer.error("malformed end tag")
                    lexer.position += 1
                    if end_name != name:
                        raise lexer.error(
                            f"mismatched end tag </{end_name}> for <{name}>")
                    return content
                if lexer.source.startswith("<!--", lexer.position):
                    end = lexer.source.find("-->", lexer.position)
                    if end == -1:
                        raise lexer.error("unterminated comment in constructor")
                    lexer.position = end + 3
                    continue
                flush_text()
                lexer.position += 1
                content.append(self._parse_raw_element())
                continue
            if char == "{":
                if lexer.peek_char(1) == "{":
                    text.append("{")
                    lexer.position += 2
                    continue
                flush_text(keep_whitespace=True)
                lexer.position += 1
                content.append(self._parse_enclosed_expr())
                continue
            if char == "}" and lexer.peek_char(1) == "}":
                text.append("}")
                lexer.position += 2
                continue
            text.append(char)
            lexer.position += 1
