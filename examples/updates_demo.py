"""Structural and value updates on a loaded document (Section 5.2).

Shows the page-wise update scheme in action: inserts and deletes touch only
a constant number of logical pages, and subsequent queries see the changes
after commit.

Run with:  python examples/updates_demo.py
"""

from repro import MonetXQuery, XMLUpdater


CATALOG = """
<catalog>
  <products>
    <product sku="A1"><name>Espresso machine</name><stock>4</stock></product>
    <product sku="B2"><name>Milk frother</name><stock>0</stock></product>
  </products>
  <orders/>
</catalog>
"""


def main() -> None:
    engine = MonetXQuery()
    engine.load_document_text(CATALOG, name="catalog.xml")
    print("products before update:",
          engine.query("count(//product)").items[0])

    updater = XMLUpdater(engine, "catalog.xml", page_size=32)

    # structural insert: a new product appended under <products>
    products = updater.select("/catalog/products")[0]
    stats = updater.insert_last(
        products, '<product sku="C3"><name>Grinder</name><stock>9</stock></product>')
    print(f"insert touched {stats.pages_touched} logical page(s), "
          f"appended {stats.pages_appended}")

    # structural insert at the front of <orders>
    orders = updater.select("/catalog/orders")[0]
    updater.insert_first(orders, '<order id="o1"><sku>A1</sku></order>')

    # value update: restock the milk frother
    stock_text = updater.select('/catalog/products/product[@sku = "B2"]/stock/text()')[0]
    updater.replace_value(stock_text, "12")

    # structural delete: drop the espresso machine
    espresso = updater.select('/catalog/products/product[@sku = "A1"]')[0]
    updater.delete(espresso)

    updater.commit()

    print("products after update: ",
          engine.query("count(//product)").items[0])
    print("restocked quantity:    ",
          engine.query('/catalog/products/product[@sku = "B2"]/stock/text()').strings())
    print("orders:                ",
          engine.query("count(//order)").items[0])
    print("\nupdated document:")
    print(engine.query("/catalog").serialize())


if __name__ == "__main__":
    main()
