"""Unit tests for columns, tables and the property framework."""

import pytest

from repro.errors import SchemaError
from repro.relational import Column, ColumnProps, Table
from repro.relational.properties import infer_column_props, is_dense_sequence


class TestColumn:
    def test_dense_constructor(self):
        column = Column.dense("iter", 4, base=1)
        assert list(column.values) == [1, 2, 3, 4]
        assert column.props.dense and column.props.key
        assert column.props.dense_base == 1

    def test_constant_constructor(self):
        column = Column.constant("pos", 1, 3)
        assert column.values == [1, 1, 1]
        assert column.props.const and column.props.const_value == 1

    def test_take_is_positional(self):
        column = Column("item", ["a", "b", "c", "d"])
        assert column.take([3, 0]).values == ["d", "a"]

    def test_take_out_of_range_raises(self):
        column = Column("item", [1, 2])
        with pytest.raises(Exception):
            column.take([5])

    def test_renamed_keeps_values_and_props(self):
        column = Column.dense("a", 3)
        renamed = column.renamed("b")
        assert renamed.name == "b"
        assert renamed.values == column.values
        assert renamed.props.dense

    def test_refresh_props_detects_constant(self):
        column = Column("c", [7, 7, 7])
        props = column.refresh_props()
        assert props.const and props.const_value == 7


class TestDenseInference:
    def test_dense_sequence_true(self):
        assert is_dense_sequence([5, 6, 7]) == (True, 5)

    def test_dense_sequence_false(self):
        assert is_dense_sequence([1, 3, 4]) == (False, 0)

    def test_empty_is_dense(self):
        assert is_dense_sequence([]) == (True, 0)

    def test_booleans_are_not_dense(self):
        assert is_dense_sequence([False, True]) == (False, 0)

    def test_infer_key(self):
        props = infer_column_props(["x", "y", "z"])
        assert props.key and not props.dense

    def test_infer_unhashable_values(self):
        props = infer_column_props([[1], [2]])
        assert not props.key


class TestTable:
    def test_from_dict_and_rows(self):
        table = Table.from_dict({"a": [1, 2], "b": ["x", "y"]})
        assert table.row_count == 2
        assert table.to_rows() == [(1, "x"), (2, "y")]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError):
            Table([Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_column_raises(self):
        with pytest.raises(SchemaError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_unknown_column_raises(self):
        table = Table.from_dict({"a": [1]})
        with pytest.raises(SchemaError):
            table.column("zzz")

    def test_take_preserves_order_props_when_monotone(self):
        table = Table.from_dict({"a": [1, 2, 3]}, order=("a",))
        sliced = table.take([0, 2], keep_order=True)
        assert sliced.props.order == ("a",)
        assert list(sliced.col("a")) == [1, 3]

    def test_ordered_on_prefix(self):
        table = Table.from_dict({"a": [1], "b": [2]}, order=("a", "b"))
        assert table.ordered_on("a")
        assert table.ordered_on("a", "b")
        assert not table.ordered_on("b")

    def test_group_order_property(self):
        table = Table.from_dict({"g": [1, 2, 1], "v": [1, 1, 2]})
        table.add_group_order(("v",), "g")
        assert table.props.group_ordered_on(("v",), "g")
        assert not table.props.group_ordered_on(("v",), "v")

    def test_describe_mentions_columns(self):
        table = Table.from_dict({"iter": [1, 2]}, infer_props=True)
        assert "iter" in table.describe()

    def test_empty_table(self):
        table = Table.empty(["iter", "pos", "item"])
        assert table.row_count == 0
        assert table.column_names == ("iter", "pos", "item")
