"""Figure 15 — scalability with respect to document size.

The paper normalises each query's elapsed time to the 110 MB document and
observes near-linear scaling, super-linear behaviour only for the quadratic
theta-join queries Q11/Q12, and sub-linear behaviour for the index-assisted
Q6/Q7/Q15/Q16.  Here three document sizes spanning ~one order of magnitude
are used; the same normalisation can be computed from the recorded times.
"""

import pytest

from repro.xmark import XMARK_QUERIES

from .conftest import BASE_SCALE, build_engine


SCALES = (BASE_SCALE, BASE_SCALE * 2, BASE_SCALE * 4)
QUERIES = (1, 2, 5, 6, 8, 11, 14, 15, 17, 20)

_ENGINES = {}


def engine_for(scale):
    if scale not in _ENGINES:
        _ENGINES[scale] = build_engine(scale)
    return _ENGINES[scale]


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query", QUERIES)
def test_fig15_scalability(benchmark, query, scale):
    engine = engine_for(scale)
    text = XMARK_QUERIES[query]

    def run():
        engine.reset_transient()
        return len(engine.query(text))

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig15"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["nodes"] = engine.store.get("auction.xml").node_count
    benchmark.extra_info["result_size"] = result
