"""XML update operators (Section 5.2) exposed at the engine level.

The W3C update facility was still a draft when the paper was written;
MonetDB/XQuery implemented the same functionality "by means of a series of
new XQuery operators with side effects".  We mirror that with an explicit
update API: an :class:`XMLUpdater` wraps a loaded document in the page-wise
updatable storage and offers

* value updates     — :meth:`XMLUpdater.replace_value`,
  :meth:`XMLUpdater.set_attribute`, :meth:`XMLUpdater.delete_attribute`,
* structural updates — :meth:`XMLUpdater.insert_first`,
  :meth:`XMLUpdater.insert_last`, :meth:`XMLUpdater.delete`,

where the update targets are selected with ordinary XQuery queries run
through the engine.  After a batch of updates, :meth:`XMLUpdater.commit`
republishes the updated document in the engine's document store so
subsequent queries observe the changes.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import UpdateError
from ..storage.updatable import UpdatableDocument, UpdateStats
from ..xml.document import DocumentContainer, NodeRef
from ..xml.parser import parse_events
from ..xml.shredder import shred_events
from .engine import MonetXQuery


class XMLUpdater:
    """Apply value and structural updates to one loaded document."""

    def __init__(self, engine: MonetXQuery, document_name: str, *,
                 page_size: int = 64, fill_factor: float = 0.75):
        self.engine = engine
        self.document_name = document_name
        container = engine.store.get(document_name)
        self.updatable = UpdatableDocument.from_container(
            container, page_size=page_size, fill_factor=fill_factor)

    # ------------------------------------------------------------------ #
    # target selection
    # ------------------------------------------------------------------ #
    def select(self, query: str) -> list[int]:
        """Run an XQuery returning nodes of this document; yields pre ranks."""
        result = self.engine.query(query, context=self.document_name)
        container = self.engine.store.get(self.document_name)
        targets: list[int] = []
        for item in result.items:
            if not isinstance(item, NodeRef) or item.container is not container:
                raise UpdateError(
                    "update target query must return nodes of the target document")
            if item.attr is not None:
                raise UpdateError("attribute targets are updated via set_attribute")
            targets.append(item.pre)
        return targets

    # ------------------------------------------------------------------ #
    # value updates
    # ------------------------------------------------------------------ #
    def replace_value(self, target_pre: int, new_value: str) -> UpdateStats:
        self.updatable.replace_value(target_pre, new_value)
        return self.updatable.stats

    def set_attribute(self, target_pre: int, name: str, value: str) -> UpdateStats:
        self.updatable.set_attribute(target_pre, name, value)
        return self.updatable.stats

    def delete_attribute(self, target_pre: int, name: str) -> UpdateStats:
        self.updatable.delete_attribute(target_pre, name)
        return self.updatable.stats

    # ------------------------------------------------------------------ #
    # structural updates
    # ------------------------------------------------------------------ #
    def _fragment_from_xml(self, xml_text: str) -> tuple[DocumentContainer, int]:
        fragment = DocumentContainer("(fragment)", order_key=0)
        root = shred_events(parse_events(xml_text), fragment,
                            add_document_node=False)
        return fragment, root

    def insert_first(self, target_pre: int, xml_text: str) -> UpdateStats:
        """``insert-first``: the fragment becomes the first child of the target."""
        fragment, root = self._fragment_from_xml(xml_text)
        self.updatable.insert_subtree(target_pre, fragment, root,
                                      as_first_child=True)
        return self.updatable.stats

    def insert_last(self, target_pre: int, xml_text: str) -> UpdateStats:
        """``insert-last``: the fragment becomes the last child of the target."""
        fragment, root = self._fragment_from_xml(xml_text)
        self.updatable.insert_subtree(target_pre, fragment, root,
                                      as_first_child=False)
        return self.updatable.stats

    def delete(self, target_pre: int) -> UpdateStats:
        """Delete the subtree rooted at the target node."""
        self.updatable.delete_subtree(target_pre)
        return self.updatable.stats

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def commit(self) -> DocumentContainer:
        """Re-publish the updated document under its name in the engine store.

        The swap is atomic (:meth:`DocumentStore.replace`): concurrent
        queries either see the complete old document or the complete new
        one, never a missing document or a half-committed state.  The
        store's schema version advances, invalidating cached plans and
        materialized subplan results.
        """
        updated = self.updatable.to_container(self.document_name)
        updated.name = self.document_name
        previous = self.engine.store.get(self.document_name)
        updated.order_key = previous.order_key
        self.engine.store.replace(updated)
        return updated
