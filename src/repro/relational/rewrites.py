"""The logical-plan rewrite optimizer.

Pathfinder rewrites its relational DAG before emitting physical algebra;
this module is the equivalent pass over the logical plans built by
:mod:`repro.xquery.planner`.  The rewrite families:

* **predicate pushdown** — a ``where`` conjunct that mentions exactly one
  of the FLWOR's own ``for`` variables (everything else constant: globals,
  the context item) is moved *into* that clause as a plan-level predicate,
  filtering the binding sequence before any join sees it,
* **join recognition** (Section 4.1, the ``indep`` property) — relocated
  from the ad-hoc runtime check the compiler used to perform: a ``for``
  clause whose binding sequence is *loop-invariant* (its free variables
  are disjoint from the enclosing bindings) paired with an existential
  comparison in the ``where`` clause is annotated as a value join.  The
  executor then evaluates the binding sequence once and theta-joins it
  against the outer loop instead of building a lifted Cartesian product.
  *All* such (clause, conjunct) pairs of a FLWOR are recognized, not just
  the first syntactic match,
* **cost-based join ordering** — per-subplan row estimates derived from
  the document store's per-tag element counts
  (:mod:`repro.relational.cardinality`) size both inputs of every
  recognized join: the smaller input is chosen as the hash build side,
  and independent join clauses are scheduled smallest-build-first (the
  executor restores the syntactic tuple order afterwards),
* **projection pushdown / dead-column pruning** — a required-columns
  analysis over the ``iter|pos|item`` encoding: contexts that ignore
  sequence order and positions (aggregates such as ``count``, existential
  comparisons, ``where`` conditions, quantifiers) propagate a reduced
  column requirement downward, letting the executor skip the sorts and
  ``rownum`` renumberings that only exist to maintain ``pos``,
* **common-subexpression sharing** — plans are hash-consed DAGs, so
  repeated subexpressions are already *structurally* shared; this pass
  marks the shared, side-effect-free nodes so the executor can memoise
  their result per (loop, environment) and execute them once,
* **cacheable-subplan marking** — loop-invariant absolute-path subplans
  (pure, free variables at most the context item) get a builder-
  independent structural fingerprint; the serving layer materializes
  their results *across queries* keyed on that fingerprint plus the
  document-store schema version and the context root,
* **step-chain fusion marking** — maximal chains of consecutive
  location steps that are predicate-free or carry a single purely
  positional predicate (``[k]``, ``[last()]``) are annotated so the
  executor can run them as one surrogate-free pipeline
  (``axis_step_chain``): the paired ``(iter, pre)`` int arrays of each
  staircase join feed the next join directly, positional predicates run
  as per-context counting on those buffers, and ``NodeRef`` boxing
  happens once, at the chain's end.  Chains never absorb shared
  (memoised) interior nodes; the executor additionally refuses to fuse
  across cross-query-cacheable nodes when a subplan cache is attached,
  so cache slots keep materialising,
* **codegen coverage marking** — every operator the plan-to-Python
  codegen stage (:mod:`repro.xquery.codegen`) can compile to a
  specialized closure is recorded, with per-node fallback reasons for
  the rest (node constructors, user functions), so ``explain()`` shows
  exactly which subtrees stay interpreted.

All analyses are side tables keyed by ``PlanNode.id``; only the FLWOR
rules rebuild plan nodes (moving conjuncts, adding the ``join``/``joins``/
``clause_order`` annotations), which is why they run first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from .cardinality import CardinalityEstimator, StoreStatistics
from .plan import (PlanBuilder, PlanNode, count_references, render_plan,
                   structural_fingerprint)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..xquery.planner import ModulePlan


FULL_COLUMNS = frozenset({"iter", "pos", "item"})
NO_POS = frozenset({"iter", "item"})
ITER_ONLY = frozenset({"iter"})

#: pseudo-variables threaded through the environment rather than bound by
#: user code: the context item and the dynamic position()/last() registers
PSEUDO_VARIABLES = frozenset({".", "fs:position", "fs:last"})

#: builtins whose result ignores the order and positions of the argument
#: sequence entirely (pure per-iteration folds)
_ORDER_FREE_AGGREGATES = frozenset({
    "count", "exists", "empty", "sum", "avg", "min", "max", "distinct-values",
})

#: builtins that only inspect the *first* item of each iteration — safe
#: under pruning because the executor's skips preserve within-iteration
#: scan order
_FIRST_ITEM_FUNCTIONS = frozenset({
    "string", "number", "data", "boolean", "not", "string-length",
    "contains", "starts-with", "ends-with", "upper-case", "lower-case",
    "normalize-space", "name", "local-name", "root", "floor", "ceiling",
    "round", "abs",
})

#: node kinds too cheap to be worth memoising even when shared
_TRIVIAL_KINDS = frozenset({
    "const", "empty", "var", "context", "root", "for", "let", "orderspec",
    "avt",
})


def _strip_fn(name: str) -> str:
    return name[3:] if name.startswith("fn:") else name


def flatten_conjuncts(where: PlanNode) -> list[PlanNode]:
    """The conjuncts of a ``where`` condition (nested ``and`` flattened).

    The rewrite rules and the executor must agree on conjunct indexing —
    both use this helper.
    """
    if where.kind != "and":
        return [where]
    conjuncts: list[PlanNode] = []
    for child in where.children:
        conjuncts.extend(flatten_conjuncts(child))
    return conjuncts


def positional_predicate_spec(predicate: PlanNode
                              ) -> tuple[Any, ...] | None:
    """The positional spec of a predicate, if it is purely positional.

    ``("index", k)`` for an integer-literal predicate ``[k]``,
    ``("last",)`` for ``[last()]``; ``None`` for anything else.  A step
    whose only predicate has such a spec can run inside a fused chain as
    per-context counting on the raw ``(iter, pre)`` buffers — no
    materialised intermediate, no position registers.
    """
    if predicate.kind == "const":
        value = predicate.p("value")
        if isinstance(value, int) and not isinstance(value, bool):
            return ("index", value)
        return None
    if predicate.kind == "call" and not predicate.children \
            and _strip_fn(predicate.p("name")) == "last":
        return ("last",)
    return None


@dataclass(frozen=True)
class JoinEstimate:
    """Cardinality estimates attached to one recognized value join.

    ``build_rows`` sizes the loop-invariant binding sequence (after pushed
    predicates); ``probe_rows`` sizes the other comparison side across the
    enclosing loop.  ``build_side`` records which input the executor hands
    to the hash/index build of the existential theta-join.
    """

    clause: int
    conjunct: int
    side: int
    build_rows: float
    probe_rows: float
    build_side: str                      # "binding" | "outer"

    def render(self) -> str:
        return (f"est[build~{self.build_rows:.0f} probe~{self.probe_rows:.0f} "
                f"build-side={self.build_side}]")


@dataclass
class RewriteReport:
    """Which rewrite rules fired, with human-readable details."""

    entries: list[tuple[str, str]] = field(default_factory=list)

    def fire(self, rule: str, detail: str) -> None:
        self.entries.append((rule, detail))

    def fired(self, rule: str) -> list[str]:
        return [detail for name, detail in self.entries if name == rule]

    def render(self) -> str:
        if not self.entries:
            return "rewrites: none fired"
        lines = ["rewrites:"]
        lines.extend(f"  {rule}: {detail}" for rule, detail in self.entries)
        return "\n".join(lines)


class FreeVariables:
    """Binding-aware free-variable sets per plan node (memoised on demand).

    The sets include the pseudo-variables of :data:`PSEUDO_VARIABLES` so
    that the executor's CSE memoisation can fingerprint exactly the
    environment entries a subplan depends on.
    """

    def __init__(self, user_functions: Iterable[str] = ()):
        self._memo: dict[int, frozenset[str]] = {}
        self._user_functions = {_strip_fn(name) for name in user_functions}

    def __call__(self, node: PlanNode) -> frozenset[str]:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        result = self._compute(node)
        self._memo[node.id] = result
        return result

    def _compute(self, node: PlanNode) -> frozenset[str]:
        kind = node.kind
        if kind == "var":
            return frozenset({node.p("name")})
        if kind in ("context", "root"):
            return frozenset({"."})
        if kind == "call":
            name = _strip_fn(node.p("name"))
            free: set[str] = set()
            for child in node.children:
                free |= self(child)
            if name not in self._user_functions:
                if name == "position" and not node.children:
                    free.add("fs:position")
                elif name == "last" and not node.children:
                    free.add("fs:last")
                elif name in ("string", "data", "number", "name",
                              "local-name") and not node.children:
                    free.add(".")   # implicit context-item argument
            return frozenset(free)
        if kind == "flwor":
            nclauses = node.p("nclauses")
            free: set[str] = set()
            bound: set[str] = set()
            for clause in node.children[:nclauses]:
                free |= self(clause.children[0]) - bound
                bound.add(clause.p("var"))
                if clause.kind == "for" and clause.p("posvar"):
                    bound.add(clause.p("posvar"))
                # pushed-down plan-level predicates see the clause variable
                for predicate in clause.children[1:]:
                    free |= self(predicate) - bound
            for child in node.children[nclauses:]:
                free |= self(child) - bound
            return frozenset(free)
        if kind == "quantified":
            variables = node.p("variables")
            free = set()
            bound = set()
            for variable, sequence in zip(variables, node.children[:-1]):
                free |= self(sequence) - bound
                bound.add(variable)
            free |= self(node.children[-1]) - bound
            return frozenset(free)
        if kind == "orderspec":
            return self(node.children[0])
        free = set()
        for child in node.children:
            free |= self(child)
        return frozenset(free)


class _PurityAnalysis:
    """Side-effect analysis: node constructors create fresh node identities
    every time they run, so subtrees containing them must never be shared
    at execution time."""

    def __init__(self, functions: dict[str, "Any"]):
        self._functions = {_strip_fn(name): planned
                           for name, planned in functions.items()}
        self._memo: dict[int, bool] = {}
        self._in_progress: set[str] = set()

    def impure(self, node: PlanNode) -> bool:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        result = self._compute(node)
        self._memo[node.id] = result
        return result

    def _compute(self, node: PlanNode) -> bool:
        if node.kind in ("elem", "text"):
            return True
        if node.kind == "call":
            name = _strip_fn(node.p("name"))
            planned = self._functions.get(name)
            if planned is not None:
                if name in self._in_progress:    # recursive: be conservative
                    return True
                self._in_progress.add(name)
                try:
                    if self.impure(planned.body):
                        return True
                finally:
                    self._in_progress.discard(name)
        return any(self.impure(child) for child in node.children)


@dataclass
class OptimizedModulePlan:
    """The rewritten plans of a module plus all executor-facing analyses."""

    body: PlanNode
    globals: list[tuple[str, PlanNode]]
    functions: dict[str, Any]               # name -> PlannedFunction
    cols: dict[int, frozenset[str]]
    shared: frozenset[int]
    impure: frozenset[int]
    free: FreeVariables
    report: RewriteReport
    #: flwor node id -> cardinality estimates of its recognized joins
    join_estimates: dict[int, tuple[JoinEstimate, ...]] = \
        field(default_factory=dict)
    #: node id -> builder-independent structural fingerprint of subplans
    #: that are loop-invariant absolute paths (safe to materialize in the
    #: cross-query subplan cache, keyed additionally on the document-store
    #: schema version and the context root)
    cache_keys: dict[int, str] = field(default_factory=dict)
    #: whether the executor runs the typed columnar kernels (the
    #: ``typed_columns`` ablation at optimize time); governs the
    #: representation annotations of :meth:`render`
    typed_columns: bool = True
    #: step node id -> number of steps (>= 2) of the fusable chain *ending*
    #: at that node — the executor fuses the chain when the node is reached
    #: through ordinary compilation (``step_fusion`` ablation)
    fused_chains: dict[int, int] = field(default_factory=dict)
    #: step node ids absorbed as the interior of some fusable chain
    #: (annotated ``(fused)`` in plan dumps; they never execute standalone
    #: unless the executor trims the chain at a cache boundary)
    fused_members: frozenset[int] = frozenset()
    #: flwor node id -> per-clause cardinality estimates of its recognized
    #: worst-case-optimal multi-way join (the product bounds the pairwise
    #: intermediate the generic join avoids)
    wcoj_estimates: dict[int, tuple[float, ...]] = field(default_factory=dict)
    #: node ids the codegen stage can compile to a specialized executor
    #: closure (computed unconditionally so plan dumps are identical with
    #: and without the ``codegen`` ablation)
    codegen_nodes: frozenset[int] = frozenset()
    #: node id -> human-readable reason the subtree stays interpreted
    #: (node constructors, user functions, ...); surfaced via ``explain()``
    codegen_fallbacks: dict[int, str] = field(default_factory=dict)

    def required_columns(self, node: PlanNode) -> frozenset[str]:
        return self.cols.get(node.id, FULL_COLUMNS)

    def fused_chain_length(self, node: PlanNode) -> int:
        """Steps in the fusable chain ending at ``node`` (0 = not fusable)."""
        return self.fused_chains.get(node.id, 0)

    def is_shared(self, node: PlanNode) -> bool:
        return node.id in self.shared

    def is_pure(self, node: PlanNode) -> bool:
        return node.id not in self.impure

    def cache_key(self, node: PlanNode) -> str | None:
        """The cross-query cache fingerprint of a cacheable subplan
        (``None`` when the node was not marked cacheable)."""
        return self.cache_keys.get(node.id)

    def roots(self) -> list[PlanNode]:
        roots = [self.body]
        roots.extend(plan for _, plan in self.globals)
        roots.extend(function.body for function in self.functions.values())
        return roots

    def render(self) -> str:
        """The full plan dump: body, globals, functions, fired rewrites."""
        def annotate(node: PlanNode) -> str:
            notes = []
            required = self.cols.get(node.id)
            if required is not None and required != FULL_COLUMNS:
                notes.append(
                    "cols=[" + ",".join(
                        name for name in ("iter", "pos", "item")
                        if name in required) + "]")
            if self.typed_columns and node.kind == "step" \
                    and required is not None and "item" not in required:
                # the executor's chosen representation: a typed int iter
                # column with no node surrogates materialised at all
                notes.append("rep=i64[iter-only, item-pruned]")
            elif self.typed_columns and node.kind == "step":
                notes.append("rep=i64[iter,pos]+item")
            if node.id in self.shared:
                notes.append("(shared)")
            if node.id in self.cache_keys:
                notes.append("(cacheable)")
            if node.id in self.fused_chains \
                    and node.id not in self.fused_members:
                notes.append(f"(fused:{self.fused_chains[node.id]})")
            elif node.id in self.fused_members:
                notes.append("(fused)")
            if node.kind == "flwor" and node.p("wcoj"):
                wcoj_triples = node.p("wcoj")
                note = (f"(wcoj) {node.p('nclauses')}-way[conjuncts="
                        + ",".join(str(triple[0]) for triple in wcoj_triples)
                        + "]")
                estimates = self.wcoj_estimates.get(node.id)
                if estimates:
                    note += (" est[rows~"
                             + "x".join(f"{rows:.0f}" for rows in estimates)
                             + "]")
                notes.append(note)
            if node.kind == "flwor" and node.p("join") is not None:
                triples = node.p("joins") or (node.p("join"),)
                estimates = {(e.clause, e.conjunct, e.side): e
                             for e in self.join_estimates.get(node.id, ())}
                for triple in triples:
                    clause_index, conjunct_index, v_side = triple
                    note = (f"join-recognized[clause={clause_index},"
                            f"conjunct={conjunct_index},side={v_side}]")
                    estimate = estimates.get(tuple(triple))
                    if estimate is not None:
                        note += " " + estimate.render()
                    notes.append(note)
            if node.kind == "for" and len(node.children) > 1:
                notes.append(f"pushed-predicates={len(node.children) - 1}")
            if node.id in self.codegen_fallbacks:
                notes.append(
                    f"(interpreted: {self.codegen_fallbacks[node.id]})")
            elif node.id in self.codegen_nodes and node.kind in (
                    "step", "flwor", "filter", "call", "quantified"):
                notes.append("(codegen)")
            return " ".join(notes)

        sections = []
        for name, plan in self.globals:
            sections.append(f"declare variable ${name} :=")
            sections.append(render_plan(plan, shared=self.shared,
                                        annotate=annotate, indent="  "))
        for function in self.functions.values():
            sections.append(
                f"declare function {function.name}"
                f"({', '.join('$' + p for p in function.parameters)}) :=")
            sections.append(render_plan(function.body, shared=self.shared,
                                        annotate=annotate, indent="  "))
        sections.append(render_plan(self.body, shared=self.shared,
                                    annotate=annotate))
        sections.append(self.report.render())
        return "\n".join(sections)


def optimize(module_plan: "ModulePlan", options: Any = None,
             statistics: StoreStatistics | None = None) -> OptimizedModulePlan:
    """Run the rewrite pipeline over a module's logical plans.

    ``options`` is the engine's :class:`~repro.xquery.engine.EngineOptions`
    (or any object with ``join_recognition``, ``predicate_pushdown``,
    ``cost_based_joins``, ``projection_pushdown`` and ``subplan_sharing``
    attributes); ``None`` enables every rewrite.  ``statistics`` is a
    document-store snapshot feeding the cardinality estimates; without it
    joins are still recognized but not cost-ordered.
    """
    join_recognition = getattr(options, "join_recognition", True)
    predicate_pushdown = getattr(options, "predicate_pushdown", True)
    cost_based_joins = getattr(options, "cost_based_joins", True)
    projection_pushdown = getattr(options, "projection_pushdown", True)
    subplan_sharing = getattr(options, "subplan_sharing", True)
    cross_query_caching = getattr(options, "cross_query_caching", True)
    typed_columns = getattr(options, "typed_columns", True)
    step_fusion = getattr(options, "step_fusion", True)
    wcoj = getattr(options, "wcoj", True)

    report = RewriteReport()
    free = FreeVariables(module_plan.functions)
    estimator = CardinalityEstimator(statistics)

    # 1. FLWOR rules: predicate pushdown, join recognition, cost-based
    #    ordering (they rebuild flwor nodes, so they run first)
    body = module_plan.body
    globals_ = list(module_plan.globals)
    functions = dict(module_plan.functions)
    join_estimates: dict[int, tuple[JoinEstimate, ...]] = {}
    wcoj_estimates: dict[int, tuple[float, ...]] = {}
    if join_recognition or predicate_pushdown:
        rule = _FlworRewrites(module_plan.builder, free,
                              module_plan.global_names, report,
                              join_recognition=join_recognition,
                              predicate_pushdown=predicate_pushdown,
                              cost_based=cost_based_joins,
                              estimator=estimator,
                              wcoj=wcoj)
        body = rule.rewrite(body, frozenset())
        globals_ = [(name, rule.rewrite(plan, frozenset()))
                    for name, plan in globals_]
        rebuilt_functions = {}
        for name, planned in functions.items():
            new_body = rule.rewrite(planned.body, frozenset(planned.parameters))
            if new_body is not planned.body:
                planned = type(planned)(planned.name, planned.parameters,
                                        new_body)
            rebuilt_functions[name] = planned
        functions = rebuilt_functions
        join_estimates = rule.join_estimates
        wcoj_estimates = rule.wcoj_estimates
        # free-variable sets of rebuilt nodes are recomputed lazily
        free = FreeVariables(functions)

    roots = [body] + [plan for _, plan in globals_] \
        + [planned.body for planned in functions.values()]

    # 2. projection pushdown / dead-column pruning (required-columns pass)
    cols: dict[int, frozenset[str]] = {}
    if projection_pushdown:
        cols = _required_columns(roots, functions)
        pruned = sum(1 for required in cols.values()
                     if required != FULL_COLUMNS)
        if pruned:
            report.fire("projection-pushdown",
                        f"{pruned} operators need no pos column")
        if typed_columns:
            item_pruned = sum(
                1 for root in roots for node in root.walk()
                if node.kind == "step"
                and node.id in cols and "item" not in cols[node.id])
            if item_pruned:
                report.fire(
                    "item-pruning",
                    f"{item_pruned} location steps materialize no item "
                    "column (pure-cardinality consumers)")

    # 3. common-subplan sharing (mark hash-consed nodes safe to memoise)
    purity = _PurityAnalysis(functions)
    impure = frozenset(node.id for root in roots for node in root.walk()
                       if purity.impure(node))
    shared: frozenset[int] = frozenset()
    if subplan_sharing:
        references = count_references(roots)
        shared = frozenset(
            node.id for root in roots for node in root.walk()
            if references.get(node.id, 0) > 1
            and node.kind not in _TRIVIAL_KINDS
            and node.id not in impure)
        if shared:
            report.fire("common-subexpressions",
                        f"{len(shared)} shared subplans will execute once")

    # 4. cross-query cacheable subplans: loop-invariant absolute paths
    cache_keys: dict[int, str] = {}
    if cross_query_caching:
        cache_keys = _cacheable_subplans(roots, free, impure, functions)
        if cache_keys:
            report.fire(
                "cacheable-subplans",
                f"{len(cache_keys)} absolute-path subplans may be "
                "materialized across queries")

    # 5. step-chain fusion: maximal predicate-free step chains execute as
    #    one surrogate-free staircase pipeline
    fused_chains: dict[int, int] = {}
    fused_members: frozenset[int] = frozenset()
    if step_fusion:
        fused_chains, fused_members = _fusable_chains(roots, shared)
        maximal = [nid for nid in fused_chains if nid not in fused_members]
        if maximal:
            longest = max(fused_chains[nid] for nid in maximal)
            report.fire(
                "step-fusion",
                f"{len(maximal)} step chains run surrogate-free "
                f"(longest: {longest} steps)")

    # 6. codegen coverage: which operators compile to specialized executor
    #    closures.  Computed regardless of the codegen ablation so plan
    #    renders are byte-identical with the switch on or off; the engine
    #    only *uses* the marking when options.codegen is set.
    codegen_nodes, codegen_fallbacks = _codegen_coverage(roots, functions)
    kinds = {node.id: node.kind for root in roots for node in root.walk()}
    report.fire("codegen",
                f"{len(codegen_nodes)} of {len(kinds)} plan operators "
                "compile to specialized executors")
    for node_id, reason in sorted(codegen_fallbacks.items()):
        report.fire("codegen-fallback",
                    f"{kinds[node_id]} #{node_id}: {reason}")

    return OptimizedModulePlan(body=body, globals=globals_,
                               functions=functions, cols=cols,
                               shared=shared, impure=impure, free=free,
                               report=report, join_estimates=join_estimates,
                               cache_keys=cache_keys,
                               typed_columns=typed_columns,
                               fused_chains=fused_chains,
                               fused_members=fused_members,
                               wcoj_estimates=wcoj_estimates,
                               codegen_nodes=codegen_nodes,
                               codegen_fallbacks=codegen_fallbacks)


# --------------------------------------------------------------------------- #
# step-chain fusion (surrogate-free path pipelines)
# --------------------------------------------------------------------------- #
def _fusable_chains(roots: list[PlanNode], shared: frozenset[int]
                    ) -> tuple[dict[int, int], frozenset[int]]:
    """Mark chains of consecutive fusable location steps for fusion.

    A ``step`` node *absorbs* its context child when the child

    * is itself a ``step`` that is predicate-free or carries exactly one
      purely positional predicate (``[k]`` / ``[last()]``) — general
      predicates need the nested iteration scope and positions of a
      materialised intermediate, but positional ones run as per-context
      counting on the raw ``(iter, pre)`` buffers mid-chain,
    * is not marked shared — a memoised subplan must materialise so its
      other consumers can reuse the result, and
    * does not use the attribute axis — attribute rows live in a separate
      table and cannot feed a further tree-node staircase join (the
      attribute axis may still *end* a chain).

    Every predicate-free step whose absorbable chain is at least two steps
    long is recorded with that length; the executor fuses from whichever
    chain end it actually reaches (a DAG node may be the interior of one
    consumer's chain and the head of another's), trimming additionally at
    cross-query-cacheable nodes when a subplan cache is attached.
    """
    lengths: dict[int, int] = {}

    def positional_only(step: PlanNode) -> bool:
        # a step joins a chain when it is predicate-free, or carries exactly
        # one purely positional predicate ([k] / [last()]) that the chain
        # runner evaluates as per-context counting on the raw buffers;
        # attribute-axis rows use a different rank encoding, so predicated
        # attribute steps stay on the materialising path
        if len(step.children) == 1:
            return True
        if len(step.children) != 2:
            return False
        if getattr(step.p("axis"), "value", None) == "attribute":
            return False
        return positional_predicate_spec(step.children[1]) is not None

    def absorbable(child: PlanNode) -> bool:
        # compare the axis by enum value to avoid importing the staircase
        # package (whose document types import this package)
        return (child.kind == "step" and positional_only(child)
                and child.id not in shared
                and getattr(child.p("axis"), "value", None) != "attribute")

    def down_length(node: PlanNode) -> int:
        cached = lengths.get(node.id)
        if cached is not None:
            return cached
        child = node.children[0]
        result = 1 + down_length(child) if absorbable(child) else 1
        lengths[node.id] = result
        return result

    chains: dict[int, int] = {}
    members: set[int] = set()
    for root in roots:
        for node in root.walk():
            if node.kind != "step" or not positional_only(node):
                continue
            length = down_length(node)
            if length < 2:
                continue
            chains[node.id] = length
            current = node
            for _ in range(length - 1):
                current = current.children[0]
                members.add(current.id)
    return chains, frozenset(members)


# --------------------------------------------------------------------------- #
# codegen coverage (which operators compile to specialized closures)
# --------------------------------------------------------------------------- #
#: plan operators the codegen stage (:mod:`repro.xquery.codegen`) knows how
#: to compile; anything else (node constructors, value templates) stays on
#: the interpreting executor
_CODEGEN_KINDS = frozenset({
    "const", "empty", "var", "context", "root", "seq", "range", "arith",
    "unary", "cmp-value", "cmp-general", "and", "or", "if", "flwor", "for",
    "let", "orderspec", "quantified", "step", "filter", "call",
})


def _codegen_coverage(roots: list[PlanNode], functions: dict[str, Any]
                      ) -> tuple[frozenset[int], dict[int, str]]:
    """Partition plan operators into codegen-covered and interpreted.

    Coverage is per-node: a covered operator's generated closure invokes
    its children through the executor's shared entry point, so an
    interpreted child simply falls back for its own subtree without
    poisoning the parent.  The fallback reasons feed ``explain()`` (the
    ``codegen-fallback`` report entries), mirroring the wcoj-recognition
    report style so coverage regressions stay visible.
    """
    # deferred import: this package is imported by xquery.planner, and
    # xquery.functions imports other xquery modules — resolving the
    # builtin registry lazily avoids the cycle at module-load time
    from ..xquery.functions import is_builtin

    user_functions = {_strip_fn(name) for name in functions}
    covered: set[int] = set()
    fallbacks: dict[int, str] = {}
    for root in roots:
        for node in root.walk():
            if node.id in covered or node.id in fallbacks:
                continue
            if node.kind not in _CODEGEN_KINDS:
                fallbacks[node.id] = "node constructor" \
                    if node.kind in ("elem", "text", "avt") \
                    else f"unsupported operator {node.kind}"
                continue
            if node.kind == "call":
                name = _strip_fn(node.p("name"))
                if name in ("position", "last") and not node.children:
                    covered.add(node.id)
                elif name in user_functions:
                    fallbacks[node.id] = "user function"
                elif not is_builtin(name):
                    fallbacks[node.id] = f"unknown function {name}()"
                else:
                    covered.add(node.id)
                continue
            covered.add(node.id)
    return frozenset(covered), fallbacks
def _cacheable_subplans(roots: list[PlanNode], free: FreeVariables,
                        impure: frozenset[int],
                        functions: dict[str, Any]) -> dict[int, str]:
    """Mark loop-invariant absolute-path subplans for cross-query caching.

    A ``step`` node qualifies when

    * its context spine (the chain of first children) bottoms out at a
      ``root`` node — the subplan is an *absolute* path, so its value
      depends only on the context document root, never on the loop,
    * its free variables are at most the context item ``.`` (no FLWOR
      bindings, globals, or the dynamic ``position()``/``last()``
      registers — predicates referencing those are conservatively
      rejected because the free-variable analysis surfaces them),
    * the subtree calls no user-declared functions — the structural
      fingerprint covers only the call site, not the function body, so
      two queries declaring a same-named function with different bodies
      would otherwise collide on one cache slot, and
    * the subtree is pure (no node constructors, which mint fresh node
      identities on every execution).

    Such a subplan evaluated anywhere yields the same item sequence per
    iteration, which is what lets the serving layer treat its
    materialisation as a shared index structure: the result is cached
    across queries keyed on the structural fingerprint + document-store
    schema version + context root, and re-lifted into whatever loop the
    consuming query runs under.  Every prefix of a qualifying path
    qualifies too, so hot path prefixes (``/site/people``) are shared
    even between queries that diverge afterwards.
    """
    fingerprints: dict[int, str] = {}
    spine_memo: dict[int, bool] = {}
    user_call_memo: dict[int, bool] = {}
    user_functions = {_strip_fn(name) for name in functions}
    keys: dict[int, str] = {}

    def calls_user_function(node: PlanNode) -> bool:
        cached = user_call_memo.get(node.id)
        if cached is not None:
            return cached
        result = (node.kind == "call"
                  and _strip_fn(node.p("name")) in user_functions) \
            or any(calls_user_function(child) for child in node.children)
        user_call_memo[node.id] = result
        return result

    def absolute_spine(node: PlanNode) -> bool:
        cached = spine_memo.get(node.id)
        if cached is not None:
            return cached
        if node.kind == "root":
            result = True
        elif node.kind in ("step", "filter") and node.children:
            result = absolute_spine(node.children[0])
        else:
            result = False
        spine_memo[node.id] = result
        return result

    for root in roots:
        for node in root.walk():
            if node.kind != "step" or node.id in keys:
                continue
            if node.id in impure:
                continue
            if not absolute_spine(node):
                continue
            if free(node) - {"."}:
                continue
            if calls_user_function(node):
                continue
            keys[node.id] = structural_fingerprint(node, fingerprints)
    return keys


# --------------------------------------------------------------------------- #
# FLWOR rules: predicate pushdown, join recognition, cost-based ordering
# --------------------------------------------------------------------------- #
class _FlworRewrites:
    """Rebuild FLWOR nodes: move single-variable ``where`` conjuncts into
    their ``for`` clause as plan-level predicates, annotate every
    loop-invariant for-clause + existential-comparison pair as a value join
    (the paper's ``indep``-driven rewrite), and — when statistics are
    available — size both join inputs, pick the hash build side and order
    independent join clauses smallest-build-first (``clause_order``)."""

    def __init__(self, builder: PlanBuilder, free: FreeVariables,
                 global_names: frozenset[str], report: RewriteReport, *,
                 join_recognition: bool = True,
                 predicate_pushdown: bool = True,
                 cost_based: bool = True,
                 estimator: CardinalityEstimator | None = None,
                 wcoj: bool = True):
        self.builder = builder
        self.free = free
        self.global_names = global_names
        self.report = report
        self.join_recognition = join_recognition
        self.predicate_pushdown = predicate_pushdown
        self.estimator = estimator if estimator is not None \
            else CardinalityEstimator()
        self.multi_join = join_recognition and cost_based
        self.cost_based = cost_based and self.estimator.available
        self.wcoj = wcoj and join_recognition
        self.join_estimates: dict[int, tuple[JoinEstimate, ...]] = {}
        self.wcoj_estimates: dict[int, tuple[float, ...]] = {}
        self._memo: dict[tuple[int, frozenset[str], float], PlanNode] = {}

    def rewrite(self, node: PlanNode, bound: frozenset[str],
                loop_est: float = 1.0) -> PlanNode:
        if not self.cost_based:
            loop_est = 1.0                      # keep memo keys stable
        key = (node.id, bound & self.free(node), loop_est)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._rewrite(node, bound, loop_est)
        self._memo[key] = result
        return result

    def _rebuild(self, node: PlanNode, children: tuple[PlanNode, ...],
                 **extra: Any) -> PlanNode:
        if not extra and children == node.children:
            return node
        params = dict(node.params)
        params.update(extra)
        return self.builder.node(node.kind, children, **params)

    def _rewrite(self, node: PlanNode, bound: frozenset[str],
                 loop_est: float) -> PlanNode:
        if node.kind == "flwor":
            return self._rewrite_flwor(node, bound, loop_est)
        if node.kind == "quantified":
            variables = node.p("variables")
            children: list[PlanNode] = []
            inner = set(bound)
            for variable, sequence in zip(variables, node.children[:-1]):
                children.append(self.rewrite(sequence, frozenset(inner),
                                             loop_est))
                inner.add(variable)
            children.append(self.rewrite(node.children[-1], frozenset(inner),
                                         loop_est))
            return self._rebuild(node, tuple(children))
        children = tuple(self.rewrite(child, bound, loop_est)
                         for child in node.children)
        return self._rebuild(node, children)

    def _rewrite_flwor(self, node: PlanNode, bound: frozenset[str],
                       loop_est: float) -> PlanNode:
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        clauses = list(node.children[:nclauses])
        rest = list(node.children[nclauses:])

        # rewrite clause binding sequences with the growing binding set,
        # remembering bindings and ambient loop size *before* each clause
        bound_before: list[frozenset[str]] = []
        loop_before: list[float] = []
        inner = set(bound)
        ambient = loop_est
        new_clauses: list[PlanNode] = []
        for clause in clauses:
            bound_before.append(frozenset(inner))
            loop_before.append(ambient)
            sequence = self.rewrite(clause.children[0], frozenset(inner),
                                    ambient)
            inner.add(clause.p("var"))
            if clause.kind == "for" and clause.p("posvar"):
                inner.add(clause.p("posvar"))
            predicates = tuple(
                self.rewrite(predicate, frozenset(inner), ambient)
                for predicate in clause.children[1:])
            new_clause = self._rebuild(clause, (sequence,) + predicates)
            new_clauses.append(new_clause)
            if clause.kind == "for" and self.cost_based:
                ambient *= max(1.0, self.estimator.clause_estimate(new_clause))
        full_bound = frozenset(inner)
        new_rest = [self.rewrite(child, full_bound, ambient) for child in rest]

        where = new_rest[0] if has_where else None
        already_annotated = node.p("join") is not None

        # 1. predicate pushdown: single-variable conjuncts move into clauses
        if self.predicate_pushdown and where is not None \
                and not already_annotated:
            where, new_clauses = self._push_predicates(where, new_clauses)

        # 2. join recognition over the remaining conjuncts
        triples: list[tuple[int, int, int]] = []
        if already_annotated:
            triples = [tuple(triple)
                       for triple in (node.p("joins") or (node.p("join"),))]
        elif self.join_recognition and where is not None:
            triples = self._match_joins(new_clauses, bound_before,
                                        flatten_conjuncts(where))
            for clause_index, conjunct_index, _ in triples:
                clause = new_clauses[clause_index]
                self.report.fire(
                    "join-recognition",
                    f"for ${clause.p('var')} evaluated as a value join "
                    f"(clause {clause_index}, where conjunct {conjunct_index})")

        # 2b. worst-case-optimal multi-way joins: >= 3 loop-invariant for
        #     clauses connected into one component by eq conjuncts execute
        #     as a generic join (the pairwise annotations above stay — they
        #     are the executor's fallback and the wcoj=False baseline)
        wcoj_triples: tuple[tuple[int, int, int], ...] = ()
        if already_annotated:
            wcoj_triples = tuple(tuple(triple)
                                 for triple in (node.p("wcoj") or ()))
        elif self.wcoj and where is not None:
            wcoj_triples = self._match_wcoj(new_clauses, bound_before,
                                            flatten_conjuncts(where))
            if wcoj_triples:
                names = ", ".join(f"${clause.p('var')}"
                                  for clause in new_clauses)
                self.report.fire(
                    "wcoj-recognition",
                    f"{len(new_clauses)}-way value-join clique over {names} "
                    f"evaluated worst-case-optimally "
                    f"({len(wcoj_triples)} eq conjuncts)")

        # 3. cost model: estimates, build sides, execution order
        estimates: tuple[JoinEstimate, ...] = ()
        clause_order: tuple[int, ...] | None = None
        if triples and self.cost_based and where is not None:
            conjuncts = flatten_conjuncts(where)
            estimates = tuple(
                self._estimate_join(triple, new_clauses, conjuncts,
                                    loop_before)
                for triple in triples)
            schedule = self._schedule(new_clauses, estimates, conjuncts)
            if schedule != tuple(range(nclauses)):
                clause_order = schedule
                self.report.fire(
                    "cost-based-join-order",
                    "join clauses scheduled smallest-build-first: "
                    + ", ".join(str(index) for index in schedule))

        # reassemble the node
        tail = new_rest[1:] if has_where else new_rest
        children = tuple(new_clauses) \
            + ((where,) if where is not None else ()) + tuple(tail)
        extra: dict[str, Any] = {}
        if (where is not None) != bool(has_where):
            extra["has_where"] = where is not None
        if triples and not already_annotated:
            extra["join"] = triples[0]
            extra["joins"] = tuple(triples)
        if wcoj_triples and not already_annotated:
            extra["wcoj"] = wcoj_triples
        if clause_order is not None:
            extra["clause_order"] = clause_order
        new_node = self._rebuild(node, children, **extra)
        if estimates:
            self.join_estimates[new_node.id] = estimates
        if wcoj_triples and self.cost_based:
            self.wcoj_estimates[new_node.id] = tuple(
                max(1.0, self.estimator.clause_estimate(clause))
                for clause in new_clauses)
        return new_node

    # ------------------------------------------------------------------ #
    # predicate pushdown
    # ------------------------------------------------------------------ #
    def _push_predicates(self, where: PlanNode, clauses: list[PlanNode]
                         ) -> tuple[PlanNode | None, list[PlanNode]]:
        """Move conjuncts that mention exactly one of this FLWOR's ``for``
        variables (everything else constant) into that variable's clause."""
        conjuncts = flatten_conjuncts(where)
        clause_of_var = {clause.p("var"): index
                         for index, clause in enumerate(clauses)}
        flwor_vars = set(clause_of_var)
        for clause in clauses:
            if clause.kind == "for" and clause.p("posvar"):
                flwor_vars.add(clause.p("posvar"))
        allowed_rest = self.global_names | {"."}

        remaining: list[PlanNode] = []
        pushed: dict[int, list[PlanNode]] = {}
        for conjunct in conjuncts:
            conjunct_free = self.free(conjunct)
            hits = conjunct_free & flwor_vars
            target = None
            if len(hits) == 1:
                variable = next(iter(hits))
                index = clause_of_var.get(variable)
                if index is not None and clauses[index].kind == "for" \
                        and clauses[index].p("posvar") is None \
                        and conjunct_free - {variable} <= allowed_rest:
                    target = index
            if target is None:
                remaining.append(conjunct)
            else:
                pushed.setdefault(target, []).append(conjunct)
                self.report.fire(
                    "predicate-pushdown",
                    f"where conjunct on ${clauses[target].p('var')} pushed "
                    f"into its for clause")
        if not pushed:
            return where, clauses

        new_clauses = list(clauses)
        for index, predicates in pushed.items():
            clause = clauses[index]
            children = clause.children + tuple(predicates)
            new_clauses[index] = self._rebuild(clause, children,
                                               npred=len(children) - 1)
        if not remaining:
            return None, new_clauses
        if len(remaining) == 1:
            return remaining[0], new_clauses
        return self.builder.node("and", tuple(remaining)), new_clauses

    # ------------------------------------------------------------------ #
    # join recognition
    # ------------------------------------------------------------------ #
    def _match_joins(self, clauses: list[PlanNode],
                     bound_before: list[frozenset[str]],
                     conjuncts: list[PlanNode]
                     ) -> list[tuple[int, int, int]]:
        """All (clause, conjunct, v-side) triples forming value joins.

        Clauses are scanned in syntactic order and each claims its first
        eligible conjunct; with multi-join recognition disabled only the
        first triple is returned (the legacy first-syntactic-match rule).
        """
        triples: list[tuple[int, int, int]] = []
        claimed: set[int] = set()
        for clause_index, clause in enumerate(clauses):
            if clause.kind != "for" or clause.p("posvar") is not None:
                continue
            variable = clause.p("var")
            outer = bound_before[clause_index]
            sequence_free = frozenset().union(
                *(self.free(child) for child in clause.children)) - {variable}
            # the binding sequence (and its pushed predicates) must be
            # loop-invariant: no enclosing bindings, no dynamic
            # position()/last() registers (the context document root is
            # re-checked dynamically by the executor)
            if sequence_free & (outer | {"fs:position", "fs:last"}):
                continue
            allowed_other = outer | self.global_names | {"."}
            for conjunct_index, conjunct in enumerate(conjuncts):
                if conjunct_index in claimed:
                    continue
                if conjunct.kind != "cmp-general":
                    continue
                left_free = self.free(conjunct.children[0])
                right_free = self.free(conjunct.children[1])
                triple = None
                if (variable in left_free and variable not in right_free
                        and left_free - {variable, "."} <= self.global_names
                        and right_free <= allowed_other):
                    triple = (clause_index, conjunct_index, 0)
                elif (variable in right_free and variable not in left_free
                        and right_free - {variable, "."} <= self.global_names
                        and left_free <= allowed_other):
                    triple = (clause_index, conjunct_index, 1)
                if triple is not None:
                    triples.append(triple)
                    claimed.add(conjunct_index)
                    break
            if triples and not self.multi_join:
                break
        return triples

    def _match_wcoj(self, clauses: list[PlanNode],
                    bound_before: list[frozenset[str]],
                    conjuncts: list[PlanNode]
                    ) -> tuple[tuple[int, int, int], ...]:
        """``(conjunct, left clause, right clause)`` triples of a multi-way
        value-join clique, or ``()`` when the FLWOR does not qualify.

        Qualification: at least three plain ``for`` clauses (no ``let``, no
        positional variables), every binding sequence loop-invariant (free
        of enclosing bindings, sibling clause variables and the dynamic
        position()/last() registers), and ``eq`` conjuncts whose sides each
        depend on exactly one FLWOR variable connecting *all* clauses into
        one component.  Unlike the pairwise rule, both comparison sides must
        be loop-invariant given their item — they are evaluated once per
        binding item, never per enclosing iteration.
        """
        if len(clauses) < 3:
            return ()
        allowed = self.global_names | {"."}
        clause_of_var: dict[str, int] = {}
        for clause in clauses:
            if clause.kind != "for" or clause.p("posvar") is not None:
                return ()
            clause_of_var[clause.p("var")] = len(clause_of_var)
        if len(clause_of_var) != len(clauses):
            return ()                    # duplicate variable names shadow
        flwor_vars = frozenset(clause_of_var)
        for index, clause in enumerate(clauses):
            sequence_free = frozenset().union(
                *(self.free(child) for child in clause.children)) \
                - {clause.p("var")}
            if sequence_free & (bound_before[index] | flwor_vars
                                | {"fs:position", "fs:last"}):
                return ()
            if sequence_free - allowed:
                return ()
        triples: list[tuple[int, int, int]] = []
        neighbours: dict[int, set[int]] = {index: set()
                                           for index in range(len(clauses))}
        for conjunct_index, conjunct in enumerate(conjuncts):
            if conjunct.kind != "cmp-general" or conjunct.p("op") != "eq":
                continue
            left_free = self.free(conjunct.children[0])
            right_free = self.free(conjunct.children[1])
            left_vars = left_free & flwor_vars
            right_vars = right_free & flwor_vars
            if len(left_vars) != 1 or len(right_vars) != 1:
                continue
            left_var = next(iter(left_vars))
            right_var = next(iter(right_vars))
            if left_var == right_var:
                continue
            if (left_free - {left_var}) - allowed \
                    or (right_free - {right_var}) - allowed:
                continue
            left_clause = clause_of_var[left_var]
            right_clause = clause_of_var[right_var]
            triples.append((conjunct_index, left_clause, right_clause))
            neighbours[left_clause].add(right_clause)
            neighbours[right_clause].add(left_clause)
        if not triples:
            return ()
        seen = {0}
        frontier = [0]
        while frontier:
            for reached in neighbours[frontier.pop()]:
                if reached not in seen:
                    seen.add(reached)
                    frontier.append(reached)
        if len(seen) != len(clauses):
            return ()
        return tuple(triples)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def _estimate_join(self, triple: tuple[int, int, int],
                       clauses: list[PlanNode], conjuncts: list[PlanNode],
                       loop_before: list[float]) -> JoinEstimate:
        clause_index, conjunct_index, v_side = triple
        build = self.estimator.clause_estimate(clauses[clause_index])
        other = conjuncts[conjunct_index].children[1 - v_side]
        probe = loop_before[clause_index] * self.estimator.estimate(other)
        build_side = "binding" if build <= probe else "outer"
        return JoinEstimate(clause=clause_index, conjunct=conjunct_index,
                            side=v_side, build_rows=build, probe_rows=probe,
                            build_side=build_side)

    def _schedule(self, clauses: list[PlanNode],
                  estimates: tuple[JoinEstimate, ...],
                  conjuncts: list[PlanNode]) -> tuple[int, ...]:
        """Execution order of the clauses: join clauses float to the
        earliest dependency-respecting slot, smallest build side first;
        all other clauses keep their relative syntactic order."""
        join_by_clause = {estimate.clause: estimate for estimate in estimates}
        names_of: list[set[str]] = []
        for clause in clauses:
            names = {clause.p("var")}
            if clause.kind == "for" and clause.p("posvar"):
                names.add(clause.p("posvar"))
            names_of.append(names)

        total = len(clauses)
        deps: list[set[int]] = []
        for index, clause in enumerate(clauses):
            estimate = join_by_clause.get(index)
            if estimate is None:
                # non-join clauses never move
                deps.append(set(range(index)))
                continue
            needed = frozenset().union(
                *(self.free(child) for child in clause.children))
            needed |= self.free(conjuncts[estimate.conjunct])
            deps.append({earlier for earlier in range(index)
                         if needed & names_of[earlier]})

        scheduled: list[int] = []
        done: set[int] = set()
        while len(scheduled) < total:
            ready = [index for index in range(total)
                     if index not in done and deps[index] <= done]
            join_ready = [index for index in ready if index in join_by_clause]
            if join_ready:
                pick = min(join_ready,
                           key=lambda index:
                           (join_by_clause[index].build_rows, index))
            else:
                pick = min(index for index in ready)
            scheduled.append(pick)
            done.add(pick)
        return tuple(scheduled)


# --------------------------------------------------------------------------- #
# projection pushdown (required-columns analysis)
# --------------------------------------------------------------------------- #
def _required_columns(roots: list[PlanNode],
                      functions: dict[str, Any]) -> dict[int, frozenset[str]]:
    """Propagate required ``iter|pos|item`` columns from the roots down.

    Every root must deliver the full encoding; order- and position-free
    contexts relax the requirement for their inputs.  The result maps node
    ids to the union of the requirements imposed by all consumers.
    """
    user_functions = {_strip_fn(name) for name in functions}
    required: dict[int, frozenset[str]] = {}
    worklist: list[tuple[PlanNode, frozenset[str]]] = [
        (root, FULL_COLUMNS) for root in roots]

    while worklist:
        node, req = worklist.pop()
        merged = required.get(node.id, frozenset()) | req
        if merged == required.get(node.id):
            continue
        required[node.id] = merged
        for child, child_req in _child_requirements(node, merged,
                                                    user_functions):
            worklist.append((child, child_req))
    return required


def _child_requirements(node: PlanNode, req: frozenset[str],
                        user_functions: set[str]
                        ) -> list[tuple[PlanNode, frozenset[str]]]:
    kind = node.kind
    children = node.children
    if kind == "call":
        name = _strip_fn(node.p("name"))
        if name in user_functions:
            return [(child, FULL_COLUMNS) for child in children]
        if name in _ORDER_FREE_AGGREGATES:
            child_req = ITER_ONLY if name in ("count", "exists", "empty") \
                else NO_POS
            return [(child, child_req) for child in children]
        if name in _FIRST_ITEM_FUNCTIONS:
            return [(child, NO_POS) for child in children]
        return [(child, FULL_COLUMNS) for child in children]
    if kind in ("cmp-general", "cmp-value", "arith", "unary", "range",
                "and", "or"):
        return [(child, NO_POS) for child in children]
    if kind == "if":
        condition, then_branch, else_branch = children
        return [(condition, NO_POS), (then_branch, req), (else_branch, req)]
    if kind == "seq":
        if "pos" in req:
            child_req = FULL_COLUMNS
        elif "item" in req:
            child_req = NO_POS
        else:
            # pure-cardinality consumer: concatenation preserves the
            # per-iteration row counts, so the branches need no items either
            child_req = ITER_ONLY
        return [(child, child_req) for child in children]
    if kind == "flwor":
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        norder = node.p("norder")
        out: list[tuple[PlanNode, frozenset[str]]] = []
        for clause in children[:nclauses]:
            if clause.kind == "for" and clause.p("posvar") is None:
                out.append((clause.children[0], NO_POS))
            else:
                out.append((clause.children[0], FULL_COLUMNS))
            # pushed-down predicates are per-item EBV verdicts
            for predicate in clause.children[1:]:
                out.append((predicate, NO_POS))
        index = nclauses
        if has_where:
            out.append((children[index], NO_POS))
            index += 1
        for spec in children[index:index + norder]:
            out.append((spec.children[0], NO_POS))
        return_child = children[-1]
        if norder > 0 or "pos" in req:
            out.append((return_child, FULL_COLUMNS))
        elif "item" in req:
            out.append((return_child, NO_POS))
        else:
            # the back-mapping join consumes only iteration numbers; under
            # a pure-cardinality consumer the returned items are dead too
            out.append((return_child, ITER_ONLY))
        return out
    if kind == "quantified":
        return [(child, NO_POS) for child in children]
    if kind == "step":
        # location steps read only (iter, item) of their context; predicate
        # verdicts are per-inner-iteration EBV / numeric values
        return [(children[0], NO_POS)] + [(predicate, NO_POS)
                                          for predicate in children[1:]]
    if kind == "filter":
        # positional predicates address the base by its pos column
        return [(children[0], FULL_COLUMNS)] + [(predicate, NO_POS)
                                                for predicate in children[1:]]
    if kind in ("elem", "avt", "text"):
        return [(child, NO_POS) for child in children]
    return [(child, FULL_COLUMNS) for child in children]
