"""Plain (single context set) staircase join — Section 2 / [18, 19].

``staircase_join`` evaluates one XPath location step for an entire context
*set* in (at most) one sequential pass over the ``pre|size|level`` encoding,
using the three techniques of Figures 1–3:

* **pruning** — context nodes covered by another context node are dropped,
* **partitioning** — overlapping axis regions are split along the pre axis
  so every result node is generated exactly once,
* **skipping** — document regions that cannot contain results are jumped
  over using the ``size`` column.

The function returns result pre ranks in document order and without
duplicates; :class:`StaircaseStats` exposes the number of document tuples
touched so the ``|result| + |context|`` bound of the paper can be verified
(benchmark *fig1-3*).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from ..errors import StaircaseJoinError
from ..xml.document import DocumentContainer, NodeKind
from .axes import Axis, NodeTest


@dataclass
class StaircaseStats:
    """Instrumentation counters for one staircase-join invocation."""

    nodes_scanned: int = 0          # document tuples touched
    contexts_pruned: int = 0        # context nodes removed by pruning
    contexts_seen: int = 0
    results: int = 0

    def touch(self, count: int = 1) -> None:
        self.nodes_scanned += count


def _normalize_context(context: list[int]) -> list[int]:
    """Sort the context set and remove duplicate pre values."""
    return sorted(set(context))


def _prune_descendant(context: list[int], container: DocumentContainer,
                      stats: StaircaseStats) -> list[int]:
    """Drop context nodes lying inside the subtree of an earlier context node."""
    pruned: list[int] = []
    current_end = -1
    for pre in context:
        if pre <= current_end:
            stats.contexts_pruned += 1
            continue
        pruned.append(pre)
        current_end = pre + container.size[pre]
    return pruned


def _prune_ancestor(context: list[int], container: DocumentContainer,
                    stats: StaircaseStats) -> list[int]:
    """For the ancestor axis, a context node that is an ancestor of another
    context node produces a subset of the other's results and can be pruned."""
    pruned: list[int] = []
    for index, pre in enumerate(context):
        end = pre + container.size[pre]
        # pruned if the next context node is inside this node's subtree
        if index + 1 < len(context) and context[index + 1] <= end:
            stats.contexts_pruned += 1
            continue
        pruned.append(pre)
    return pruned


def staircase_join(container: DocumentContainer, context: list[int],
                   axis: Axis, node_test: NodeTest | None = None, *,
                   stats: StaircaseStats | None = None) -> list[int]:
    """Evaluate ``context/axis::node_test`` over one document container.

    ``context`` is a list of pre ranks (duplicates allowed, any order); the
    result is a duplicate-free, document-ordered list of pre ranks.  The
    attribute axis is not handled here (attributes live in a separate table;
    see :func:`attribute_step`).
    """
    if stats is None:
        stats = StaircaseStats()
    if axis is Axis.ATTRIBUTE:
        raise StaircaseJoinError("attribute axis is handled by attribute_step()")

    context = _normalize_context(context)
    stats.contexts_seen += len(context)
    if not context:
        return []

    if axis is Axis.SELF:
        results = [pre for pre in context
                   if node_test is None
                   or node_test.matches_tree_node(container, pre)]
        stats.touch(len(context))
        stats.results += len(results)
        return results

    handler = _AXIS_HANDLERS.get(axis)
    if handler is None:
        raise StaircaseJoinError(f"unsupported axis {axis}")
    results = handler(container, context, stats)

    if node_test is not None and node_test != NodeTest(kind="node"):
        results = [pre for pre in results
                   if node_test.matches_tree_node(container, pre)]
    stats.results += len(results)
    return results


# --------------------------------------------------------------------------- #
# per-axis scans
# --------------------------------------------------------------------------- #
def _descendant(container: DocumentContainer, context: list[int],
                stats: StaircaseStats, *, or_self: bool = False) -> list[int]:
    context = _prune_descendant(context, container, stats)
    results: list[int] = []
    for pre in context:
        stats.touch()                      # touch the context node itself
        if or_self:
            results.append(pre)
        end = pre + container.size[pre]
        # after pruning every partition is one contiguous pre window:
        # append it with a single C-level extend instead of a node loop
        span = range(pre + 1, end + 1)
        stats.touch(len(span))
        results.extend(span)
        # skipping: everything between `end` and the next context node is
        # never touched
    return results


def _child(container: DocumentContainer, context: list[int],
           stats: StaircaseStats) -> list[int]:
    results: list[int] = []
    seen: set[int] = set()
    for pre in context:
        stats.touch()
        end = pre + container.size[pre]
        child = pre + 1
        while child <= end:
            stats.touch()
            if child not in seen:
                seen.add(child)
                results.append(child)
            # skipping: jump over the child's own subtree
            child += container.size[child] + 1
    results.sort()
    return results


def _parent(container: DocumentContainer, context: list[int],
            stats: StaircaseStats) -> list[int]:
    results: set[int] = set()
    for pre in context:
        stats.touch()
        parent = container.parent_pre(pre)
        if parent is not None:
            results.add(parent)
    return sorted(results)


def _ancestor(container: DocumentContainer, context: list[int],
              stats: StaircaseStats, *, or_self: bool = False) -> list[int]:
    context = _prune_ancestor(list(context), container, stats) if not or_self else context
    results: set[int] = set()
    for pre in context:
        if or_self:
            results.add(pre)
        current = container.parent_pre(pre)
        while current is not None:
            stats.touch()
            if current in results:
                break                     # pruning: shared ancestor path
            results.add(current)
            current = container.parent_pre(current)
    return sorted(results)


def _following(container: DocumentContainer, context: list[int],
               stats: StaircaseStats) -> list[int]:
    # the union of following regions is a single pre range starting after the
    # earliest context subtree end (partitioning degenerates to one region)
    first_end = min(pre + container.size[pre] for pre in context)
    results = []
    for node in range(first_end + 1, container.node_count):
        stats.touch()
        results.append(node)
    return results


def _preceding(container: DocumentContainer, context: list[int],
               stats: StaircaseStats) -> list[int]:
    # the union of preceding regions is determined by the latest context
    # node: v qualifies iff its whole subtree ends before that context node
    # (this automatically excludes the ancestors of the context node)
    last = max(context)
    results = []
    for node in range(last):
        stats.touch()
        if node + container.size[node] < last:
            results.append(node)
    return results


def _following_sibling(container: DocumentContainer, context: list[int],
                       stats: StaircaseStats) -> list[int]:
    results: set[int] = set()
    for pre in context:
        stats.touch()
        parent = container.parent_pre(pre)
        if parent is None:
            continue
        sibling = pre + container.size[pre] + 1
        end = parent + container.size[parent]
        while sibling <= end:
            stats.touch()
            results.add(sibling)
            sibling += container.size[sibling] + 1
    return sorted(results)


def _preceding_sibling(container: DocumentContainer, context: list[int],
                       stats: StaircaseStats) -> list[int]:
    results: set[int] = set()
    for pre in context:
        stats.touch()
        parent = container.parent_pre(pre)
        if parent is None:
            continue
        sibling = parent + 1
        while sibling < pre:
            stats.touch()
            results.add(sibling)
            sibling += container.size[sibling] + 1
    return sorted(results)


_AXIS_HANDLERS = {
    Axis.DESCENDANT: _descendant,
    Axis.DESCENDANT_OR_SELF:
        lambda container, context, stats: _descendant(container, context, stats,
                                                      or_self=True),
    Axis.CHILD: _child,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestor,
    Axis.ANCESTOR_OR_SELF:
        lambda container, context, stats: _ancestor(container, context, stats,
                                                    or_self=True),
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
    Axis.FOLLOWING_SIBLING: _following_sibling,
    Axis.PRECEDING_SIBLING: _preceding_sibling,
}


def staircase_join_arrays(container: DocumentContainer, context: list[int],
                          axis: Axis, node_test: NodeTest | None = None, *,
                          stats: StaircaseStats | None = None) -> array:
    """:func:`staircase_join` with a typed ``array('q')`` result column.

    The iterative executor and the typed step assembly consume pre ranks as
    an int array so per-iteration results enter the relational layer
    without boxing into tuple lists.
    """
    return array("q", staircase_join(container, context, axis, node_test,
                                     stats=stats))


# --------------------------------------------------------------------------- #
# attribute step (separate table)
# --------------------------------------------------------------------------- #
def attribute_step(container: DocumentContainer, context: list[int],
                   name: str | None = None) -> list[int]:
    """Return attribute-table row indexes of attributes owned by the context.

    ``name=None`` (or ``"*"``) selects all attributes.
    """
    wanted_name_id = None
    if name is not None and name != "*":
        wanted_name_id = container.names.lookup(name)
        if wanted_name_id is None:
            return []
    results: list[int] = []
    for pre in _normalize_context(context):
        for attr_index in container.attributes_of(pre):
            if wanted_name_id is None or container.attr_name[attr_index] == wanted_name_id:
                results.append(attr_index)
    return results


# --------------------------------------------------------------------------- #
# reference implementation (for tests): naive axis semantics
# --------------------------------------------------------------------------- #
def naive_axis(container: DocumentContainer, context: list[int],
               axis: Axis, node_test: NodeTest | None = None) -> list[int]:
    """Straightforward O(|context| * |doc|) axis evaluation used as an oracle."""
    results: set[int] = set()
    for pre in set(context):
        end = pre + container.size[pre]
        for node in range(container.node_count):
            if _naive_axis_member(container, pre, end, node, axis):
                results.add(node)
    ordered = sorted(results)
    if node_test is not None and node_test != NodeTest(kind="node"):
        ordered = [node for node in ordered
                   if node_test.matches_tree_node(container, node)]
    return ordered


def _naive_axis_member(container: DocumentContainer, pre: int, end: int,
                       node: int, axis: Axis) -> bool:
    node_end = node + container.size[node]
    if axis is Axis.DESCENDANT:
        return pre < node <= end
    if axis is Axis.DESCENDANT_OR_SELF:
        return pre <= node <= end
    if axis is Axis.CHILD:
        return pre < node <= end and container.level[node] == container.level[pre] + 1
    if axis is Axis.PARENT:
        return node < pre <= node_end and container.level[node] == container.level[pre] - 1
    if axis is Axis.ANCESTOR:
        return node < pre <= node_end
    if axis is Axis.ANCESTOR_OR_SELF:
        return node <= pre <= node_end
    if axis is Axis.FOLLOWING:
        return node > end
    if axis is Axis.PRECEDING:
        return node < pre and node_end < pre
    if axis is Axis.FOLLOWING_SIBLING:
        return (node > end
                and container.parent_pre(node) == container.parent_pre(pre))
    if axis is Axis.PRECEDING_SIBLING:
        return (node_end < pre
                and container.parent_pre(node) == container.parent_pre(pre))
    if axis is Axis.SELF:
        return node == pre
    raise StaircaseJoinError(f"unsupported axis {axis}")
