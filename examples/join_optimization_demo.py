"""Observe the paper's two headline optimizations on a real query.

1. Join recognition (Section 4.1/4.2): the XMark Q8 join runs as a value
   join instead of a lifted Cartesian product.
2. Loop-lifted staircase join (Section 3): path steps inside for-loops run
   in a single pass instead of once per iteration.

The demo runs the same query under different engine options and prints the
timings and the physical operators that were chosen.

Run with:  python examples/join_optimization_demo.py [scale]
"""

import sys
import time

from repro import MonetXQuery
from repro.relational import capture
from repro.xmark import generate_document, xmark_query


def timed(engine, query, **options):
    engine.reset_transient()
    active = engine.options.replace(**options) if options else engine.options
    with capture() as trace:
        started = time.perf_counter()
        result = engine.query(query, options=active)
        elapsed = time.perf_counter() - started
    return elapsed, len(result), trace


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.003
    engine = MonetXQuery()
    engine.load_document_text(generate_document(scale, seed=42), name="auction.xml")

    q8 = xmark_query(8)
    print("XMark Q8 (who bought how many items) — join recognition")
    fast, size, trace = timed(engine, q8)
    print(f"  with join recognition    : {fast * 1000:8.1f} ms  ({size} items), "
          f"existential joins: {trace.count('existential.dedup') + trace.count('existential.aggregate')}")
    slow, _, _ = timed(engine, q8, join_recognition=False)
    print(f"  lifted Cartesian product : {slow * 1000:8.1f} ms  "
          f"(~{slow / max(fast, 1e-9):.1f}x slower)")

    q2 = xmark_query(2)
    print("\nXMark Q2 (bidder increases) — loop-lifted staircase join")
    fast, size, trace = timed(engine, q2)
    print(f"  loop-lifted steps        : {fast * 1000:8.1f} ms  ({size} items), "
          f"loop-lifted step calls: {trace.count('step.loop-lifted') + trace.count('step.pushdown')}")
    slow, _, trace = timed(engine, q2, loop_lifted_child=False,
                           loop_lifted_descendant=False, loop_lifted_other=False,
                           nametest_pushdown=False)
    print(f"  iterative steps          : {slow * 1000:8.1f} ms  "
          f"(iterative step calls: {trace.count('step.iterative')}, "
          f"~{slow / max(fast, 1e-9):.1f}x slower)")

    print("\nSort reduction (order properties, Section 4.1) on Q19")
    q19 = xmark_query(19)
    fast, _, trace_fast = timed(engine, q19)
    slow, _, trace_slow = timed(engine, q19, order_optimization=False)
    print(f"  order-aware      : {fast * 1000:8.1f} ms, "
          f"full sorts: {trace_fast.count('sort.full')}, "
          f"skipped: {trace_fast.count('sort.skipped')}")
    print(f"  always sorting   : {slow * 1000:8.1f} ms, "
          f"full sorts: {trace_slow.count('sort.full')}")


if __name__ == "__main__":
    main()
