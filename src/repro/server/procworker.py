"""Worker-process side of the process-parallel serving layer.

Each pool worker keeps one attached engine per shared-store *generation*:
the first task of a new generation attaches the published shared-memory
segments by name (:meth:`MonetXQuery.attach_shared`) and builds a warm
engine over them — plan cache, cross-query subplan cache and optimizer
statistics all worker-local, all keyed on the same store version as the
parent's.  Subsequent tasks of the same generation reuse the attachment,
so repeated query texts hit the worker's prepared-plan cache exactly as
they would in thread mode.

When a task carries a *newer* generation (the parent committed an update
and republished), the worker closes its old attachment — detaching its
mapping of the superseded segments — and attaches the new segment set.
Tasks pinned to an older generation can still arrive out of order around
a publication; the parent's epoch protocol guarantees their segments stay
linked until those tasks drain, so re-attaching by name always succeeds.

Results cross the process boundary as :class:`RemoteQueryResult`: the
serialized XML plus the stringified items — plain picklable data, no node
surrogates (a ``NodeRef`` is only meaningful inside the process whose
storage it points into).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..xquery.engine import EngineOptions, MonetXQuery


@dataclass
class RemoteQueryResult:
    """A query result marshalled back from a pool worker.

    Mirrors the read-side surface of
    :class:`~repro.xquery.engine.QueryResult` (``serialize()``,
    ``strings()``, ``len()``) over pre-rendered picklable fields.
    """

    serialized: str
    string_values: list[str] = field(default_factory=list)
    count: int = 0
    elapsed_seconds: float = 0.0
    generation: int = 0

    def serialize(self) -> str:
        return self.serialized

    def strings(self) -> list[str]:
        return list(self.string_values)

    def __len__(self) -> int:
        return self.count


#: this worker's attached engine: (generation, MonetXQuery) or None
_ATTACHED: "tuple[int, MonetXQuery] | None" = None


def _engine_for(catalog_blob: bytes, generation: int) -> MonetXQuery:
    """The worker's engine for ``generation``, attaching if necessary."""
    global _ATTACHED
    if _ATTACHED is not None and _ATTACHED[0] == generation:
        return _ATTACHED[1]
    from .subplan_cache import SubplanCache
    if _ATTACHED is not None:
        _ATTACHED[1].store.close()      # detach the superseded segment set
        _ATTACHED = None
    catalog = pickle.loads(catalog_blob)
    engine = MonetXQuery.attach_shared(catalog,
                                       subplan_cache=SubplanCache(256))
    _ATTACHED = (generation, engine)
    return engine


def run_query(catalog_blob: bytes, generation: int, query: str,
              context: "str | None",
              options: "EngineOptions | None") -> RemoteQueryResult:
    """Execute one query against the attached shared store.

    Runs in a pool worker; tasks are processed serially per worker, so no
    locking is needed around the attachment swap.  Constructed nodes go
    to a private transient container per execution, mirroring
    ``QueryServer.execute_prepared``.
    """
    engine = _engine_for(catalog_blob, generation)
    prepared = engine.prepare(query, options=options)
    transient = engine.store.new_container("(transient)", transient=True)
    result = engine._run_prepared(prepared, context=context,
                                  transient=transient)
    return RemoteQueryResult(
        serialized=result.serialize(),
        string_values=result.strings(),
        count=len(result.items),
        elapsed_seconds=result.elapsed_seconds,
        generation=generation,
    )


def worker_diagnostics() -> dict:
    """What this worker currently has attached (tests/debugging)."""
    if _ATTACHED is None:
        return {"generation": None, "documents": []}
    generation, engine = _ATTACHED
    return {"generation": generation,
            "documents": engine.store.names(),
            "store_version": engine.store.version,
            "plan_cache": engine.plan_cache_stats_snapshot().hits}
