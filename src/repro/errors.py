"""Exception hierarchy for the repro (MonetDB/XQuery reproduction) library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed (relational engine,
XML storage, XQuery front-end, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RelationalError(ReproError):
    """Errors raised by the column-at-a-time relational engine."""


class ColumnTypeError(RelationalError):
    """A column received values incompatible with its declared type."""


class SchemaError(RelationalError):
    """A table operation referenced a column that does not exist or clashes."""


class XMLError(ReproError):
    """Errors raised by the XML substrate (parser, shredder, serializer)."""


class XMLParseError(XMLError):
    """The XML parser encountered malformed input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class DocumentError(XMLError):
    """A document-store operation failed (unknown document, bad fragment, ...)."""


class StorageError(ReproError):
    """Errors raised by the page-wise updatable storage layer."""


class UpdateError(StorageError):
    """A structural or value update could not be applied."""


class XQueryError(ReproError):
    """Base class for XQuery front-end errors."""


class XQuerySyntaxError(XQueryError):
    """The XQuery parser rejected the query text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class XQueryTypeError(XQueryError):
    """A dynamic type error occurred during evaluation (err:XPTY...)."""


class XQueryUnsupportedError(XQueryError):
    """The query uses an XQuery feature outside the supported subset."""


class XQueryRuntimeError(XQueryError):
    """A dynamic error occurred while evaluating the query."""


class StaircaseJoinError(ReproError):
    """Preconditions of a staircase-join algorithm were violated."""
