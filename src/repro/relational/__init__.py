"""Column-at-a-time relational engine (the MonetDB substrate).

The subpackage provides:

* :class:`~repro.relational.column.Column` and
  :class:`~repro.relational.table.Table` — materialised columnar storage,
* :mod:`~repro.relational.operators` — eager relational algebra operators
  with property propagation and physical algorithm selection,
* :mod:`~repro.relational.properties` — the ``dense/key/const/ord/grpord``
  property framework of Section 4.1,
* :mod:`~repro.relational.positional` — positional (address-computation)
  lookup and join algorithms,
* :mod:`~repro.relational.sorting` — full sort / refine sort with
  order-property awareness,
* :mod:`~repro.relational.explain` — operator trace and algorithm counters.
"""

from .cardinality import CardinalityEstimator, StoreStatistics
from .column import Column, DenseColumn, IntColumn, make_column, values_equal
from .explain import Trace, capture
from .plan import PlanBuilder, PlanNode, count_references, render_plan
from .properties import ColumnProps, GroupOrder, TableProps
from .rewrites import OptimizedModulePlan, RewriteReport, optimize
from .table import Table
from . import operators, positional, sorting

__all__ = [
    "CardinalityEstimator",
    "Column",
    "ColumnProps",
    "DenseColumn",
    "IntColumn",
    "make_column",
    "values_equal",
    "GroupOrder",
    "OptimizedModulePlan",
    "PlanBuilder",
    "PlanNode",
    "RewriteReport",
    "StoreStatistics",
    "Table",
    "TableProps",
    "Trace",
    "capture",
    "count_references",
    "operators",
    "optimize",
    "positional",
    "render_plan",
    "sorting",
]
