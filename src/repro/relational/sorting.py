"""Sorting primitives: full sort, refine sort, and order checks.

The paper's peephole optimization prunes sort operators when the required
order is already present and replaces full sorts by *refine sorts* (sorting
only within already-ordered groups, MonetDB's incremental, pipelinable
refine-sorting algorithm).  This module provides those primitives plus a
total order over the mixed-typed values an ``item`` column may hold.
"""

from __future__ import annotations

from typing import Any, Sequence

from . import explain
from .properties import TableProps
from .table import Table


#: type ranks for the generic total order over polymorphic item values
_TYPE_RANK = {
    bool: 0,
    int: 1,
    float: 1,
    str: 2,
}


def total_order_key(value: Any) -> tuple:
    """A sort key defining a total order over polymorphic column values.

    Numeric values order among themselves, strings among themselves, and any
    other type (e.g. node surrogates) by its own comparison after grouping by
    type name.  This keeps ``sorted`` deterministic for mixed columns.
    """
    if value is None:
        return (-1, 0)
    value_type = type(value)
    rank = _TYPE_RANK.get(value_type)
    if rank is not None:
        if value_type is bool:
            return (0, int(value))
        return (rank, value)
    try:
        return (3, value_type.__name__, value)
    except TypeError:  # pragma: no cover - unorderable exotic type
        return (3, value_type.__name__, repr(value))


def row_key(table: Table, columns: Sequence[str]):
    """Build a key function over row positions for the given sort columns."""
    cols = [table.col(name) for name in columns]

    def key(position: int) -> tuple:
        return tuple(total_order_key(col[position]) for col in cols)

    return key


def is_sorted_on(table: Table, columns: Sequence[str]) -> bool:
    """Physically verify that ``table`` is sorted on ``columns`` (O(n))."""
    if table.row_count <= 1 or not columns:
        return True
    key = row_key(table, columns)
    previous = key(0)
    for position in range(1, table.row_count):
        current = key(position)
        if current < previous:
            return False
        previous = current
    return True


def sort(table: Table, columns: Sequence[str], *,
         use_properties: bool = True) -> Table:
    """Sort ``table`` lexicographically on ``columns``.

    With ``use_properties=True`` (the order-aware mode of Section 4.1) the
    sort is skipped entirely when the table's ``ord`` property already
    guarantees the requested ordering; otherwise a full sort is performed.
    """
    columns = tuple(columns)
    if not columns or table.row_count <= 1:
        explain.record("sort", "sort.skipped", table.row_count, table.row_count,
                       detail="trivial")
        result = table.take(range(table.row_count), keep_order=True)
        result.props.order = columns if columns else result.props.order
        return result

    if use_properties and table.props.ordered_on(columns):
        explain.record("sort", "sort.skipped", table.row_count, table.row_count,
                       detail=",".join(columns))
        return table

    positions = sorted(range(table.row_count), key=row_key(table, columns))
    explain.record("sort", "sort.full", table.row_count, table.row_count,
                   detail=",".join(columns))
    result = table.take(positions)
    result.props = TableProps(order=columns)
    for name in columns:
        result.column(name).props = table.col_props(name).copy()
    return result


def sort_dedup_pairs(primary: Sequence[int], secondary: Sequence[int]
                     ) -> list[tuple[int, int]]:
    """Sort paired int buffers lexicographically on ``(primary, secondary)``
    and drop duplicate pairs.

    This is the between-steps kernel of the fused location-step pipeline:
    a staircase join delivers its result as paired ``(iter, pre)``
    ``array('q')`` buffers, and the next join wants its context as
    ``(pre, iter)`` pairs sorted on ``[pre, iter]``, duplicate free.  The
    whole operation runs on plain machine integers (``zip``/``set``/
    ``sorted`` are C-level loops over the raw buffers) — no node surrogate
    is ever boxed.
    """
    count = len(primary)
    if count <= 1:
        result = list(zip(primary, secondary))
    else:
        result = sorted(set(zip(primary, secondary)))
    explain.record("sort", "sort.int-pairs", count, len(result),
                   detail="raw-buffer sort/dedup")
    return result


def gallop(buffer: Sequence[int], target: int, lo: int = 0,
           hi: int | None = None) -> int:
    """First index in ``buffer[lo:hi]`` whose value is ``>= target``.

    The probe distance doubles from ``lo`` (galloping / exponential search),
    then a binary search closes in on the boundary — O(log d) for a match
    d positions away, which is what makes leapfrogging two sorted join
    columns output-sensitive instead of linear in the inputs.
    """
    if hi is None:
        hi = len(buffer)
    if lo >= hi or buffer[lo] >= target:
        return lo
    # invariant: buffer[lo + step/2] < target
    step = 1
    while lo + step < hi and buffer[lo + step] < target:
        step <<= 1
    low = lo + (step >> 1)
    high = min(lo + step, hi)
    while low < high:
        mid = (low + high) >> 1
        if buffer[mid] < target:
            low = mid + 1
        else:
            high = mid
    return low


def gallop_intersect(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Distinct common values of two sorted int buffers (leapfrog).

    Both inputs must be sorted ascending; duplicates are allowed and
    collapse to one occurrence in the output.  Each side advances by
    galloping to the other side's current value, so runtime is proportional
    to the number of "turns" the leapfrog takes, not the buffer lengths.
    """
    result: list[int] = []
    i, j = 0, 0
    nleft, nright = len(left), len(right)
    while i < nleft and j < nright:
        lv, rv = left[i], right[j]
        if lv == rv:
            result.append(lv)
            i = gallop(left, lv + 1, i + 1)
            j = gallop(right, rv + 1, j + 1)
        elif lv < rv:
            i = gallop(left, rv, i + 1)
        else:
            j = gallop(right, lv, j + 1)
    return result


def intersect_runs(left: Sequence[int], right: Sequence[int]
                   ) -> list[tuple[int, int, int, int, int]]:
    """Align the equal-value runs of two sorted int buffers.

    Returns one ``(value, left_start, left_end, right_start, right_end)``
    tuple per value present in *both* buffers, with half-open index ranges
    delimiting the run of that value on each side.  This is the leapfrog of
    :func:`gallop_intersect` keeping run boundaries — the building block of
    both the WCOJ per-attribute intersection and the sort-based existential
    equi-join (run detection replaces dict buckets).
    """
    result: list[tuple[int, int, int, int, int]] = []
    i, j = 0, 0
    nleft, nright = len(left), len(right)
    while i < nleft and j < nright:
        lv, rv = left[i], right[j]
        if lv == rv:
            left_end = gallop(left, lv + 1, i + 1)
            right_end = gallop(right, rv + 1, j + 1)
            result.append((lv, i, left_end, j, right_end))
            i, j = left_end, right_end
        elif lv < rv:
            i = gallop(left, rv, i + 1)
        else:
            j = gallop(right, lv, j + 1)
    return result


def argsort_ints(values: Sequence[int]) -> list[int]:
    """Positions that sort an int buffer ascending (stable)."""
    return sorted(range(len(values)), key=values.__getitem__)


def refine_sort(table: Table, group_columns: Sequence[str],
                minor_columns: Sequence[str], *,
                use_properties: bool = True) -> Table:
    """Sort on ``group_columns + minor_columns`` given the table is already
    ordered on ``group_columns``.

    The rows inside each group (maximal run of equal ``group_columns``
    values) are sorted on ``minor_columns`` without disturbing the group
    order — MonetDB's incremental refine-sort.  When the table's properties
    already guarantee the full ordering the operation is skipped.
    """
    group_columns = tuple(group_columns)
    minor_columns = tuple(minor_columns)
    full = group_columns + minor_columns

    if use_properties and table.props.ordered_on(full):
        explain.record("sort", "sort.skipped", table.row_count, table.row_count,
                       detail=",".join(full))
        return table

    group_key = row_key(table, group_columns)
    minor_key = row_key(table, minor_columns)

    positions: list[int] = []
    run: list[int] = []
    current_group = None
    for position in range(table.row_count):
        group = group_key(position)
        if current_group is None or group == current_group:
            run.append(position)
            current_group = group
        else:
            positions.extend(sorted(run, key=minor_key))
            run = [position]
            current_group = group
    positions.extend(sorted(run, key=minor_key))

    explain.record("sort", "sort.refine", table.row_count, table.row_count,
                   detail=f"{','.join(group_columns)}+{','.join(minor_columns)}")
    result = table.take(positions)
    result.props = TableProps(order=full)
    for name in full:
        result.column(name).props = table.col_props(name).copy()
    return result
