"""Built-in function library of the XQuery front-end.

Every function receives the compiler (for access to the engine, document
store and options), the current loop relation and the already-compiled
``iter|pos|item`` tables of its arguments, and returns the ``iter|pos|item``
encoding of its result.  Two families cover almost everything:

* *aggregates* (count, sum, avg, max, min, exists, empty, distinct-values)
  fold the argument sequence per iteration — a relational ``aggregate`` by
  the ``iter`` column, which is "for free" because sequence tables are kept
  ordered on ``[iter, pos]``;
* *item-wise* functions (string, number, contains, concat, ...) map the
  per-iteration singleton values of their arguments.

The registry is keyed by function name; unknown functions raise
:class:`~repro.errors.XQueryUnsupportedError` naming the function.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from ..errors import XQueryRuntimeError, XQueryTypeError, XQueryUnsupportedError
from ..xml.document import NodeKind, NodeRef
from .sequences import (items_by_iteration, lift_constant, sequence_items,
                        singleton_per_iter)
from .types import atomize, effective_boolean_value, to_number, to_string


FunctionImpl = Callable[..., Any]

_REGISTRY: dict[str, FunctionImpl] = {}


def register(name: str) -> Callable[[FunctionImpl], FunctionImpl]:
    def decorator(impl: FunctionImpl) -> FunctionImpl:
        _REGISTRY[name] = impl
        return impl
    return decorator


def lookup(name: str) -> FunctionImpl:
    if name.startswith("fn:"):
        name = name[3:]
    try:
        return _REGISTRY[name]
    except KeyError:
        raise XQueryUnsupportedError(f"unknown function {name}()") from None


def is_builtin(name: str) -> bool:
    if name.startswith("fn:"):
        name = name[3:]
    return name in _REGISTRY


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _first_by_iter(table) -> dict[int, Any]:
    """First item of each iteration (singleton access)."""
    first: dict[int, Any] = {}
    for iteration, item in zip(table.col("iter"), table.col("item")):
        first.setdefault(iteration, item)
    return first


def _map_items(compiler, loop, args, function, *, required: int | None = None,
               skip_missing: bool = True):
    """Apply ``function`` per iteration to the first item of each argument."""
    required = len(args) if required is None else required
    firsts = [_first_by_iter(argument) for argument in args]
    values: dict[int, Any] = {}
    for iteration in loop.col("iter"):
        operands = [first.get(iteration) for first in firsts]
        if skip_missing and any(operand is None for operand in operands[:required]):
            continue
        result = function(*operands)
        if result is None:
            continue
        values[iteration] = result
    return singleton_per_iter(loop, values)


def _constant_per_iter(loop, values_by_iter: dict[int, Any]):
    return singleton_per_iter(loop, values_by_iter)


# --------------------------------------------------------------------------- #
# sequence aggregates
# --------------------------------------------------------------------------- #
@register("count")
def fn_count(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    values = {iteration: len(grouped.get(iteration, []))
              for iteration in loop.col("iter")}
    return _constant_per_iter(loop, values)


def _numeric_aggregate(loop, argument, kind: str):
    grouped = items_by_iteration(argument)
    values: dict[int, Any] = {}
    for iteration in loop.col("iter"):
        numbers = [to_number(item) for item in grouped.get(iteration, [])]
        numbers = [number for number in numbers if number is not None]
        if kind == "sum":
            values[iteration] = sum(numbers) if numbers else 0
            continue
        if not numbers:
            continue
        if kind == "min":
            values[iteration] = min(numbers)
        elif kind == "max":
            values[iteration] = max(numbers)
        elif kind == "avg":
            values[iteration] = sum(numbers) / len(numbers)
    return _constant_per_iter(loop, values)


@register("sum")
def fn_sum(compiler, loop, args):
    return _numeric_aggregate(loop, args[0], "sum")


@register("avg")
def fn_avg(compiler, loop, args):
    return _numeric_aggregate(loop, args[0], "avg")


@register("min")
def fn_min(compiler, loop, args):
    return _numeric_aggregate(loop, args[0], "min")


@register("max")
def fn_max(compiler, loop, args):
    return _numeric_aggregate(loop, args[0], "max")


@register("empty")
def fn_empty(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    values = {iteration: len(grouped.get(iteration, [])) == 0
              for iteration in loop.col("iter")}
    return _constant_per_iter(loop, values)


@register("exists")
def fn_exists(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    values = {iteration: len(grouped.get(iteration, [])) > 0
              for iteration in loop.col("iter")}
    return _constant_per_iter(loop, values)


@register("distinct-values")
def fn_distinct_values(compiler, loop, args):
    from .sequences import from_iter_items
    grouped = items_by_iteration(args[0])
    pairs: list[tuple[int, Any]] = []
    for iteration in loop.col("iter"):
        seen: set[Any] = set()
        for item in grouped.get(iteration, []):
            value = atomize(item)
            key = to_number(value)
            if key is None:
                key = to_string(value)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((iteration, value))
    return from_iter_items(pairs)


@register("reverse")
def fn_reverse(compiler, loop, args):
    from .sequences import from_iter_items
    grouped = items_by_iteration(args[0])
    pairs: list[tuple[int, Any]] = []
    for iteration in loop.col("iter"):
        for item in reversed(grouped.get(iteration, [])):
            pairs.append((iteration, item))
    return from_iter_items(pairs)


@register("zero-or-one")
def fn_zero_or_one(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    for iteration, items in grouped.items():
        if len(items) > 1:
            raise XQueryTypeError("zero-or-one() applied to a longer sequence")
    return args[0]


@register("exactly-one")
def fn_exactly_one(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    for iteration in loop.col("iter"):
        if len(grouped.get(iteration, [])) != 1:
            raise XQueryTypeError("exactly-one() argument is not a singleton")
    return args[0]


@register("one-or-more")
def fn_one_or_more(compiler, loop, args):
    return args[0]


@register("subsequence")
def fn_subsequence(compiler, loop, args):
    from .sequences import from_iter_items
    grouped = items_by_iteration(args[0])
    starts = _first_by_iter(args[1])
    lengths = _first_by_iter(args[2]) if len(args) > 2 else {}
    pairs: list[tuple[int, Any]] = []
    for iteration in loop.col("iter"):
        items = grouped.get(iteration, [])
        start = int(to_number(starts.get(iteration, 1)) or 1)
        length = lengths.get(iteration)
        stop = len(items) if length is None else start - 1 + int(to_number(length) or 0)
        for item in items[start - 1:stop]:
            pairs.append((iteration, item))
    return from_iter_items(pairs)


# --------------------------------------------------------------------------- #
# booleans
# --------------------------------------------------------------------------- #
@register("not")
def fn_not(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    values = {iteration: not effective_boolean_value(grouped.get(iteration, []))
              for iteration in loop.col("iter")}
    return _constant_per_iter(loop, values)


@register("boolean")
def fn_boolean(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    values = {iteration: effective_boolean_value(grouped.get(iteration, []))
              for iteration in loop.col("iter")}
    return _constant_per_iter(loop, values)


@register("true")
def fn_true(compiler, loop, args):
    return lift_constant(loop, True)


@register("false")
def fn_false(compiler, loop, args):
    return lift_constant(loop, False)


# --------------------------------------------------------------------------- #
# strings
# --------------------------------------------------------------------------- #
@register("string")
def fn_string(compiler, loop, args):
    if not args:
        raise XQueryUnsupportedError("string() without argument needs a context item")
    return _map_items(compiler, loop, args, lambda value: to_string(value))


@register("data")
def fn_data(compiler, loop, args):
    from .sequences import from_iter_items
    grouped = items_by_iteration(args[0])
    pairs = [(iteration, atomize(item))
             for iteration in loop.col("iter")
             for item in grouped.get(iteration, [])]
    return from_iter_items(pairs)


@register("string-length")
def fn_string_length(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: len(to_string(value)))


@register("contains")
def fn_contains(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda haystack, needle:
                      to_string(needle) in to_string(haystack))


@register("starts-with")
def fn_starts_with(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda haystack, needle:
                      to_string(haystack).startswith(to_string(needle)))


@register("ends-with")
def fn_ends_with(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda haystack, needle:
                      to_string(haystack).endswith(to_string(needle)))


@register("substring")
def fn_substring(compiler, loop, args):
    def substring(value, start, length=None):
        text = to_string(value)
        begin = int(round(to_number(start) or 1)) - 1
        if length is None:
            return text[max(begin, 0):]
        end = begin + int(round(to_number(length) or 0))
        return text[max(begin, 0):max(end, 0)]
    return _map_items(compiler, loop, args, substring, required=2)


@register("concat")
def fn_concat(compiler, loop, args):
    def concat(*values):
        return "".join(to_string(value) for value in values if value is not None)
    return _map_items(compiler, loop, args, concat, required=0, skip_missing=False)


@register("string-join")
def fn_string_join(compiler, loop, args):
    grouped = items_by_iteration(args[0])
    separators = _first_by_iter(args[1]) if len(args) > 1 else {}
    values: dict[int, str] = {}
    for iteration in loop.col("iter"):
        separator = to_string(separators.get(iteration, ""))
        values[iteration] = separator.join(
            to_string(item) for item in grouped.get(iteration, []))
    return _constant_per_iter(loop, values)


@register("normalize-space")
def fn_normalize_space(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: " ".join(to_string(value).split()))


@register("upper-case")
def fn_upper_case(compiler, loop, args):
    return _map_items(compiler, loop, args, lambda value: to_string(value).upper())


@register("lower-case")
def fn_lower_case(compiler, loop, args):
    return _map_items(compiler, loop, args, lambda value: to_string(value).lower())


# --------------------------------------------------------------------------- #
# numbers
# --------------------------------------------------------------------------- #
@register("number")
def fn_number(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: to_number(value)
                      if to_number(value) is not None else math.nan)


@register("round")
def fn_round(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: round(to_number(value) or 0))


@register("floor")
def fn_floor(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: math.floor(to_number(value) or 0))


@register("ceiling")
def fn_ceiling(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: math.ceil(to_number(value) or 0))


@register("abs")
def fn_abs(compiler, loop, args):
    return _map_items(compiler, loop, args,
                      lambda value: abs(to_number(value) or 0))


# --------------------------------------------------------------------------- #
# nodes and documents
# --------------------------------------------------------------------------- #
@register("doc")
def fn_doc(compiler, loop, args):
    names = _first_by_iter(args[0])
    values: dict[int, Any] = {}
    for iteration in loop.col("iter"):
        name = names.get(iteration)
        if name is None:
            continue
        container = compiler.engine.store.get(to_string(name))
        values[iteration] = NodeRef(container, 0)
    return _constant_per_iter(loop, values)


@register("document")
def fn_document(compiler, loop, args):
    return fn_doc(compiler, loop, args)


@register("name")
def fn_name(compiler, loop, args):
    def node_name(item):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError("name() requires a node argument")
        return item.name() or ""
    return _map_items(compiler, loop, args, node_name)


@register("local-name")
def fn_local_name(compiler, loop, args):
    return fn_name(compiler, loop, args)


@register("root")
def fn_root(compiler, loop, args):
    def root_of(item):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError("root() requires a node argument")
        return NodeRef(item.container, item.container.root_pre(item.pre))
    return _map_items(compiler, loop, args, root_of)
