"""Figure 12 — benefits of the loop-lifted staircase join.

The paper evaluates five engine configurations over the XMark queries:
iterative vs. loop-lifted execution of the child and descendant steps, plus
nametest pushdown.  Expected shape: loop-lifting wins clearly on step-heavy
queries; single-iteration queries (Q6, Q7) only gain from nametest pushdown.
"""

import pytest

from repro.xmark import XMARK_QUERIES

from .conftest import build_engine


CONFIGS = {
    "iterative": dict(loop_lifted_child=False, loop_lifted_descendant=False,
                      loop_lifted_other=False, nametest_pushdown=False),
    "ll-child-only": dict(loop_lifted_child=True, loop_lifted_descendant=False,
                          loop_lifted_other=False, nametest_pushdown=False),
    "ll-descendant-only": dict(loop_lifted_child=False, loop_lifted_descendant=True,
                               loop_lifted_other=False, nametest_pushdown=False),
    "loop-lifted": dict(nametest_pushdown=False),
    "loop-lifted+nametest": dict(),
}

#: a representative subset covering step-heavy, join and aggregation queries
QUERIES = (1, 2, 6, 7, 13, 14, 15, 17, 19, 20)


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("query", QUERIES)
def test_fig12_step_configurations(benchmark, xmark_engine, query, config):
    options = xmark_engine.options.replace(**CONFIGS[config])
    text = XMARK_QUERIES[query]

    def run():
        xmark_engine.reset_transient()
        return len(xmark_engine.query(text, options=options))

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig12"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["config"] = config
    benchmark.extra_info["result_size"] = result
