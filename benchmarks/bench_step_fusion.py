"""Step-chain fusion vs. the per-step pipeline — XMark path benchmarks.

Three workloads isolate the fusion win on deep paths:

* **descendant count** — a 4-step descendant-heavy count-only path: the
  fused pipeline is surrogate-free end to end (``//x`` shapes collapse to
  index-backed descendant joins, dead-``item`` pruning removes the final
  boxing), while the per-step baseline materialises every
  ``descendant-or-self::node()`` intermediate as boxed ``NodeRef`` tables,
* **descendant materialize** — the same chain returning the nodes: fusion
  still skips every intermediate, boxing only the final result,
* **child chain** — a 5-step child-axis absolute path (``count`` form):
  the modest-intermediate regime where fusion saves the per-step
  boxing/unboxing round trips but the staircase scans dominate.

Fused and per-step results are asserted bit-identical before timing; the
descendant-heavy workloads must show >= 2x (in practice far more — the
acceptance floor of the fusion work).  Results land in
``benchmarks/results/BENCH_step_fusion.json``.
"""

from __future__ import annotations

import time

from repro import EngineOptions, MonetXQuery
from repro.relational.explain import capture
from repro.xmark import generate_document

from .conftest import BASE_SCALE, SEED, write_bench_json

#: deep paths need a document big enough that per-query fixed costs do not
#: drown the pipeline difference — keep a floor under the smoke scale
SCALE = max(BASE_SCALE, 0.004)
REPEATS = 5

_RESULTS: dict[str, dict] = {}
_ENGINE: MonetXQuery | None = None


def engine() -> MonetXQuery:
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = MonetXQuery()
        _ENGINE.load_document_text(generate_document(SCALE, SEED),
                                   name="auction.xml")
    return _ENGINE


def best_of(prepared, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        prepared.run()
        best = min(best, time.perf_counter() - started)
    return best


def measure(workload: str, query: str, detail: str) -> float:
    mxq = engine()
    fused = mxq.prepare(query, options=EngineOptions(step_fusion=True))
    per_step = mxq.prepare(query, options=EngineOptions(step_fusion=False))

    # correctness first: fusion may change how the path runs, never its bytes
    assert fused.run().serialize() == per_step.run().serialize()
    with capture() as trace:
        fused.run()
    assert trace.count("step.chain-fused") >= 1, \
        f"workload {workload!r} did not exercise a fused chain"

    fused_seconds = best_of(fused)
    per_step_seconds = best_of(per_step)
    speedup = per_step_seconds / fused_seconds if fused_seconds \
        else float("inf")
    _RESULTS[workload] = {
        "query": query,
        "fused_s": fused_seconds,
        "per_step_s": per_step_seconds,
        "speedup": speedup,
        "detail": detail,
    }
    write_bench_json("step_fusion", {"scale_used": SCALE,
                                     "workloads": _RESULTS})
    return speedup


def test_descendant_heavy_count_chain():
    speedup = measure(
        "descendant_count",
        "count(//open_auctions//open_auction//bidder//increase)",
        "4-step descendant-heavy count: surrogate-free vs. per-step boxing")
    assert speedup >= 2.0, f"descendant count speedup only {speedup:.1f}x"


def test_descendant_heavy_materializing_chain():
    speedup = measure(
        "descendant_materialize",
        "//open_auction//bidder//increase",
        "3-step descendant-heavy path returning nodes: one final boxing")
    assert speedup >= 2.0, f"descendant materialize speedup only {speedup:.1f}x"


def test_child_chain_count():
    speedup = measure(
        "child_count",
        "count(/site/open_auctions/open_auction/bidder/increase)",
        "5-step child-axis count: boxing round trips removed, scans shared")
    # the scans dominate here (~1.5x measured); the floor only guards
    # against fusion *losing* outright, with slack for timer noise on the
    # sub-millisecond runs of shared CI machines
    assert speedup >= 0.7, f"child chain regressed: {speedup:.2f}x"
