"""Concurrent serving — thread scaling and the cross-query subplan cache.

The north-star workload is heavy *repeated* XMark traffic from many
clients.  Two shapes are measured:

* **throughput vs. worker threads** — the same repeated query mix served
  through :class:`QueryServer` pools of different sizes.  The engine is
  pure Python, so the GIL bounds CPU parallelism; the interesting result
  is that the shared caches and the RW-locked store add no contention
  collapse as threads grow (reported as queries/second per pool size).
* **cross-query materialized subplan cache** — the same mix with and
  without the shared :class:`SubplanCache`.  Path-heavy queries (Q14's
  ``/site//item``, Q19, Q20) are dominated by loop-invariant absolute
  paths, so the cached configuration wins by the full navigation share
  after the first traversal; the assertion pins reported hit counts > 0.
"""

from __future__ import annotations

import pytest

from repro import MonetXQuery
from repro.server import QueryServer
from repro.xmark import XMARK_QUERIES


#: a hot-traffic mix: selective point query, path-heavy scans, a join
QUERY_MIX = [1, 6, 13, 14, 19, 20]
REPEATS = 4


def _serve_mix(server: QueryServer, repeats: int) -> int:
    futures = []
    for _ in range(repeats):
        for number in QUERY_MIX:
            futures.append(server.submit(XMARK_QUERIES[number]))
    return sum(len(future.result()) for future in futures)


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_throughput_scaling_with_threads(benchmark, xmark_document_text,
                                         threads):
    server = QueryServer(threads=threads)
    server.load_document_text(xmark_document_text, name="auction.xml")
    _serve_mix(server, 1)                       # warm both shared caches

    result = benchmark.pedantic(_serve_mix, args=(server, REPEATS),
                                rounds=1, iterations=1, warmup_rounds=0)

    stats = server.stats()
    benchmark.extra_info["figure"] = "concurrent-serving"
    benchmark.extra_info["threads"] = threads
    benchmark.extra_info["queries"] = REPEATS * len(QUERY_MIX)
    benchmark.extra_info["result_size"] = result
    benchmark.extra_info["plan_hits"] = stats.plan_cache.hits
    benchmark.extra_info["subplan_hits"] = stats.subplan_cache.hits
    assert stats.plan_cache.hits > 0
    server.close()


@pytest.mark.parametrize("mode", ["subplan-cache", "no-subplan-cache"])
def test_cross_query_subplan_cache_speedup(benchmark, xmark_document_text,
                                           mode):
    if mode == "subplan-cache":
        server = QueryServer(threads=2)
    else:
        server = QueryServer(threads=2, subplan_cache_size=0)
    server.load_document_text(xmark_document_text, name="auction.xml")
    _serve_mix(server, 1)                       # warm plan (+ subplan) caches

    result = benchmark.pedantic(_serve_mix, args=(server, REPEATS),
                                rounds=1, iterations=1, warmup_rounds=0)

    stats = server.stats()
    benchmark.extra_info["figure"] = "subplan-cache"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["result_size"] = result
    benchmark.extra_info["subplan_hits"] = stats.subplan_cache.hits
    benchmark.extra_info["subplan_misses"] = stats.subplan_cache.misses
    if mode == "subplan-cache":
        # the acceptance criterion: repeated traffic is served from the
        # materialized subplan cache (reported hit counts > 0)
        assert stats.subplan_cache.hits > 0
    else:
        assert server.subplan_cache is None
    server.close()


def test_results_identical_with_and_without_subplan_cache(
        xmark_document_text):
    """Guard for the benchmark itself: both configurations return the
    same sequences for the whole mix."""
    cached = QueryServer(threads=2)
    plain = MonetXQuery()
    cached.load_document_text(xmark_document_text, name="auction.xml")
    plain.load_document_text(xmark_document_text, name="auction.xml")
    for number in QUERY_MIX:
        text = XMARK_QUERIES[number]
        assert cached.execute(text).serialize() == \
            plain.query(text).serialize(), f"Q{number}"
    cached.close()
