"""Cardinality estimation for logical plans from document-store statistics.

MonetDB/XQuery's optimizer decisions (Section 4.1) are driven by properties
of the data, not just the query text; the per-tag element counts that the
document containers collect at shred time (the "loaded documents" side of
Figure 9) are exactly the statistic needed to size the inputs of a value
join before running it.  This module turns those counts into per-subplan
row estimates:

* :class:`StoreStatistics` — an immutable snapshot of the store's per-tag
  element counts (taken at plan-optimization time; prepared plans are cached
  against the store's schema version, so a snapshot can never go stale
  inside a cached plan),
* :class:`CardinalityEstimator` — a memoised bottom-up walk over
  :class:`~repro.relational.plan.PlanNode` DAGs.  Absolute location paths
  are estimated from the tag counts (``/site/people/person`` → the number
  of ``person`` elements); relative paths, variables and scalar operators
  fall back to small structural defaults.

The estimates feed the cost-based join rules in
:mod:`repro.relational.rewrites`: recognized value joins are ordered
smallest-build-side-first and the smaller join input is chosen as the hash
build side.  Estimates are heuristics — they steer plan choices and are
surfaced in ``explain()`` dumps, but never affect query results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import PlanNode


#: default selectivity of one predicate / where-conjunct (the classic 1/2)
PREDICATE_SELECTIVITY = 0.5

#: fallback row estimate for expressions the model cannot size (variables,
#: relative paths per context node, function calls)
DEFAULT_ROWS = 1.0


@dataclass(frozen=True)
class StoreStatistics:
    """A snapshot of the document store's cardinality statistics.

    ``tag_counts`` maps a local element name to its total element count
    across all loaded documents; ``document_count`` of 0 means "no
    statistics" and disables cost-based decisions.
    """

    tag_counts: Mapping[str, int] = field(default_factory=dict)
    total_nodes: int = 0
    total_elements: int = 0
    document_count: int = 0

    @classmethod
    def from_store(cls, store: Any) -> "StoreStatistics":
        """Snapshot a :class:`~repro.xml.document.DocumentStore` (duck-typed
        to keep this module free of xml-layer imports)."""
        tag_counts: dict[str, int] = {}
        total_nodes = 0
        total_elements = 0
        containers = store.containers()
        for container in containers:
            total_nodes += container.node_count
            total_elements += container.element_count
            for tag, count in container.tag_counts().items():
                tag_counts[tag] = tag_counts.get(tag, 0) + count
        return cls(tag_counts=tag_counts, total_nodes=total_nodes,
                   total_elements=total_elements,
                   document_count=len(containers))

    @property
    def available(self) -> bool:
        return self.document_count > 0

    def tag_count(self, local: str) -> int:
        return self.tag_counts.get(local, 0)


EMPTY_STATISTICS = StoreStatistics()


class CardinalityEstimator:
    """Per-subplan row estimates over a logical plan DAG (memoised).

    ``estimate(node)`` returns the expected number of items the subplan
    yields *per iteration of its enclosing loop*; loop multipliers are
    applied by the caller (the rewrite pass threads the ambient loop size
    when comparing join sides).
    """

    def __init__(self, statistics: StoreStatistics | None = None):
        self.statistics = statistics if statistics is not None \
            else EMPTY_STATISTICS
        self._memo: dict[int, float] = {}
        self._absolute: dict[int, bool] = {}

    @property
    def available(self) -> bool:
        return self.statistics.available

    # ------------------------------------------------------------------ #
    def estimate(self, node: "PlanNode") -> float:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        result = max(0.0, self._compute(node))
        self._memo[node.id] = result
        return result

    def is_absolute(self, node: "PlanNode") -> bool:
        """Whether a step chain is rooted at the context document root —
        only then do the store-wide tag counts size it directly."""
        cached = self._absolute.get(node.id)
        if cached is None:
            if node.kind == "root":
                cached = True
            elif node.kind == "step":
                cached = self.is_absolute(node.children[0])
            else:
                cached = False
            self._absolute[node.id] = cached
        return cached

    # ------------------------------------------------------------------ #
    def _compute(self, node: "PlanNode") -> float:
        kind = node.kind
        if kind in ("const", "context", "root", "var", "avt", "elem", "text"):
            return 1.0
        if kind == "empty":
            return 0.0
        if kind in ("cmp-general", "cmp-value", "arith", "unary", "and", "or",
                    "quantified"):
            return 1.0
        if kind == "range":
            return self._range_estimate(node)
        if kind == "seq":
            return sum(self.estimate(child) for child in node.children)
        if kind == "if":
            _, then_branch, else_branch = node.children
            return max(self.estimate(then_branch), self.estimate(else_branch))
        if kind == "step":
            return self._step_estimate(node)
        if kind == "filter":
            base = self.estimate(node.children[0])
            return base * PREDICATE_SELECTIVITY ** (len(node.children) - 1)
        if kind == "call":
            return self._call_estimate(node)
        if kind == "flwor":
            return self._flwor_estimate(node)
        if kind in ("for", "let"):
            return self.clause_estimate(node)
        if kind == "orderspec":
            return self.estimate(node.children[0])
        return DEFAULT_ROWS

    def _range_estimate(self, node: "PlanNode") -> float:
        start, end = node.children
        if start.kind == "const" and end.kind == "const" \
                and isinstance(start.p("value"), (int, float)) \
                and isinstance(end.p("value"), (int, float)):
            return max(0.0, float(end.p("value")) - float(start.p("value")) + 1)
        return 10.0

    def _step_estimate(self, node: "PlanNode") -> float:
        context_est = self.estimate(node.children[0])
        predicates = len(node.children) - 1
        selectivity = PREDICATE_SELECTIVITY ** predicates
        name = node.p("test_name")
        axis = node.p("axis")
        if name not in (None, "*") and node.p("test_kind") == "element":
            if self.is_absolute(node):
                # an absolute chain reaches every instance of the tag
                return self.statistics.tag_count(name) * selectivity
            # relative step: roughly one match per context node, but never
            # more than the tag population
            population = self.statistics.tag_count(name)
            return min(context_est, float(population)) * selectivity \
                if self.statistics.available else context_est * selectivity
        if axis == "attribute":
            return context_est * selectivity
        if axis in ("descendant", "descendant-or-self") \
                and self.statistics.available and self.is_absolute(node):
            return self.statistics.total_elements * selectivity
        return context_est * selectivity

    def _call_estimate(self, node: "PlanNode") -> float:
        name = node.p("name")
        if name.startswith("fn:"):
            name = name[3:]
        if name in ("count", "sum", "avg", "min", "max", "exists", "empty",
                    "not", "string", "number", "position", "last", "doc",
                    "zero-or-one", "exactly-one", "string-length",
                    "contains", "starts-with", "ends-with"):
            return 1.0
        if name == "distinct-values" and node.children:
            return self.estimate(node.children[0])
        if node.children:
            return max(self.estimate(child) for child in node.children)
        return 1.0

    def _flwor_estimate(self, node: "PlanNode") -> float:
        nclauses = node.p("nclauses")
        rows = 1.0
        for clause in node.children[:nclauses]:
            if clause.kind == "for":
                rows *= self.clause_estimate(clause)
        if node.p("has_where"):
            rows *= PREDICATE_SELECTIVITY
        return rows * self.estimate(node.children[-1])

    def clause_estimate(self, clause: "PlanNode") -> float:
        """Rows bound by one ``for``/``let`` clause, including pushed-down
        plan-level predicates."""
        rows = self.estimate(clause.children[0])
        return rows * PREDICATE_SELECTIVITY ** (len(clause.children) - 1)
