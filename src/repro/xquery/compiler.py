"""The loop-lifting XQuery-to-relational compiler (Pathfinder, Section 2.1).

Every expression is compiled *with respect to its enclosing ``for``-loops*,
represented by a unary ``loop`` relation; its value is an ``iter|pos|item``
table.  Because MonetDB executes its physical algebra (MIL) eagerly,
operator-at-a-time, the compiler here emits **and executes** the relational
operators as it walks the AST — the materialised intermediates carry the
column properties that drive physical algorithm choice (Section 4.1).

The compiler implements:

* loop-lifting of constants, variables and FLWOR expressions (scope maps,
  back-mapping, ``order by`` via per-tuple rank keys),
* conditionals via loop splitting (Figure 5),
* general comparisons with existential semantics (Section 4.2),
* XPath location steps through the loop-lifted staircase join with optional
  nametest pushdown (Section 3), including positional and boolean
  predicates via nested iteration scopes,
* **join recognition** (Section 4.1, ``indep`` property): a ``for`` clause
  whose binding sequence is loop-invariant and that is paired with a
  comparison in the ``where`` clause is evaluated as a value-based
  theta-join with existential semantics instead of a lifted Cartesian
  product — the rewrite that makes XMark Q8–Q12 scale linearly,
* element/text constructors into the transient document container,
* the built-in function library and non-recursive user-defined functions.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import (XQueryRuntimeError, XQueryTypeError,
                      XQueryUnsupportedError)
from ..relational import operators as ops
from ..relational.column import Column
from ..relational.properties import TableProps
from ..relational.sorting import sort
from ..relational.table import Table
from ..staircase.axes import Axis
from ..staircase.iterative import StaircaseStats
from ..xml.document import NodeRef
from . import ast, functions
from .constructors import construct_element, construct_text
from .joins import existential_compare, existential_join, flip_comparison
from .sequences import (back_map, empty_sequence, ensure_sequence_order,
                        for_binding, from_iter_items, items_by_iteration,
                        lift_constant, lift_environment, lift_items,
                        make_loop, restrict_loop, restrict_sequence,
                        sequence_items, singleton_per_iter, unit_loop)
from .steps import StepOptions, axis_step, node_test_from_ast
from .types import (atomize, effective_boolean_value, to_number, to_string)


class LoopLiftingCompiler:
    """Compiles-and-evaluates a parsed query against an engine."""

    def __init__(self, engine):
        self.engine = engine
        self.options = engine.options
        self.user_functions: dict[str, ast.FunctionDecl] = {}
        self.global_items: dict[str, list[Any]] = {}
        self.step_stats = StaircaseStats()
        self._call_stack: list[str] = []

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def run(self, module: ast.Module, context_item: Any | None = None) -> list[Any]:
        """Evaluate a parsed module; returns the result item sequence."""
        self.user_functions = dict(module.functions)
        loop = unit_loop()
        env: dict[str, Table] = {}
        if context_item is not None:
            env["."] = lift_constant(loop, context_item)
        for declaration in module.variables:
            table = self.compile(declaration.value, loop, env)
            self.global_items[declaration.name] = sequence_items(table, 1)
        result = self.compile(module.body, loop, env)
        result = ensure_sequence_order(
            result, use_properties=self.options.order_optimization)
        return sequence_items(result, 1)

    @property
    def step_options(self) -> StepOptions:
        return StepOptions(
            loop_lifted_child=self.options.loop_lifted_child,
            loop_lifted_descendant=self.options.loop_lifted_descendant,
            loop_lifted_other=self.options.loop_lifted_other,
            nametest_pushdown=self.options.nametest_pushdown,
        )

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def compile(self, node: ast.Expr, loop: Table, env: dict[str, Table]) -> Table:
        method = getattr(self, f"_compile_{type(node).__name__}", None)
        if method is None:
            raise XQueryUnsupportedError(
                f"unsupported expression {type(node).__name__}")
        return method(node, loop, env)

    # -- literals, variables, sequences ------------------------------------- #
    def _compile_Literal(self, node: ast.Literal, loop, env) -> Table:
        return lift_constant(loop, node.value)

    def _compile_EmptySequence(self, node, loop, env) -> Table:
        return empty_sequence()

    def _compile_VarRef(self, node: ast.VarRef, loop, env) -> Table:
        if node.name in env:
            return env[node.name]
        if node.name in self.global_items:
            return lift_items(loop, self.global_items[node.name])
        raise XQueryRuntimeError(f"unbound variable ${node.name}")

    def _compile_ContextItem(self, node, loop, env) -> Table:
        if "." not in env:
            raise XQueryRuntimeError("the context item is undefined here")
        return env["."]

    def _compile_SequenceExpr(self, node: ast.SequenceExpr, loop, env) -> Table:
        parts = [self.compile(item, loop, env) for item in node.items]
        return self._concatenate(parts)

    def _concatenate(self, parts: list[Table]) -> Table:
        branches = []
        for index, part in enumerate(parts):
            if part.row_count == 0:
                continue
            branches.append(ops.attach(part, "branch", index))
        if not branches:
            return empty_sequence()
        merged = ops.union_all(branches)
        merged = sort(merged, ("iter", "branch", "pos"),
                      use_properties=self.options.order_optimization)
        merged = ops.rownum(merged, "new_pos", ("branch", "pos"),
                            partition="iter",
                            use_properties=self.options.order_optimization)
        result = ops.project(merged, {"iter": "iter", "pos": "new_pos",
                                      "item": "item"})
        result.props.order = ("iter", "pos")
        return result

    def _compile_RangeExpr(self, node: ast.RangeExpr, loop, env) -> Table:
        start = self._singleton_values(self.compile(node.start, loop, env))
        end = self._singleton_values(self.compile(node.end, loop, env))
        pairs: list[tuple[int, Any]] = []
        for iteration in loop.col("iter"):
            low = to_number(start.get(iteration))
            high = to_number(end.get(iteration))
            if low is None or high is None:
                continue
            for value in range(int(low), int(high) + 1):
                pairs.append((iteration, value))
        return from_iter_items(pairs)

    # -- arithmetic, comparisons, logic -------------------------------------- #
    def _singleton_values(self, table: Table) -> dict[int, Any]:
        values: dict[int, Any] = {}
        for iteration, item in zip(table.col("iter"), table.col("item")):
            values.setdefault(iteration, item)
        return values

    def _compile_ArithmeticExpr(self, node: ast.ArithmeticExpr, loop, env) -> Table:
        left = self._singleton_values(self.compile(node.left, loop, env))
        right = self._singleton_values(self.compile(node.right, loop, env))
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in left or iteration not in right:
                continue
            result = ops.arithmetic(node.op, atomize(left[iteration]),
                                    atomize(right[iteration]))
            if result is not None:
                values[iteration] = result
        return singleton_per_iter(loop, values)

    def _compile_UnaryExpr(self, node: ast.UnaryExpr, loop, env) -> Table:
        operand = self._singleton_values(self.compile(node.operand, loop, env))
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in operand:
                continue
            number = to_number(operand[iteration])
            if number is None:
                continue
            values[iteration] = -number if node.negate else number
        return singleton_per_iter(loop, values)

    def _compile_ValueComparison(self, node: ast.ValueComparison, loop, env) -> Table:
        left = self._singleton_values(self.compile(node.left, loop, env))
        right = self._singleton_values(self.compile(node.right, loop, env))
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in left or iteration not in right:
                continue
            values[iteration] = ops.compare_values(
                node.op, atomize(left[iteration]), atomize(right[iteration]))
        return singleton_per_iter(loop, values)

    def _compile_GeneralComparison(self, node: ast.GeneralComparison, loop, env) -> Table:
        left = items_by_iteration(self.compile(node.left, loop, env))
        right = items_by_iteration(self.compile(node.right, loop, env))
        strategy = "auto" if self.options.existential_aggregates else "dedup"
        true_iterations = existential_compare(left, right, node.op,
                                              strategy=strategy)
        values = {iteration: iteration in true_iterations
                  for iteration in loop.col("iter")}
        return singleton_per_iter(loop, values)

    def _ebv_by_iteration(self, node: ast.Expr, loop, env) -> dict[int, bool]:
        table = self.compile(node, loop, env)
        grouped = items_by_iteration(table)
        return {iteration: effective_boolean_value(grouped.get(iteration, []))
                for iteration in loop.col("iter")}

    def _compile_AndExpr(self, node: ast.AndExpr, loop, env) -> Table:
        verdict = {iteration: True for iteration in loop.col("iter")}
        for operand in node.operands:
            partial = self._ebv_by_iteration(operand, loop, env)
            for iteration in verdict:
                verdict[iteration] = verdict[iteration] and partial.get(iteration, False)
        return singleton_per_iter(loop, verdict)

    def _compile_OrExpr(self, node: ast.OrExpr, loop, env) -> Table:
        verdict = {iteration: False for iteration in loop.col("iter")}
        for operand in node.operands:
            partial = self._ebv_by_iteration(operand, loop, env)
            for iteration in verdict:
                verdict[iteration] = verdict[iteration] or partial.get(iteration, False)
        return singleton_per_iter(loop, verdict)

    # -- conditionals --------------------------------------------------------- #
    def _compile_IfExpr(self, node: ast.IfExpr, loop, env) -> Table:
        verdict = self._ebv_by_iteration(node.condition, loop, env)
        then_iters = [it for it in loop.col("iter") if verdict.get(it, False)]
        else_iters = [it for it in loop.col("iter") if not verdict.get(it, False)]

        parts: list[Table] = []
        if then_iters:
            then_loop = make_loop(then_iters)
            then_env = {name: restrict_sequence(table, then_iters)
                        for name, table in env.items()}
            parts.append(self.compile(node.then_branch, then_loop, then_env))
        if else_iters:
            else_loop = make_loop(else_iters)
            else_env = {name: restrict_sequence(table, else_iters)
                        for name, table in env.items()}
            parts.append(self.compile(node.else_branch, else_loop, else_env))
        parts = [part for part in parts if part.row_count]
        if not parts:
            return empty_sequence()
        merged = ops.union_all(parts)
        merged = sort(merged, ("iter", "pos"),
                      use_properties=self.options.order_optimization)
        return merged

    # -- FLWOR ----------------------------------------------------------------- #
    def _compile_FLWORExpr(self, node: ast.FLWORExpr, loop, env) -> Table:
        current_loop = loop
        current_env = dict(env)
        tuple_map: Table | None = None           # outer -> inner, composed
        where = node.where
        consumed_where = False

        for clause in node.clauses:
            if isinstance(clause, ast.LetClause):
                current_env[clause.variable] = self.compile(
                    clause.value, current_loop, current_env)
                continue
            if not isinstance(clause, ast.ForClause):   # pragma: no cover
                raise XQueryUnsupportedError("unsupported FLWOR clause")

            join_plan = None
            if (self.options.join_recognition and where is not None
                    and not consumed_where):
                join_plan = self._recognize_join(clause, where, current_loop,
                                                 current_env)
            if join_plan is not None:
                scope_map, inner_loop, bindings, remaining_where = join_plan
                current_env = lift_environment(current_env, scope_map)
                current_env.update(bindings)
                tuple_map = self._compose_maps(tuple_map, scope_map)
                current_loop = inner_loop
                where = remaining_where
                consumed_where = True
                continue

            sequence = self.compile(clause.sequence, current_loop, current_env)
            scope_map, inner_loop, variable, positions = for_binding(
                sequence, use_properties=self.options.order_optimization)
            current_env = lift_environment(current_env, scope_map)
            current_env[clause.variable] = variable
            if clause.position_variable:
                current_env[clause.position_variable] = positions
            tuple_map = self._compose_maps(tuple_map, scope_map)
            current_loop = inner_loop

        if where is not None:
            verdict = self._ebv_by_iteration(where, current_loop, current_env)
            surviving = [it for it in current_loop.col("iter")
                         if verdict.get(it, False)]
            current_loop = make_loop(surviving)
            current_env = {name: restrict_sequence(table, surviving)
                           for name, table in current_env.items()}

        order_keys = None
        if node.order_by:
            order_keys = self._order_by_ranks(node.order_by, current_loop,
                                              current_env)

        body = self.compile(node.return_expr, current_loop, current_env)

        if tuple_map is None:
            if order_keys is not None:
                raise XQueryUnsupportedError(
                    "order by requires at least one for clause")
            return body
        return back_map(tuple_map, body, order_keys=order_keys,
                        use_properties=self.options.order_optimization)

    def _compose_maps(self, outer_map: Table | None, inner_map: Table) -> Table:
        """Compose two scope maps: (outer->mid) ∘ (mid->inner) = outer->inner."""
        if outer_map is None:
            return inner_map
        renamed = ops.project(outer_map, {"outermost": "outer", "mid": "inner"})
        joined = ops.join(inner_map, renamed, "outer", "mid",
                          use_positional=self.options.positional_lookup)
        composed = ops.project(joined, {"outer": "outermost", "inner": "inner"})
        composed.props.order = ("outer", "inner")
        return composed

    def _order_by_ranks(self, specs: list[ast.OrderSpec], loop, env) -> Table:
        """One rank value per iteration implementing the ``order by`` keys."""
        keys_per_spec = []
        for spec in specs:
            table = self.compile(spec.key, loop, env)
            keys_per_spec.append((self._singleton_values(table), spec.descending))
        iterations = list(loop.col("iter"))

        def sort_key(iteration: int):
            composite = []
            for values, descending in keys_per_spec:
                value = values.get(iteration)
                value = atomize(value) if value is not None else None
                number = to_number(value) if value is not None else None
                if number is not None:
                    missing = 1 if value is None else 0
                    composite.append((missing, -number if descending else number, ""))
                else:
                    text = to_string(value) if value is not None else ""
                    missing = 1 if value is None else 0
                    composite.append((missing, 0, text))
            return composite

        # stable two-phase sort: strings cannot be negated, so descending
        # string keys are handled by sorting each spec separately (last spec
        # first) with Python's stable sort
        ordered = list(iterations)
        for index in range(len(keys_per_spec) - 1, -1, -1):
            values, descending = keys_per_spec[index]

            def spec_key(iteration: int, values=values):
                value = values.get(iteration)
                value = atomize(value) if value is not None else None
                number = to_number(value) if value is not None else None
                if number is not None:
                    return (0, number, "")
                if value is None:
                    return (1, 0, "")
                return (0, float("inf"), to_string(value))

            ordered.sort(key=spec_key, reverse=descending)
        ranks = {iteration: rank for rank, iteration in enumerate(ordered, start=1)}
        return Table([
            Column("iter", iterations),
            Column("okey", [ranks[iteration] for iteration in iterations]),
        ], props=TableProps(order=("iter",)))

    # -- join recognition (Section 4.1 indep / Section 4.2) -------------------- #
    def _recognize_join(self, clause: ast.ForClause, where: ast.Expr,
                        current_loop: Table, env: dict[str, Table]):
        """Try to evaluate ``for $v in <loop-invariant seq> ... where lhs ⊖ rhs``
        as a value join; returns ``None`` when the pattern does not apply."""
        free = clause.sequence.free_variables()
        loop_variables = set(env) - {"."}
        if free & loop_variables:
            return None
        if clause.position_variable is not None:
            return None

        # the binding sequence may still use absolute paths (the context
        # item); independence only holds when every iteration sees the same
        # context document root
        constant_context = None
        if "." in env:
            roots = {(id(item.container), item.container.root_pre(item.pre))
                     for item in env["."].col("item")
                     if isinstance(item, NodeRef)}
            if len(roots) > 1:
                return None
            for item in env["."].col("item"):
                if isinstance(item, NodeRef):
                    constant_context = NodeRef(item.container,
                                               item.container.root_pre(item.pre))
                    break

        conjuncts = self._where_conjuncts(where)
        variable = clause.variable
        chosen_index = None
        v_side = other_side = None
        op = None
        for index, conjunct in enumerate(conjuncts):
            if not isinstance(conjunct, ast.GeneralComparison):
                continue
            left_free = conjunct.left.free_variables()
            right_free = conjunct.right.free_variables()
            bound_before = set(env) | {"."}
            if (variable in left_free and variable not in right_free
                    and left_free - {variable} <= set(self.global_items)
                    and right_free <= bound_before | set(self.global_items)):
                chosen_index = index
                v_side, other_side, op = conjunct.left, conjunct.right, \
                    flip_comparison(conjunct.op)
                break
            if (variable in right_free and variable not in left_free
                    and right_free - {variable} <= set(self.global_items)
                    and left_free <= bound_before | set(self.global_items)):
                chosen_index = index
                v_side, other_side, op = conjunct.right, conjunct.left, conjunct.op
                break
        if chosen_index is None:
            return None

        # 1. evaluate the loop-invariant binding sequence once
        base_loop = unit_loop()
        base_env: dict[str, Table] = {}
        if constant_context is not None:
            base_env["."] = lift_constant(base_loop, constant_context)
        sequence = self.compile(clause.sequence, base_loop, base_env)
        items = sequence_items(sequence, 1)
        if not items:
            # no binding items: the FLWOR contributes nothing for any outer
            # iteration — an empty scope map expresses exactly that
            empty_map = Table.from_dict({"outer": [], "inner": []},
                                        order=("outer", "inner"))
            bindings = {clause.variable: empty_sequence()}
            return empty_map, make_loop([]), bindings, \
                self._strip_conjunct(where, conjuncts, chosen_index)

        # 2. the side of the comparison that depends on $v, per binding item
        item_loop = make_loop(list(range(1, len(items) + 1)))
        item_env = {clause.variable: Table([
            Column("iter", list(range(1, len(items) + 1)), infer=True),
            Column.constant("pos", 1, len(items)),
            Column("item", list(items)),
        ], props=TableProps(order=("iter", "pos")))}
        if constant_context is not None:
            item_env["."] = lift_constant(item_loop, constant_context)
        v_values_table = self.compile(v_side, item_loop, item_env)
        v_rows = [(iteration, atomize(item))
                  for iteration, item in zip(v_values_table.col("iter"),
                                             v_values_table.col("item"))]

        # 3. the other side, per enclosing-loop iteration
        other_table = self.compile(other_side, current_loop, env)
        other_rows = [(iteration, atomize(item))
                      for iteration, item in zip(other_table.col("iter"),
                                                 other_table.col("item"))]

        # 4. existential theta-join: distinct (outer iteration, item index)
        strategy = "auto" if self.options.existential_aggregates else "dedup"
        pairs = existential_join(other_rows, v_rows, op, strategy=strategy)

        # 5. build the scope map / inner loop / $v binding for the survivors
        pairs.sort()
        outer_column = [pair[0] for pair in pairs]
        inner_column = list(range(1, len(pairs) + 1))
        scope_map = Table([
            Column("outer", outer_column),
            Column("inner", inner_column, infer=True),
        ], props=TableProps(order=("outer", "inner")))
        inner_loop = make_loop(inner_column)
        bound_items = [items[pair[1] - 1] for pair in pairs]
        bindings = {clause.variable: Table([
            Column("iter", inner_column, infer=True),
            Column.constant("pos", 1, len(pairs)),
            Column("item", bound_items),
        ], props=TableProps(order=("iter", "pos")))}

        remaining = self._strip_conjunct(where, conjuncts, chosen_index)
        return scope_map, inner_loop, bindings, remaining

    @staticmethod
    def _where_conjuncts(where: ast.Expr) -> list[ast.Expr]:
        if isinstance(where, ast.AndExpr):
            return list(where.operands)
        return [where]

    @staticmethod
    def _strip_conjunct(where: ast.Expr, conjuncts: list[ast.Expr],
                        index: int) -> ast.Expr | None:
        remaining = [conjunct for position, conjunct in enumerate(conjuncts)
                     if position != index]
        if not remaining:
            return None
        if len(remaining) == 1:
            return remaining[0]
        return ast.AndExpr(remaining)

    # -- quantified expressions ------------------------------------------------ #
    def _compile_QuantifiedExpr(self, node: ast.QuantifiedExpr, loop, env) -> Table:
        current_loop = loop
        current_env = dict(env)
        tuple_map: Table | None = None
        for variable, sequence_expr in node.bindings:
            sequence = self.compile(sequence_expr, current_loop, current_env)
            scope_map, inner_loop, bound, _ = for_binding(
                sequence, use_properties=self.options.order_optimization)
            current_env = lift_environment(current_env, scope_map)
            current_env[variable] = bound
            tuple_map = self._compose_maps(tuple_map, scope_map)
            current_loop = inner_loop

        verdict = self._ebv_by_iteration(node.satisfies, current_loop, current_env)
        per_outer: dict[int, list[bool]] = {}
        if tuple_map is None:                           # no bindings: degenerate
            per_outer = {iteration: [] for iteration in loop.col("iter")}
        else:
            for outer, inner in zip(tuple_map.col("outer"), tuple_map.col("inner")):
                per_outer.setdefault(outer, []).append(verdict.get(inner, False))
        values: dict[int, bool] = {}
        for iteration in loop.col("iter"):
            outcomes = per_outer.get(iteration, [])
            if node.quantifier == "some":
                values[iteration] = any(outcomes)
            else:
                values[iteration] = all(outcomes)
        return singleton_per_iter(loop, values)

    # -- paths ------------------------------------------------------------------ #
    def _compile_PathExpr(self, node: ast.PathExpr, loop, env) -> Table:
        if node.absolute:
            current = self._context_roots(loop, env)
        elif node.start is not None:
            current = self.compile(node.start, loop, env)
        else:
            current = self._compile_ContextItem(ast.ContextItem(), loop, env)
        for step in node.steps:
            if isinstance(step, ast.AxisStep):
                current = self._compile_axis_step(step, current, loop, env)
            else:
                raise XQueryUnsupportedError(
                    "only axis steps are supported inside a path")
        return current

    def _context_roots(self, loop, env) -> Table:
        if "." not in env:
            raise XQueryRuntimeError(
                "absolute path used without a context document")
        context = env["."]
        values: dict[int, Any] = {}
        for iteration, item in zip(context.col("iter"), context.col("item")):
            if not isinstance(item, NodeRef):
                raise XQueryTypeError("the context item is not a node")
            values.setdefault(
                iteration, NodeRef(item.container,
                                   item.container.root_pre(item.pre)))
        return singleton_per_iter(loop, values)

    def _compile_axis_step(self, step: ast.AxisStep, context: Table, loop, env) -> Table:
        node_test = node_test_from_ast(step.node_test)
        if not step.predicates:
            return axis_step(context, step.axis, node_test,
                             options=self.step_options, stats=self.step_stats)
        # predicates need positions relative to each context node: open a
        # nested iteration scope with one iteration per context node
        scope_map, sub_loop, dot, _ = for_binding(
            context, use_properties=self.options.order_optimization)
        produced = axis_step(dot, step.axis, node_test,
                             options=self.step_options, stats=self.step_stats)
        sub_env = lift_environment(env, scope_map)
        sub_env["."] = dot
        filtered = self._apply_predicates(produced, step.predicates, sub_loop,
                                          sub_env)
        merged = back_map(scope_map, filtered,
                          use_properties=self.options.order_optimization)
        return self._nodes_in_document_order(merged)

    def _compile_FilterExpr(self, node: ast.FilterExpr, loop, env) -> Table:
        base = self.compile(node.base, loop, env)
        return self._apply_predicates(base, node.predicates, loop, env)

    def _nodes_in_document_order(self, table: Table) -> Table:
        rows = sorted(
            zip(table.col("iter"), table.col("item")),
            key=lambda pair: (pair[0], pair[1].order_key()
                              if isinstance(pair[1], NodeRef) else (0, 0, 0, 0)))
        deduped: list[tuple[int, Any]] = []
        previous = None
        for pair in rows:
            if previous is not None and pair == previous:
                continue
            deduped.append(pair)
            previous = pair
        return from_iter_items(deduped)

    def _apply_predicates(self, sequence: Table, predicates: list[ast.Expr],
                          loop, env) -> Table:
        current = sequence
        for predicate in predicates:
            current = self._apply_one_predicate(current, predicate, loop, env)
        return current

    def _apply_one_predicate(self, sequence: Table, predicate: ast.Expr,
                             loop, env) -> Table:
        if sequence.row_count == 0:
            return sequence
        positions = sequence.col("pos")
        iterations = sequence.col("iter")

        # fast paths: positional literal and last()
        if isinstance(predicate, ast.Literal) and isinstance(predicate.value, int) \
                and not isinstance(predicate.value, bool):
            keep = [index for index, position in enumerate(positions)
                    if position == predicate.value]
            return self._rebuild_filtered(sequence, keep)
        if isinstance(predicate, ast.FunctionCall) and predicate.name == "last" \
                and not predicate.arguments:
            last_by_iter: dict[int, int] = {}
            for iteration, position in zip(iterations, positions):
                last_by_iter[iteration] = max(last_by_iter.get(iteration, 0), position)
            keep = [index for index, (iteration, position)
                    in enumerate(zip(iterations, positions))
                    if position == last_by_iter[iteration]]
            return self._rebuild_filtered(sequence, keep)

        # general case: a nested iteration scope with one iteration per item
        scope_map, sub_loop, dot, _ = for_binding(
            sequence, use_properties=self.options.order_optimization)
        counts: dict[int, int] = {}
        for iteration in iterations:
            counts[iteration] = counts.get(iteration, 0) + 1
        sub_env = lift_environment(env, scope_map)
        sub_env["."] = dot
        sub_env["fs:position"] = Table([
            Column("iter", list(sub_loop.col("iter")), infer=True),
            Column.constant("pos", 1, sequence.row_count),
            Column("item", list(positions)),
        ], props=TableProps(order=("iter", "pos")))
        sub_env["fs:last"] = Table([
            Column("iter", list(sub_loop.col("iter")), infer=True),
            Column.constant("pos", 1, sequence.row_count),
            Column("item", [counts[iteration] for iteration in iterations]),
        ], props=TableProps(order=("iter", "pos")))

        verdict_table = self.compile(predicate, sub_loop, sub_env)
        grouped = items_by_iteration(verdict_table)
        keep: list[int] = []
        for index, inner in enumerate(sub_loop.col("iter")):
            outcome = grouped.get(inner, [])
            if not outcome:
                continue
            first = outcome[0]
            if isinstance(first, (int, float)) and not isinstance(first, bool) \
                    and len(outcome) == 1:
                if first == positions[index]:
                    keep.append(index)
            elif effective_boolean_value(outcome):
                keep.append(index)
        return self._rebuild_filtered(sequence, keep)

    def _rebuild_filtered(self, sequence: Table, keep: list[int]) -> Table:
        kept = sequence.take(keep, keep_order=True)
        pairs = list(zip(kept.col("iter"), kept.col("item")))
        return from_iter_items(pairs)

    # -- node tests as steps are handled through steps.py ----------------------- #

    # -- functions --------------------------------------------------------------- #
    def _compile_FunctionCall(self, node: ast.FunctionCall, loop, env) -> Table:
        name = node.name
        if name.startswith("fn:"):
            name = name[3:]
        if name == "position" and not node.arguments:
            if "fs:position" not in env:
                raise XQueryRuntimeError("position() used outside a predicate")
            return env["fs:position"]
        if name == "last" and not node.arguments:
            if "fs:last" not in env:
                raise XQueryRuntimeError("last() used outside a predicate")
            return env["fs:last"]

        if node.name in self.user_functions or name in self.user_functions:
            declaration = self.user_functions.get(node.name) \
                or self.user_functions[name]
            return self._call_user_function(declaration, node, loop, env)

        if name in ("string", "data", "number", "name", "local-name") \
                and not node.arguments:
            node = ast.FunctionCall(name, [ast.ContextItem()])
        implementation = functions.lookup(name)
        arguments = [self.compile(argument, loop, env)
                     for argument in node.arguments]
        return implementation(self, loop, arguments)

    def _call_user_function(self, declaration: ast.FunctionDecl,
                            node: ast.FunctionCall, loop, env) -> Table:
        if declaration.name in self._call_stack:
            raise XQueryUnsupportedError(
                f"recursive user function {declaration.name}() is not supported "
                "by the eager loop-lifting evaluator")
        if len(node.arguments) != len(declaration.parameters):
            raise XQueryTypeError(
                f"{declaration.name}() expects {len(declaration.parameters)} "
                f"arguments, got {len(node.arguments)}")
        call_env: dict[str, Table] = {}
        for parameter, argument in zip(declaration.parameters, node.arguments):
            call_env[parameter] = self.compile(argument, loop, env)
        self._call_stack.append(declaration.name)
        try:
            return self.compile(declaration.body, loop, call_env)
        finally:
            self._call_stack.pop()

    # -- constructors -------------------------------------------------------------- #
    def _compile_ElementConstructor(self, node: ast.ElementConstructor, loop, env) -> Table:
        container = self.engine.transient
        attribute_values: list[tuple[str, dict[int, str]]] = []
        for attribute_name, template in node.attributes:
            attribute_values.append(
                (attribute_name, self._evaluate_value_template(template, loop, env)))

        content_parts: list[tuple[str, Any]] = []
        for part in node.content:
            if isinstance(part, str):
                content_parts.append(("text", part))
            else:
                content_parts.append(("expr", items_by_iteration(
                    self.compile(part, loop, env))))

        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            attributes = [(name, per_iter.get(iteration, ""))
                          for name, per_iter in attribute_values]
            content: list[Any] = []
            for kind, payload in content_parts:
                if kind == "text":
                    content.append(payload)
                else:
                    content.extend(payload.get(iteration, []))
            values[iteration] = construct_element(container, node.name,
                                                  attributes, content)
        return singleton_per_iter(loop, values)

    def _evaluate_value_template(self, template: ast.AttributeValue, loop, env
                                 ) -> dict[int, str]:
        pieces: list[tuple[str, Any]] = []
        for part in template.parts:
            if isinstance(part, str):
                pieces.append(("text", part))
            else:
                pieces.append(("expr", items_by_iteration(
                    self.compile(part, loop, env))))
        values: dict[int, str] = {}
        for iteration in loop.col("iter"):
            rendered: list[str] = []
            for kind, payload in pieces:
                if kind == "text":
                    rendered.append(payload)
                else:
                    rendered.append(" ".join(to_string(item)
                                             for item in payload.get(iteration, [])))
            values[iteration] = "".join(rendered)
        return values

    def _compile_TextConstructor(self, node: ast.TextConstructor, loop, env) -> Table:
        grouped = items_by_iteration(self.compile(node.content, loop, env))
        container = self.engine.transient
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            items = grouped.get(iteration, [])
            text = " ".join(to_string(item) for item in items)
            values[iteration] = construct_text(container, text)
        return singleton_per_iter(loop, values)
