"""Existential comparison / join strategies (Section 4.2, Figure 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import capture
from repro.xquery.joins import (existential_compare, existential_join,
                                flip_comparison)


class TestExistentialJoin:
    def test_figure8a_eq_with_duplicate_elimination(self):
        """The example of Figure 8(a): duplicates collapse to unique pairs."""
        left = [(1, 20), (2, 30), (2, 20)]
        right = [(1, 20), (1, 20), (2, 10), (2, 30)]
        pairs = existential_join(left, right, "eq", strategy="dedup")
        assert pairs == [(1, 1), (2, 1), (2, 2)]

    def test_figure8b_lt_with_minmax_aggregation(self):
        """The example of Figure 8(b): the aggregate plan gives unique pairs."""
        left = [(1, 5), (2, 20), (2, 15)]
        right = [(1, 1), (1, 10), (2, 25), (2, 30)]
        pairs = existential_join(left, right, "lt", strategy="aggregate")
        assert pairs == [(1, 1), (1, 2), (2, 2)]

    def test_aggregate_and_dedup_strategies_agree(self):
        left = [(i, value) for i in range(1, 5) for value in (i, i * 3)]
        right = [(j, value) for j in range(1, 4) for value in (j * 2, j + 1)]
        for op in ("lt", "le", "gt", "ge"):
            dedup = existential_join(left, right, op, strategy="dedup")
            aggregate = existential_join(left, right, op, strategy="aggregate")
            assert dedup == aggregate, op

    def test_eq_falls_back_to_dedup_even_when_aggregate_requested(self):
        left = [(1, "a")]
        right = [(1, "a"), (1, "a")]
        assert existential_join(left, right, "eq", strategy="aggregate") == [(1, 1)]

    def test_string_values_compare_as_strings(self):
        pairs = existential_join([(1, "person0")], [(7, "person0"), (8, "other")], "eq")
        assert pairs == [(1, 7)]

    def test_numeric_promotion_of_untyped_values(self):
        pairs = existential_join([(1, "42")], [(1, 42.0)], "eq")
        assert pairs == [(1, 1)]

    def test_empty_inputs(self):
        assert existential_join([], [(1, 1)], "eq") == []
        assert existential_join([(1, 1)], [], "lt") == []

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            existential_join([(1, 1)], [(1, 1)], "eq", strategy="quantum")

    def test_records_algorithm_in_trace(self):
        with capture() as trace:
            existential_join([(1, 1)], [(1, 2)], "lt", strategy="aggregate")
            existential_join([(1, 1)], [(1, 1)], "eq")
        assert trace.count("existential.aggregate") == 1
        assert trace.count("existential.dedup") == 1


class TestExistentialCompare:
    def test_true_only_when_any_pair_matches(self):
        left = {1: [1, 2], 2: [5]}
        right = {1: [3], 2: [1]}
        assert existential_compare(left, right, "lt") == {1}

    def test_empty_operand_is_false(self):
        assert existential_compare({1: []}, {1: [1]}, "eq") == set()
        assert existential_compare({1: [1]}, {}, "eq") == set()

    def test_eq_over_strings(self):
        left = {1: ["person0"], 2: ["person1"]}
        right = {1: ["person9"], 2: ["person1"]}
        assert existential_compare(left, right, "eq") == {2}

    def test_ne_with_multiple_values(self):
        assert existential_compare({1: [1, 1]}, {1: [1]}, "ne") == set()
        assert existential_compare({1: [1, 2]}, {1: [1]}, "ne") == {1}

    def test_strategies_agree(self):
        left = {i: [i, i + 2] for i in range(5)}
        right = {i: [i + 1] for i in range(5)}
        for op in ("lt", "le", "gt", "ge", "eq", "ne"):
            assert existential_compare(left, right, op, strategy="dedup") == \
                existential_compare(left, right, op, strategy="auto"), op


class TestFlip:
    def test_flip_comparison(self):
        assert flip_comparison("lt") == "gt"
        assert flip_comparison("ge") == "le"
        assert flip_comparison("eq") == "eq"


@given(
    st.lists(st.tuples(st.integers(1, 4), st.integers(-5, 5)), max_size=25),
    st.lists(st.tuples(st.integers(1, 4), st.integers(-5, 5)), max_size=25),
    st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
)
@settings(max_examples=80, deadline=None)
def test_existential_join_matches_bruteforce(left, right, op):
    """Both strategies equal the brute-force definition of existential joins."""
    import operator
    compare = {"eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
               "le": operator.le, "gt": operator.gt, "ge": operator.ge}[op]
    expected = sorted({(lg, rg) for lg, lv in left for rg, rv in right
                       if compare(lv, rv)})
    assert existential_join(left, right, op, strategy="dedup") == expected
    assert existential_join(left, right, op, strategy="auto") == expected
