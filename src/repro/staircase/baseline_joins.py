"""Baseline structural join algorithms (Section 7, related work).

The paper positions the loop-lifted staircase join against the stack-based
Structural Join [1] and Holistic Twig Join [7].  To make that comparison
runnable we provide a faithful (simplified) Structural Join for the
ancestor/descendant relationship: a merge of two document-ordered node lists
using a stack of open ancestors.  Unlike the staircase join it

* is not aware of iterations (no per-iteration pruning), so in a loop-lifted
  setting duplicates must be eliminated afterwards, and
* does not skip: every candidate descendant is inspected.
"""

from __future__ import annotations

from ..xml.document import DocumentContainer


def structural_join(container: DocumentContainer, ancestors: list[int],
                    descendants: list[int]) -> list[tuple[int, int]]:
    """All (ancestor, descendant) pairs with the XPath descendant relationship.

    ``ancestors`` and ``descendants`` must be document-ordered pre lists.
    Returns pairs ordered by descendant (the usual output order of the
    stack-based algorithm).
    """
    size = container.size
    result: list[tuple[int, int]] = []
    stack: list[int] = []                 # open ancestor candidates
    a_index = 0
    for descendant in descendants:
        # push every ancestor candidate that starts before this descendant
        while a_index < len(ancestors) and ancestors[a_index] < descendant:
            candidate = ancestors[a_index]
            a_index += 1
            # pop candidates whose subtree ended before this one starts
            while stack and stack[-1] + size[stack[-1]] < candidate:
                stack.pop()
            stack.append(candidate)
        # pop candidates whose subtree ended before the descendant
        while stack and stack[-1] + size[stack[-1]] < descendant:
            stack.pop()
        for ancestor in stack:
            if ancestor < descendant <= ancestor + size[ancestor]:
                result.append((ancestor, descendant))
    return result


def structural_join_descendant_step(container: DocumentContainer,
                                    context: list[int]) -> list[int]:
    """Evaluate a descendant step via structural join + duplicate elimination.

    This is the comparison baseline: the structural join produces one output
    pair per (context, descendant) combination, so overlapping context nodes
    generate duplicates that an explicit duplicate-elimination step must
    remove (the staircase join avoids generating them in the first place).
    """
    descendants = list(range(container.node_count))
    pairs = structural_join(container, sorted(set(context)), descendants)
    seen: set[int] = set()
    result: list[int] = []
    for _, descendant in pairs:
        if descendant not in seen:
            seen.add(descendant)
            result.append(descendant)
    result.sort()
    return result
