"""Built-in function library (relational engine)."""

import math

import pytest

from repro.errors import XQueryTypeError, XQueryUnsupportedError


class TestAggregates:
    def test_count_sum_avg(self, engine):
        assert engine.query("count((1, 2, 3))").items == [3]
        assert engine.query("sum((1, 2, 3))").items == [6]
        assert engine.query("avg((2, 4))").items == [3]

    def test_min_max(self, engine):
        assert engine.query("min((3, 1, 2))").items == [1]
        assert engine.query("max((3, 1, 2))").items == [3]

    def test_sum_of_empty_is_zero(self, engine):
        assert engine.query("sum(())").items == [0]

    def test_min_of_empty_is_empty(self, engine):
        assert engine.query("min(())").items == []

    def test_count_inside_loop(self, engine):
        result = engine.query("for $p in /site/people/person return count($p/name)")
        assert result.items == [1, 1, 1]

    def test_aggregates_coerce_untyped_text(self, engine):
        assert engine.query("sum(//price)").items == [155]


class TestBooleans:
    def test_empty_exists(self, engine):
        assert engine.query("empty(())").items == [True]
        assert engine.query("exists((1))").items == [True]

    def test_not_and_boolean(self, engine):
        assert engine.query("not(1 = 1)").items == [False]
        assert engine.query("boolean((0))").items == [False]
        assert engine.query('boolean("")').items == [False]
        assert engine.query("boolean(//person)").items == [True]

    def test_true_false(self, engine):
        assert engine.query("(true(), false())").items == [True, False]


class TestStrings:
    def test_string_and_data(self, engine):
        assert engine.query('string(42)').items == ["42"]
        assert engine.query('data(/site/people/person[1]/@id)').items == ["person0"]

    def test_contains_and_starts_with(self, engine):
        assert engine.query('contains("gold watch", "gold")').items == [True]
        assert engine.query('starts-with("gold watch", "watch")').items == [False]

    def test_contains_over_node_string_value(self, engine):
        query = ('for $i in /site/regions//item '
                 'where contains(string($i/description), "gold") '
                 'return $i/@id')
        assert engine.query(query).atomized() == ["item0"]

    def test_concat_and_string_join(self, engine):
        assert engine.query('concat("a", 1, "b")').items == ["a1b"]
        assert engine.query('string-join(("a", "b", "c"), "-")').items == ["a-b-c"]

    def test_substring_and_length(self, engine):
        assert engine.query('substring("abcdef", 2, 3)').items == ["bcd"]
        assert engine.query('string-length("abc")').items == [3]

    def test_normalize_space_and_case(self, engine):
        assert engine.query('normalize-space("  a   b ")').items == ["a b"]
        assert engine.query('upper-case("ab")').items == ["AB"]
        assert engine.query('lower-case("AB")').items == ["ab"]


class TestNumbers:
    def test_number_conversion(self, engine):
        assert engine.query('number("12")').items == [12]
        assert math.isnan(engine.query('number("nope")').items[0])

    def test_round_floor_ceiling_abs(self, engine):
        assert engine.query("round(2.5)").items == [2]
        assert engine.query("floor(2.9)").items == [2]
        assert engine.query("ceiling(2.1)").items == [3]
        assert engine.query("abs(-3)").items == [3]


class TestSequencesFunctions:
    def test_distinct_values(self, engine):
        assert engine.query("distinct-values((1, 2, 1, 3, 2))").items == [1, 2, 3]

    def test_distinct_values_on_attributes(self, engine):
        result = engine.query("distinct-values(//buyer/@person)")
        assert result.items == ["person0", "person2"]

    def test_reverse(self, engine):
        assert engine.query("reverse((1, 2, 3))").items == [3, 2, 1]

    def test_subsequence(self, engine):
        assert engine.query("subsequence((1, 2, 3, 4), 2, 2)").items == [2, 3]

    def test_zero_or_one_enforced(self, engine):
        with pytest.raises(XQueryTypeError):
            engine.query("zero-or-one((1, 2))")

    def test_exactly_one_enforced(self, engine):
        with pytest.raises(XQueryTypeError):
            engine.query("exactly-one(())")


class TestNodeFunctions:
    def test_name_and_local_name(self, engine):
        assert engine.query("name(/site/people)").items == ["people"]
        assert engine.query("local-name(/site/people/person[1]/@id)").items == ["id"]

    def test_root(self, engine):
        assert engine.query("count(root(//person[1]))").items == [1]

    def test_doc_unknown_document(self, engine):
        from repro.errors import DocumentError
        with pytest.raises(DocumentError):
            engine.query('doc("missing.xml")')

    def test_unknown_function(self, engine):
        with pytest.raises(XQueryUnsupportedError):
            engine.query("frobnicate(1)")
