"""Page-wise remappable pre-numbers (Section 5.2, Figure 11).

Structural updates are the Achilles heel of a range-based (``pre``) encoding:
inserting a subtree shifts the ``pre`` rank of every following node.  The
paper's scheme avoids that by

* replacing ``pre`` by an append-only row id ``rid``,
* dividing the ``rid|size|level`` table into *logical pages* of a power-of-two
  number of tuples,
* leaving a configurable percentage of *unused tuples* in every page
  (``level = NULL``; ``size`` holds the length of the free run so scans can
  skip it),
* appending new logical pages at the end only, and
* exposing the ``pre|size|level`` view through a *page map* that lists the
  logical pages in document order; ``pre`` ↔ ``rid`` translation is a cheap
  swizzle using the high bits of the number as an index into the page map.

Deletes leave unused tuples behind; inserts that fit the free space of a page
touch only that page; larger inserts append fresh pages and splice them into
the page map.  Consequently the I/O caused by an update is bounded by a
constant number of logical pages, not by the document size.
"""

from __future__ import annotations

from ..errors import StorageError


#: marker stored in the ``level`` column of unused tuples
UNUSED = None


class PagedStructure:
    """The ``rid|size|level`` table, its page map, and the ``pre`` view.

    ``page_size`` must be a power of two so that pre→rid swizzling can use
    bit operations (high bits select the page-map entry, low bits the offset
    inside the page).
    """

    def __init__(self, page_size: int = 64, fill_factor: float = 0.75):
        if page_size <= 0 or page_size & (page_size - 1):
            raise StorageError("page_size must be a positive power of two")
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError("fill_factor must be in (0, 1]")
        self.page_size = page_size
        self.page_bits = page_size.bit_length() - 1
        self.fill_factor = fill_factor
        # rid table columns (rid is the implicit dense row id)
        self.size: list[int] = []
        self.level: list[int | None] = []
        self.kind: list[int] = []
        self.name_id: list[int] = []
        self.value: list[str | None] = []
        # page map: logical (pre view) order -> rid page number
        self.page_map: list[int] = []

    # ------------------------------------------------------------------ #
    # page bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def rid_count(self) -> int:
        return len(self.size)

    @property
    def page_count(self) -> int:
        return len(self.page_map)

    @property
    def pre_count(self) -> int:
        """Number of addressable slots in the pre view (used + unused)."""
        return self.page_count * self.page_size

    def _append_empty_page(self) -> int:
        """Append a fully unused page to the rid table; returns its page number."""
        rid_page = self.rid_count // self.page_size
        if self.rid_count % self.page_size != 0:
            raise StorageError("rid table is not page aligned")  # pragma: no cover
        for offset in range(self.page_size):
            self.size.append(self.page_size - offset - 1)
            self.level.append(UNUSED)
            self.kind.append(-1)
            self.name_id.append(-1)
            self.value.append(None)
        return rid_page

    def append_page(self, at_logical_position: int | None = None) -> int:
        """Append a new (empty) logical page; splice it into the page map.

        ``at_logical_position=None`` appends at the end of the pre view.
        Returns the logical page number it received.
        """
        rid_page = self._append_empty_page()
        if at_logical_position is None:
            at_logical_position = len(self.page_map)
        if not 0 <= at_logical_position <= len(self.page_map):
            raise StorageError("logical page position out of range")
        self.page_map.insert(at_logical_position, rid_page)
        return at_logical_position

    # ------------------------------------------------------------------ #
    # pre <-> rid swizzling
    # ------------------------------------------------------------------ #
    def pre_to_rid(self, pre: int) -> int:
        """Swizzle a pre-view position into a rid (high bits → page map)."""
        page = pre >> self.page_bits
        offset = pre & (self.page_size - 1)
        if page >= len(self.page_map):
            raise StorageError(f"pre {pre} beyond the last logical page")
        return (self.page_map[page] << self.page_bits) | offset

    def rid_to_pre(self, rid: int) -> int:
        """Inverse swizzle (linear in the number of pages; used by tests)."""
        rid_page = rid >> self.page_bits
        offset = rid & (self.page_size - 1)
        try:
            logical = self.page_map.index(rid_page)
        except ValueError:
            raise StorageError(f"rid {rid} is not mapped to any logical page") from None
        return (logical << self.page_bits) | offset

    # ------------------------------------------------------------------ #
    # pre-view accessors
    # ------------------------------------------------------------------ #
    def is_unused(self, pre: int) -> bool:
        return self.level[self.pre_to_rid(pre)] is UNUSED

    def get(self, pre: int) -> tuple[int, int | None, int, int, str | None]:
        """(size, level, kind, name_id, value) of the pre-view slot."""
        rid = self.pre_to_rid(pre)
        return (self.size[rid], self.level[rid], self.kind[rid],
                self.name_id[rid], self.value[rid])

    def set(self, pre: int, *, size: int, level: int | None, kind: int,
            name_id: int, value: str | None) -> None:
        rid = self.pre_to_rid(pre)
        self.size[rid] = size
        self.level[rid] = level
        self.kind[rid] = kind
        self.name_id[rid] = name_id
        self.value[rid] = value

    def mark_unused(self, pre: int) -> None:
        """Turn a slot into an unused tuple (structural delete leaves these)."""
        rid = self.pre_to_rid(pre)
        self.level[rid] = UNUSED
        self.kind[rid] = -1
        self.name_id[rid] = -1
        self.value[rid] = None
        self.size[rid] = 0

    def compact_free_runs(self) -> None:
        """Recompute the ``size`` of unused tuples to the length of the free run.

        Unused tuples store the number of directly following consecutive
        unused tuples in their ``size`` column so that scans (and the
        staircase join) can skip over them quickly.
        """
        run_end: int | None = None
        for pre in range(self.pre_count - 1, -1, -1):
            rid = self.pre_to_rid(pre)
            if self.level[rid] is UNUSED:
                if run_end is None:
                    run_end = pre
                self.size[rid] = run_end - pre
            else:
                run_end = None

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def used_slots(self) -> list[int]:
        """Pre-view positions of all used (non-NULL level) tuples, in order."""
        return [pre for pre in range(self.pre_count) if not self.is_unused(pre)]

    def logical_view(self) -> list[tuple[int, int, int, int, str | None]]:
        """The dense ``pre|size|level`` view: used tuples in pre-view order.

        The returned list index is the *dense* pre rank that query processing
        sees (unused tuples are invisible to queries).
        """
        view = []
        for pre in range(self.pre_count):
            rid = self.pre_to_rid(pre)
            if self.level[rid] is UNUSED:
                continue
            view.append((self.size[rid], self.level[rid], self.kind[rid],
                         self.name_id[rid], self.value[rid]))
        return view

    def free_slots_in_page(self, logical_page: int) -> list[int]:
        """Unused pre-view positions inside one logical page."""
        start = logical_page << self.page_bits
        return [pre for pre in range(start, start + self.page_size)
                if self.is_unused(pre)]
