"""Concurrent query serving: :class:`QueryServer` + the cross-query
materialized subplan cache (:class:`SubplanCache`).

    >>> from repro.server import QueryServer
    >>> with QueryServer(threads=4) as server:
    ...     server.load_document_text("<a><b/></a>", name="doc.xml")
    ...     server.execute("count(//b)").items
    [1]
"""

from .procworker import RemoteQueryResult
from .server import QueryServer, ServerStats
from .subplan_cache import SubplanCache, SubplanCacheStats

__all__ = [
    "QueryServer",
    "RemoteQueryResult",
    "ServerStats",
    "SubplanCache",
    "SubplanCacheStats",
]
