"""The cross-query materialized subplan cache.

The rewrite optimizer marks *loop-invariant absolute-path* subplans
(``/site/people/person`` and every prefix of it) with a builder-independent
structural fingerprint (:func:`repro.relational.plan.structural_fingerprint`).
This cache stores their materialised ``item`` sequences **across queries and
threads**: two different queries that both navigate ``/site/people/person``
share one materialisation, turning the plan cache into a materialized-view
layer for hot XMark traffic — the free-connex structural-indexing view of a
cached path result as a reusable index structure.

Staleness is impossible by construction rather than by invalidation
callbacks: every key embeds the :attr:`DocumentStore.version
<repro.xml.document.DocumentStore.version>` schema version current at
execution time, so after any load/drop/update-commit the very same subplan
computes a *different* key and misses.  :meth:`SubplanCache.invalidate` only
reclaims the memory of entries stranded behind a version boundary; it is
never needed for correctness.

Entries pin their source :class:`DocumentContainer` (a strong reference),
which guarantees the ``id(container)`` component of the key cannot be
recycled by the allocator while the entry lives, and that the cached
:class:`NodeRef` items always point into live storage.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass
class SubplanCacheStats:
    """Hit/miss/eviction/invalidation counters (mutated under the cache lock).

    ``rejected`` counts materialisations the admission policy declined to
    store; ``admission_threshold`` mirrors the cache's configured policy
    threshold (it is configuration, not a counter — ``clear()`` keeps it).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0
    admission_threshold: int = 0

    def clear(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0
        self.rejected = 0

    def snapshot(self) -> "SubplanCacheStats":
        """An independent copy (for reporting from another thread)."""
        return SubplanCacheStats(self.hits, self.misses,
                                 self.evictions, self.invalidations,
                                 self.rejected, self.admission_threshold)


class SubplanCache:
    """A thread-safe LRU of materialised subplan results.

    Keys are built through :meth:`make_key` —
    ``(fingerprint, store version, container identity, context root)`` —
    and values are immutable item tuples, so concurrent readers can share
    them without copying.  All operations are guarded by one lock; the
    executor computes misses *outside* the lock, so two threads may race
    to materialize the same subplan — the first insert wins and later ones
    adopt the already-cached tuple (stable identity, identical content).

    **Admission policy**: not every absolute path is worth materializing —
    tiny results (``/site``: one row) cost a cache slot, an LRU update and
    a key probe per execution while re-computing them is almost free.  A
    candidate is admitted only when ``rows × observed repeat count`` reaches
    ``admission_threshold`` (rows are *actual* materialised rows, repeats
    are the misses observed for that key so far).  A large result is
    admitted on first sight; a one-row path earns its slot only once it
    proves hot.  ``admission_threshold=0`` admits everything (the legacy
    behaviour); rejected materialisations are counted in
    ``stats.rejected``.
    """

    #: index of the schema-version component inside keys from make_key()
    _VERSION_SLOT = 1

    def __init__(self, capacity: int = 256, *, admission_threshold: int = 2):
        self.capacity = capacity
        self.admission_threshold = admission_threshold
        self.stats = SubplanCacheStats(admission_threshold=admission_threshold)
        self._lock = threading.Lock()
        # key -> (items, pinned container)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        # key -> number of lookup misses observed (bounded LRU)
        self._observations: "OrderedDict[tuple, int]" = OrderedDict()

    @staticmethod
    def make_key(fingerprint: str, version: int, container: Any,
                 root_pre: int) -> tuple:
        """The cache key of one (subplan, document state, context root)."""
        return (fingerprint, version, id(container), root_pre)

    def lookup(self, key: tuple) -> tuple | None:
        """The cached item tuple, or ``None`` (counted as a miss).

        Every miss counts as one *observation* of the key — the repeat
        count the admission policy multiplies the result size with.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                count = self._observations.pop(key, 0) + 1
                self._observations[key] = count        # move-to-end refresh
                while len(self._observations) > 4 * max(self.capacity, 1):
                    self._observations.popitem(last=False)
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def insert(self, key: tuple, items: Sequence[Any], *,
               pin: Any = None) -> tuple:
        """Store a materialised result; returns the canonical item tuple.

        The admission policy applies here: with ``rows × repeats`` below
        the threshold the materialisation is returned to the caller but
        not stored (``stats.rejected``).  ``pin`` keeps the source
        document container alive for the lifetime of the entry.  If
        another thread inserted the same key first, its tuple is returned
        instead so all consumers share one object.
        """
        materialized = tuple(items)
        if self.capacity <= 0:
            return materialized
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing[0]
            repeats = self._observations.get(key, 1)
            # empty results still cost a document scan to recompute: they
            # follow the same hotness rule as one-row results
            if max(len(materialized), 1) * repeats < self.admission_threshold:
                self.stats.rejected += 1
                return materialized
            self._entries[key] = (materialized, pin)
            self._observations.pop(key, None)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return materialized

    def invalidate(self, current_version: int | None = None) -> int:
        """Reclaim entries stranded behind a schema-version boundary.

        Keys embed their version, so stale entries can never be *served*;
        this only frees their memory.  With ``current_version`` the entries
        of other versions are dropped; with ``None`` everything is.
        Returns the number of entries removed.
        """
        with self._lock:
            if current_version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [key for key in self._entries
                         if key[self._VERSION_SLOT] != current_version]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.stats.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[tuple]:
        """A snapshot of the current keys (diagnostics/tests)."""
        with self._lock:
            return list(self._entries)
