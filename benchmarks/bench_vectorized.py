"""Typed columnar kernels vs. the list representation — micro-benchmarks.

Four workloads isolate the vectorization win of the typed kernel layer:

* **scan** — materialising a contiguous row window (``take``): one C-level
  ``array`` slice vs. a per-row Python list comprehension,
* **select** — ``select_eq`` on an integer column: one memchr-backed
  ``bytes.find`` scan over the raw 64-bit buffer vs. a per-row
  comparison loop,
* **join** — a dense-probe positional join (the offset-arithmetic join of
  the paper): O(1) probe translation plus slice fetches vs. the per-value
  validation loop and list fetches of the list representation,
* **count** — the end-to-end dead-``item`` rewrite: ``count(path)`` under
  ``typed_columns`` on/off, where the typed executor never boxes a node
  surrogate (visible as ``step.item-pruned`` in the trace).

The list baselines run the *same physical algorithms* on list-backed
columns (dense properties kept identical), so the measured difference is
the representation alone.  Results are asserted (scan/select/join must be
≥ 2× — in practice they are far higher) and written to
``benchmarks/results/BENCH_vectorized.json``.
"""

from __future__ import annotations

import time
from array import array

from repro import EngineOptions, MonetXQuery
from repro.relational import Column, IntColumn, Table
from repro.relational import operators as ops
from repro.relational.explain import capture
from repro.relational.properties import ColumnProps, TableProps
from repro.xmark import generate_document

from .conftest import BASE_SCALE, SEED, write_bench_json


#: row count of the micro tables, scaled with the benchmark scale factor
ROWS = max(4000, int(25_000_000 * BASE_SCALE))
REPEATS = 5

_RESULTS: dict[str, dict] = {}


def best_of(operation, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


def record(workload: str, typed_seconds: float, list_seconds: float,
           detail: str) -> float:
    speedup = list_seconds / typed_seconds if typed_seconds else float("inf")
    _RESULTS[workload] = {
        "rows": ROWS,
        "typed_s": typed_seconds,
        "list_s": list_seconds,
        "speedup": speedup,
        "detail": detail,
    }
    write_bench_json("vectorized", {"workloads": _RESULTS})
    return speedup


# --------------------------------------------------------------------------- #
# scan: contiguous-window materialisation
# --------------------------------------------------------------------------- #
def test_scan_window_take():
    values = list(range(ROWS))
    typed = IntColumn("pre", array("q", values))
    plain = Column("pre", values)
    window = range(ROWS // 10, (ROWS * 9) // 10)

    typed_seconds = best_of(lambda: typed.take(window))
    list_seconds = best_of(lambda: plain.take(window))
    speedup = record("scan", typed_seconds, list_seconds,
                     "take() of an 80% contiguous window")
    assert typed.take(window).tolist() == plain.take(window).tolist()
    assert speedup >= 2.0, f"scan speedup only {speedup:.1f}x"


# --------------------------------------------------------------------------- #
# select: integer equality selection
# --------------------------------------------------------------------------- #
def test_select_eq_int_column():
    values = [index % 5000 for index in range(ROWS)]
    typed = Table([IntColumn("k", array("q", values))])
    plain = Table([Column("k", values)])

    typed_seconds = best_of(
        lambda: ops.select_eq(typed, "k", 37, use_positional=False))
    list_seconds = best_of(
        lambda: ops.select_eq(plain, "k", 37, use_positional=False))
    speedup = record("select", typed_seconds, list_seconds,
                     "select_eq, 0.02% selectivity, memchr byte-scan kernel")
    with capture() as trace:
        typed_result = ops.select_eq(typed, "k", 37, use_positional=False)
    assert trace.count("select.int-scan") == 1
    assert typed_result == ops.select_eq(plain, "k", 37, use_positional=False)
    assert speedup >= 2.0, f"select speedup only {speedup:.1f}x"


# --------------------------------------------------------------------------- #
# join: dense-probe positional join (offset arithmetic)
# --------------------------------------------------------------------------- #
def _dense_list_column(name: str, count: int) -> Column:
    return Column(name, list(range(count)),
                  props=ColumnProps(dense=True, dense_base=0, key=True))


def test_positional_join_dense_probe():
    payload = [index * 3 for index in range(ROWS)]
    typed_left = Table([Column.dense("fk", ROWS)])
    typed_right = Table([Column.dense("rid", ROWS),
                         IntColumn("payload", array("q", payload))])
    plain_left = Table([_dense_list_column("fk", ROWS)])
    plain_right = Table([_dense_list_column("rid", ROWS),
                         Column("payload", list(payload))])

    typed_seconds = best_of(
        lambda: ops.join(typed_left, typed_right, "fk", "rid"))
    list_seconds = best_of(
        lambda: ops.join(plain_left, plain_right, "fk", "rid"))
    speedup = record("join", typed_seconds, list_seconds,
                     "dense-probe positional join, full hit rate")
    with capture() as trace:
        typed_result = ops.join(typed_left, typed_right, "fk", "rid")
    assert trace.count("join.positional") == 1
    assert typed_result == ops.join(plain_left, plain_right, "fk", "rid")
    assert speedup >= 2.0, f"join speedup only {speedup:.1f}x"


# --------------------------------------------------------------------------- #
# count: end-to-end dead-item pipeline
# --------------------------------------------------------------------------- #
def test_count_only_path_skips_item_materialization():
    engine = MonetXQuery()
    engine.load_document_text(generate_document(BASE_SCALE, SEED),
                              name="auction.xml")
    query = "count(/site/regions/europe/item)"
    typed_options = engine.options.replace(typed_columns=True)
    list_options = engine.options.replace(typed_columns=False)

    # warm the plan cache so only execution is measured
    expected = engine.query(query, options=list_options).items
    engine.query(query, options=typed_options)

    with capture() as trace:
        typed_items = engine.query(query, options=typed_options).items
    assert typed_items == expected
    assert trace.count("step.item-pruned") >= 1, \
        "the typed executor must skip item materialization for count()"
    with capture() as trace:
        engine.query(query, options=list_options)
    assert trace.count("step.item-pruned") == 0

    typed_seconds = best_of(lambda: engine.query(query, options=typed_options))
    list_seconds = best_of(lambda: engine.query(query, options=list_options))
    record("count", typed_seconds, list_seconds,
           "count(path): item-pruned typed pipeline vs. list baseline")
