"""The iter|pos|item plumbing: loop lifting, scope maps, back-mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import capture
from repro.xquery.sequences import (back_map, for_binding, lift_constant,
                                    lift_environment, lift_items, make_loop,
                                    restrict_sequence, sequence_table,
                                    singleton_per_iter, unit_loop)


class TestLifting:
    def test_lift_constant(self):
        table = lift_constant(make_loop([1, 2, 3]), 42)
        assert table.to_rows(["iter", "pos", "item"]) == [
            (1, 1, 42), (2, 1, 42), (3, 1, 42)]

    def test_lift_items_repeats_sequence_per_iteration(self):
        table = lift_items(make_loop([1, 2]), ["a", "b"])
        assert table.to_rows(["iter", "pos", "item"]) == [
            (1, 1, "a"), (1, 2, "b"), (2, 1, "a"), (2, 2, "b")]

    def test_unit_loop(self):
        assert list(unit_loop().col("iter")) == [1]

    def test_singleton_per_iter_skips_missing(self):
        table = singleton_per_iter(make_loop([1, 2, 3]), {1: "x", 3: "z"})
        assert table.to_rows(["iter", "item"]) == [(1, "x"), (3, "z")]


class TestForBinding:
    def test_paper_example(self):
        """for $v in (x1..xn): the scope map and variable representation."""
        sequence = sequence_table([(1, 1, "x1"), (1, 2, "x2"), (1, 3, "x3")])
        scope_map, inner_loop, variable, positions = for_binding(sequence)
        assert scope_map.to_rows(["outer", "inner"]) == [(1, 1), (1, 2), (1, 3)]
        assert list(inner_loop.col("iter")) == [1, 2, 3]
        assert variable.to_rows(["iter", "pos", "item"]) == [
            (1, 1, "x1"), (2, 1, "x2"), (3, 1, "x3")]
        assert list(positions.col("item")) == [1, 2, 3]

    def test_nested_iteration_cartesian_size(self):
        """Lifting (y1,y2) over an outer loop of 3 iterations gives 6 tuples."""
        outer = make_loop([1, 2, 3])
        inner_sequence = lift_items(outer, ["y1", "y2"])
        scope_map, inner_loop, variable, _ = for_binding(inner_sequence)
        assert inner_loop.row_count == 6
        assert list(variable.col("item")) == ["y1", "y2"] * 3

    def test_environment_lifting(self):
        outer = make_loop([1, 2])
        env = {"w": sequence_table([(1, 1, "a"), (2, 1, "b"), (2, 2, "c")])}
        sequence = lift_items(outer, [10, 20])
        scope_map, inner_loop, _, _ = for_binding(sequence)
        lifted = lift_environment(env, scope_map)["w"]
        # outer iteration 2 (holding "b","c") maps to inner iterations 3 and 4
        assert lifted.to_rows(["iter", "item"]) == [
            (1, "a"), (2, "a"), (3, "b"), (3, "c"), (4, "b"), (4, "c")]

    def test_for_binding_empty_sequence(self):
        scope_map, inner_loop, variable, _ = for_binding(sequence_table([]))
        assert inner_loop.row_count == 0
        assert variable.row_count == 0


class TestBackMap:
    def test_back_map_concatenates_in_iteration_order(self):
        sequence = sequence_table([(1, 1, "a"), (1, 2, "b"), (2, 1, "c")])
        scope_map, inner_loop, variable, _ = for_binding(sequence)
        # body: inner iteration i returns its item twice
        body = sequence_table([
            (1, 1, "a"), (1, 2, "a"),
            (2, 1, "b"), (2, 2, "b"),
            (3, 1, "c"), (3, 2, "c"),
        ])
        result = back_map(scope_map, body)
        assert result.to_rows(["iter", "pos", "item"]) == [
            (1, 1, "a"), (1, 2, "a"), (1, 3, "b"), (1, 4, "b"),
            (2, 1, "c"), (2, 2, "c")]

    def test_back_map_drops_filtered_inner_iterations(self):
        sequence = sequence_table([(1, 1, "a"), (1, 2, "b")])
        scope_map, _, _, _ = for_binding(sequence)
        body = sequence_table([(2, 1, "only-second")])
        result = back_map(scope_map, body)
        assert result.to_rows(["iter", "pos", "item"]) == [(1, 1, "only-second")]

    def test_back_map_with_order_keys(self):
        from repro.relational import Table
        sequence = sequence_table([(1, 1, "a"), (1, 2, "b"), (1, 3, "c")])
        scope_map, inner_loop, variable, _ = for_binding(sequence)
        body = variable
        order_keys = Table.from_dict({"iter": [1, 2, 3], "okey": [3, 1, 2]},
                                     order=("iter",))
        result = back_map(scope_map, body, order_keys=order_keys)
        assert list(result.col("item")) == ["b", "c", "a"]

    def test_back_map_skips_sort_with_properties(self):
        sequence = sequence_table([(1, 1, "a"), (2, 1, "b")])
        scope_map, _, variable, _ = for_binding(sequence)
        with capture() as trace:
            back_map(scope_map, variable, use_properties=True)
        assert trace.count("sort.full") == 0
        with capture() as trace:
            back_map(scope_map, variable, use_properties=False)
        assert trace.count("sort.full") >= 1


class TestRestrict:
    def test_restrict_sequence(self):
        table = sequence_table([(1, 1, "a"), (2, 1, "b"), (3, 1, "c")])
        assert list(restrict_sequence(table, [1, 3]).col("item")) == ["a", "c"]


@given(st.lists(st.integers(1, 4), min_size=0, max_size=20))
@settings(max_examples=50, deadline=None)
def test_for_binding_roundtrip_property(iterations):
    """back_map(scope_map, variable) reproduces the original bound sequence."""
    iterations = sorted(iterations)
    rows = []
    positions = {}
    for iteration in iterations:
        positions[iteration] = positions.get(iteration, 0) + 1
        rows.append((iteration, positions[iteration], f"v{iteration}.{positions[iteration]}"))
    sequence = sequence_table(rows)
    scope_map, inner_loop, variable, _ = for_binding(sequence)
    result = back_map(scope_map, variable)
    assert result.to_rows(["iter", "pos", "item"]) == rows
