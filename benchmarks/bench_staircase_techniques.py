"""Figures 1–3 — pruning, partitioning, skipping in the staircase join.

The figures illustrate that the staircase join touches at most
``|result| + |context|`` document tuples.  The benchmark measures the axis
step over the XMark document, records the touch counters, and contrasts the
staircase join with the Structural-Join baseline that inspects every
candidate node.
"""

import random

import pytest

from repro.staircase import (Axis, StaircaseStats, staircase_join,
                             structural_join_descendant_step)


def context_sample(document, count, seed):
    rng = random.Random(seed)
    return sorted(rng.sample(range(document.node_count), count))


@pytest.mark.parametrize("axis", [Axis.DESCENDANT, Axis.ANCESTOR,
                                  Axis.FOLLOWING, Axis.CHILD])
def test_fig1_3_staircase_touch_bound(benchmark, xmark_engine, axis):
    document = xmark_engine.store.get("auction.xml")
    context = context_sample(document, min(64, document.node_count // 4), seed=13)

    def run():
        stats = StaircaseStats()
        result = staircase_join(document, context, axis, stats=stats)
        return stats, result

    stats, result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig1-3"
    benchmark.extra_info["axis"] = axis.value
    benchmark.extra_info["context"] = len(context)
    benchmark.extra_info["result"] = len(result)
    benchmark.extra_info["nodes_scanned"] = stats.nodes_scanned
    benchmark.extra_info["contexts_pruned"] = stats.contexts_pruned
    if axis in (Axis.DESCENDANT, Axis.FOLLOWING):
        assert stats.nodes_scanned <= len(result) + len(context)


def test_fig1_3_structural_join_baseline(benchmark, xmark_engine):
    """The stack-based structural join must inspect every candidate node."""
    document = xmark_engine.store.get("auction.xml")
    context = context_sample(document, min(64, document.node_count // 4), seed=13)

    def run():
        return len(structural_join_descendant_step(document, context))

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig1-3"
    benchmark.extra_info["algorithm"] = "structural-join"
    benchmark.extra_info["result"] = result
