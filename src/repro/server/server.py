"""The concurrent query-serving layer.

MonetDB/XQuery's selling point is serving heavy repeated XQuery traffic on
a relational engine; :class:`QueryServer` is that serving layer for this
reproduction.  It turns the (thread-safe, but single-client-oriented)
:class:`~repro.xquery.engine.MonetXQuery` library into a multi-client
system:

* **concurrent clients** — queries are accepted from any thread
  (:meth:`QueryServer.execute`) or dispatched onto the server's worker
  pool (:meth:`QueryServer.submit` / :meth:`QueryServer.run_batch`),
* **shared prepared-plan cache** — all threads prepare through the
  engine's lock-guarded LRU, so a hot query text is parsed/planned/
  optimized once no matter which client sends it,
* **per-execution isolation** — every execution gets a private transient
  container for constructed nodes (immutable :class:`PreparedQuery` plans
  carry no execution state, so they are freely shared),
* **cross-query materialized subplan cache** — loop-invariant
  absolute-path subplans marked by the rewrite optimizer are materialised
  once and reused across queries and threads
  (:class:`~repro.server.subplan_cache.SubplanCache`),
* **serialized writers** — document loads/drops and update commits are
  funnelled through one mutation lock; each bumps the document store's
  schema version, which atomically invalidates both caches (their keys
  embed the version).

The thread-safety contract: readers never block readers; writers are
serialized among themselves and atomic with respect to readers (a query
sees either the complete old or the complete new document state, never a
mix); every cached artifact is keyed on the schema version it was built
against.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from ..xquery.engine import (EngineOptions, MonetXQuery, PlanCacheStats,
                             PreparedQuery, QueryResult)
from ..xquery.updates import XMLUpdater
from .subplan_cache import SubplanCache, SubplanCacheStats


@dataclass
class ServerStats:
    """A point-in-time snapshot of the server's serving state."""

    threads: int
    queries_served: int
    store_version: int
    documents: list[str] = field(default_factory=list)
    plan_cache: PlanCacheStats = field(default_factory=PlanCacheStats)
    subplan_cache: SubplanCacheStats = field(default_factory=SubplanCacheStats)
    subplan_entries: int = 0

    def render(self) -> str:
        return (f"threads={self.threads} served={self.queries_served} "
                f"version={self.store_version} "
                f"plans[hit={self.plan_cache.hits} "
                f"miss={self.plan_cache.misses} "
                f"evict={self.plan_cache.evictions}] "
                f"subplans[hit={self.subplan_cache.hits} "
                f"miss={self.subplan_cache.misses} "
                f"entries={self.subplan_entries}]")


class QueryServer:
    """Serve XQuery traffic from concurrent clients over one engine.

        >>> server = QueryServer(threads=4)
        >>> server.load_document_text("<a><b/><b/></a>", name="doc.xml")
        >>> futures = [server.submit("count(//b)") for _ in range(8)]
        >>> [f.result().items for f in futures][0]
        [2]
        >>> server.close()

    The server can also wrap an existing engine (``QueryServer(engine)``),
    attaching a shared :class:`SubplanCache` to it unless it already has
    one.  Use it as a context manager to get deterministic shutdown.
    """

    def __init__(self, engine: MonetXQuery | None = None, *,
                 threads: int = 4, options: EngineOptions | None = None,
                 store_path: Any = None, store_backend: str = "mmap",
                 plan_cache_size: int = 256, subplan_cache_size: int = 256):
        if engine is None:
            engine = MonetXQuery(options=options, store_path=store_path,
                                 store_backend=store_backend,
                                 plan_cache_size=plan_cache_size)
        elif store_path is not None:
            raise ValueError("pass either an engine or a store_path, not both")
        self.engine = engine
        if engine.subplan_cache is None and subplan_cache_size > 0:
            engine.subplan_cache = SubplanCache(subplan_cache_size)
        self.subplan_cache: SubplanCache | None = engine.subplan_cache
        self.threads = threads
        self._pool = ThreadPoolExecutor(max_workers=threads,
                                        thread_name_prefix="repro-serve")
        # reentrant: a writer inside an update() block may load/drop too
        self._mutation_lock = threading.RLock()
        self._served = 0
        self._served_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # document management (writers, serialized)
    # ------------------------------------------------------------------ #
    def load_document_text(self, text: str, name: str, *,
                           default_context: bool = True) -> None:
        """Shred and publish a document (atomic: readers see it complete)."""
        with self._mutation_lock:
            self.engine.load_document_text(text, name,
                                           default_context=default_context)
            self._reclaim_stale()

    def load_document(self, path: str, name: str | None = None, *,
                      default_context: bool = True) -> None:
        with self._mutation_lock:
            self.engine.load_document(path, name,
                                      default_context=default_context)
            self._reclaim_stale()

    def drop_document(self, name: str) -> None:
        with self._mutation_lock:
            self.engine.drop_document(name)
            self._reclaim_stale()

    @contextmanager
    def update(self, document_name: str, **updater_kwargs: Any
               ) -> Iterator[XMLUpdater]:
        """An update transaction: mutate inside the block, commit on exit.

            >>> with server.update("doc.xml") as updater:          # doctest: +SKIP
            ...     [target] = updater.select("/a/b[1]")
            ...     updater.delete(target)

        The commit swaps the document atomically and bumps the schema
        version, so no query — and no cached plan or materialized subplan —
        can ever observe a half-committed state.
        """
        with self._mutation_lock:
            updater = XMLUpdater(self.engine, document_name, **updater_kwargs)
            yield updater
            updater.commit()
            self._reclaim_stale()

    def save_store(self, path: Any) -> None:
        """Persist the loaded documents (serialized with other writers).

        Afterwards the store writes through: every committed change keeps
        the directory current, and a later ``QueryServer(store_path=path)``
        starts warm — no re-parse, no re-shred, caches correctly keyed.
        """
        with self._mutation_lock:
            self.engine.save_store(path)

    def _reclaim_stale(self) -> None:
        """Free cache entries stranded behind the new schema version.

        Purely a memory measure: version-embedding keys already guarantee
        stale entries can never be served.
        """
        if self.subplan_cache is not None:
            self.subplan_cache.invalidate(self.engine.store.version)

    # ------------------------------------------------------------------ #
    # serving (readers, concurrent)
    # ------------------------------------------------------------------ #
    def prepare(self, query: str, *,
                options: EngineOptions | None = None) -> PreparedQuery:
        """Prepare through the shared, lock-guarded plan cache."""
        return self.engine.prepare(query, options=options)

    def execute(self, query: str, *, context: str | None = None,
                options: EngineOptions | None = None) -> QueryResult:
        """Prepare (cached) and execute a query in the calling thread."""
        prepared = self.engine.prepare(query, options=options)
        return self.execute_prepared(prepared, context=context)

    def execute_prepared(self, prepared: PreparedQuery, *,
                         context: str | None = None) -> QueryResult:
        """Execute an immutable prepared plan with a private transient
        container (concurrent executions never share constructed-node
        storage)."""
        transient = self.engine.store.new_container("(transient)",
                                                    transient=True)
        result = self.engine._run_prepared(prepared, context=context,
                                           transient=transient)
        with self._served_lock:
            self._served += 1
        return result

    def submit(self, query: str, *, context: str | None = None,
               options: EngineOptions | None = None) -> "Future[QueryResult]":
        """Dispatch a query onto the worker pool; returns a future."""
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        return self._pool.submit(self.execute, query, context=context,
                                 options=options)

    def run_batch(self, queries: Iterable[str], *,
                  context: str | None = None) -> list[QueryResult]:
        """Run a batch of query texts concurrently; results in input order."""
        futures = [self.submit(query, context=context) for query in queries]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        with self._served_lock:
            served = self._served
        subplan_stats = SubplanCacheStats()
        subplan_entries = 0
        if self.subplan_cache is not None:
            subplan_stats = self.subplan_cache.stats.snapshot()
            subplan_entries = len(self.subplan_cache)
        return ServerStats(
            threads=self.threads,
            queries_served=served,
            store_version=self.engine.store.version,
            documents=self.engine.store.names(),
            plan_cache=self.engine.plan_cache_stats.snapshot(),
            subplan_cache=subplan_stats,
            subplan_entries=subplan_entries,
        )

    def close(self, *, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
