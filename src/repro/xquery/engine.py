"""The MonetDB/XQuery engine facade.

:class:`MonetXQuery` ties the subsystems together: the document store
(shredded ``pre|size|level`` containers), a transient container for
constructed nodes, the loop-lifting compiler, and the engine options that
expose the ablation switches the paper's experiments toggle (loop-lifted vs.
iterative staircase join, nametest pushdown, join recognition, order
optimization, positional lookup).

    >>> mxq = MonetXQuery()
    >>> mxq.load_document_text("<a><b/></a>", name="doc.xml")
    >>> mxq.query('count(doc("doc.xml")//b)').items
    [1]
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import astuple, dataclass, field, replace
from typing import Any

from ..errors import DocumentError
from ..relational import explain
from ..relational.cardinality import StoreStatistics
from ..relational.rewrites import OptimizedModulePlan, optimize
from ..staircase.iterative import StaircaseStats
from ..xml.document import DocumentContainer, DocumentStore, NodeRef
from ..xml.serializer import serialize_sequence
from ..xml.shredder import shred_document, shred_file
from . import parser
from .codegen import compile_plan
from .compiler import LoopLiftingCompiler
from .planner import plan_module
from .types import atomize, to_string


@dataclass
class EngineOptions:
    """Ablation switches of the relational XQuery engine.

    The defaults correspond to the full MonetDB/XQuery configuration; the
    benchmarks flip individual switches to reproduce Figures 12–14.
    """

    #: use the loop-lifted staircase join for child steps (else one pass per iteration)
    loop_lifted_child: bool = True
    #: use the loop-lifted staircase join for descendant(-or-self) steps
    loop_lifted_descendant: bool = True
    #: use the loop-lifted algorithms for the remaining axes
    loop_lifted_other: bool = True
    #: push name tests below location steps (candidate lists from the name index)
    nametest_pushdown: bool = True
    #: recognise value joins hidden in loop-lifted FLWOR plans (Section 4.1)
    join_recognition: bool = True
    #: maintain/exploit order properties: skip sorts, streaming DENSE_RANK
    order_optimization: bool = True
    #: positional (address computation) lookups into dense key columns
    positional_lookup: bool = True
    #: min/max-aggregate plan for existential order comparisons (Figure 8b)
    existential_aggregates: bool = True
    #: logical-plan rewrite: prune pos/item columns (and the sorts/rownums
    #: that maintain them) below order-indifferent consumers
    projection_pushdown: bool = True
    #: logical-plan rewrite: execute hash-consed common subplans once per
    #: (loop, environment) and reuse the materialised result
    subplan_sharing: bool = True
    #: logical-plan rewrite: move where-conjuncts that mention only one for
    #: variable into that clause as plan-level predicates (joins see
    #: pre-filtered inputs)
    predicate_pushdown: bool = True
    #: cost-based join planning: recognise *all* value-join candidates of a
    #: FLWOR (not just the first syntactic match), size both join inputs
    #: from document statistics, pick build sides and order join clauses
    #: smallest-build-first
    cost_based_joins: bool = True
    #: cross-query materialized subplan cache: loop-invariant absolute-path
    #: subplans are fingerprinted at rewrite time and their materialised
    #: results shared across queries (and threads) keyed on fingerprint +
    #: document-store schema version + context root — only active when a
    #: :class:`repro.server.SubplanCache` is attached to the engine
    cross_query_caching: bool = True
    #: typed columnar kernels: location steps emit paired int-array columns
    #: and — when the required-columns analysis proves every consumer reads
    #: ``iter`` alone (pure-cardinality queries like ``count(path)``) — skip
    #: ``item`` materialisation entirely, never boxing a node surrogate.
    #: ``False`` is the list-representation baseline of the vectorization
    #: ablation (storage stays typed; the executor fast paths are disabled)
    typed_columns: bool = True
    #: step-chain fusion: consecutive predicate-free location steps over one
    #: container execute as a single surrogate-free pipeline — the paired
    #: ``(iter, pre)`` int arrays of each staircase join feed the next join
    #: directly (sort/dedup on the raw buffers) and ``NodeRef`` surrogates
    #: are boxed once at the chain's end, or never when dead-``item``
    #: pruning applies.  ``False`` is the per-step baseline: every
    #: intermediate step materialises its full ``iter|pos|item`` table
    step_fusion: bool = True
    #: worst-case-optimal multi-way joins: FLWOR blocks whose >= 3 for
    #: clauses are connected by loop-invariant value-join conjuncts execute
    #: as one generic join — per attribute, sorted ``(key, item)`` int
    #: buffers are intersected with galloping, so the intermediate state is
    #: proportional to the true result instead of the pairwise blow-up.
    #: ``False`` restores the pairwise join schedule of the cost-based
    #: planner bit-identically
    wcoj: bool = True
    #: plan-to-Python codegen: at prepare time every covered operator of the
    #: optimized plan compiles into a specialized executor closure (static
    #: decisions — params, schedules, column requirements, fused chains —
    #: resolved once; constants inlined), cached on the prepared query next
    #: to the plan.  Uncovered subtrees (node constructors, user functions)
    #: fall back to the interpreter per node.  ``False`` is the pure
    #: operator-at-a-time interpreter baseline; plans and results are
    #: bit-identical either way
    codegen: bool = True

    def replace(self, **changes: Any) -> "EngineOptions":
        return replace(self, **changes)

    def fingerprint(self) -> tuple:
        """A hashable key component identifying this configuration."""
        return astuple(self)


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction counters of the engine's prepared-plan cache.

    Counters are mutated only under the engine's plan-cache lock, so under
    concurrent serving every ``prepare()`` call accounts for exactly one
    hit or one miss and ``hits + misses`` equals the number of calls.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: plans compiled to specialized executors at prepare time (codegen)
    compiled: int = 0
    #: plan operators left to the interpreter across those compilations
    codegen_fallbacks: int = 0

    def clear(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.compiled = self.codegen_fallbacks = 0

    def snapshot(self) -> "PlanCacheStats":
        """An independent copy (for reporting from another thread)."""
        return PlanCacheStats(self.hits, self.misses, self.evictions,
                              self.compiled, self.codegen_fallbacks)


@dataclass
class PreparedQuery:
    """A parsed, planned and optimized query, ready to run repeatedly.

    Produced by :meth:`MonetXQuery.prepare`; running it skips parsing,
    planning and the rewrite optimizer entirely.  The plan is logical —
    execution reads the document store at :meth:`run` time, so a prepared
    query observes later updates to the *contents* of loaded documents,
    while the engine's plan cache is invalidated whenever the set of loaded
    documents (the schema version) changes.
    """

    text: str
    plan: OptimizedModulePlan
    options: "EngineOptions"
    engine: "MonetXQuery" = field(repr=False)
    #: the plan's :class:`~repro.xquery.codegen.CompiledProgram` when the
    #: ``codegen`` option is on (``None`` = interpret); cached here so the
    #: plan-cache key (text + store version + options) governs both
    compiled: Any = field(default=None, repr=False)

    def run(self, *, context: str | None = None) -> "QueryResult":
        """Execute the optimized plan and return the result sequence."""
        return self.engine._run_prepared(self, context=context)

    def explain(self) -> str:
        """The optimized logical plan dump plus the fired rewrite rules."""
        return self.plan.render()


@dataclass
class QueryResult:
    """The outcome of one query evaluation."""

    items: list[Any]
    elapsed_seconds: float
    step_stats: StaircaseStats

    def serialize(self) -> str:
        """Serialize the result sequence to XML / text."""
        return serialize_sequence(self.items)

    def atomized(self) -> list[Any]:
        """The result items after atomization (nodes → string values)."""
        return [atomize(item) for item in self.items]

    def strings(self) -> list[str]:
        """The result items as strings (handy in tests)."""
        return [to_string(item) for item in self.items]

    def __len__(self) -> int:
        return len(self.items)


class MonetXQuery:
    """A relational XQuery processor over shredded XML documents.

    The engine is safe to *share* across threads for query evaluation: the
    document store is RW-locked, the prepared-plan cache (and its counters)
    is guarded by a lock, and prepared plans are immutable.  Concurrent
    callers that construct nodes should evaluate with a private transient
    container (as :class:`repro.server.QueryServer` does via its per-thread
    executors) — the default shared ``transient`` container is only safe
    for single-threaded use.

    ``subplan_cache`` optionally attaches a cross-query materialized
    subplan cache (:class:`repro.server.SubplanCache`): loop-invariant
    absolute-path subplans marked by the rewrite optimizer are then
    evaluated once and their materialised results reused across queries,
    keyed on plan fingerprint + document-store schema version.
    """

    def __init__(self, options: EngineOptions | None = None, *,
                 store_path: Any = None, store_backend: str = "mmap",
                 store_verify: bool | None = None,
                 plan_cache_size: int = 64, subplan_cache: Any = None):
        self.options = options if options is not None else EngineOptions()
        self._default_context: str | None = None
        if store_path is not None:
            # reopen a persisted store: warm (no re-shred), statistics and
            # schema version restored; "mmap" serves documents out-of-core,
            # "ram" loads them into plain array('q')/list buffers
            self.store = DocumentStore.open(store_path, backend=store_backend,
                                            verify=store_verify)
            documents = self.store.containers()
            if documents:
                first = min(documents, key=lambda c: c.order_key)
                self._default_context = first.name
        else:
            self.store = DocumentStore()
        self.transient = self.store.new_container("(transient)", transient=True)
        self.subplan_cache = subplan_cache
        self.plan_cache_size = plan_cache_size
        self.plan_cache_stats = PlanCacheStats()
        self._plan_cache: OrderedDict[tuple, PreparedQuery] = OrderedDict()
        self._plan_lock = threading.RLock()

    @classmethod
    def attach_shared(cls, catalog: dict, *,
                      options: EngineOptions | None = None,
                      plan_cache_size: int = 64,
                      subplan_cache: Any = None) -> "MonetXQuery":
        """Attach an engine to a published shared-memory store by name.

        The worker-process open path of the process-parallel serving
        layer: ``catalog`` is the shared-store catalog the publishing
        parent built (segment names + column layout + name pools + tag
        statistics).  Every document attaches zero-copy and read-only;
        the store version is restored, so this engine's plan-cache and
        subplan-cache keys agree with the parent's, and the parent's
        default context document carries over.
        """
        engine = cls(options=options, plan_cache_size=plan_cache_size,
                     subplan_cache=subplan_cache)
        engine.store = DocumentStore.attach_shared(catalog)
        engine.transient = engine.store.new_container("(transient)",
                                                      transient=True)
        engine._default_context = catalog.get("default_context")
        if engine._default_context is None:
            documents = engine.store.containers()
            if documents:
                first = min(documents, key=lambda c: c.order_key)
                engine._default_context = first.name
        return engine

    # ------------------------------------------------------------------ #
    # document management
    # ------------------------------------------------------------------ #
    def load_document_text(self, text: str, name: str, *,
                           default_context: bool = True) -> DocumentContainer:
        """Shred an XML string into the store under the given name."""
        container = shred_document(text, name, self.store)
        if default_context and self._default_context is None:
            self._default_context = name
        return container

    def load_document(self, path: str, name: str | None = None, *,
                      default_context: bool = True) -> DocumentContainer:
        """Shred an XML file from disk into the store."""
        name = name if name is not None else path
        container = shred_file(path, name, self.store)
        if default_context and self._default_context is None:
            self._default_context = name
        return container

    def register_container(self, container: DocumentContainer, *,
                           default_context: bool = True) -> None:
        """Register an already shredded container (e.g. an XMark document)."""
        self.store.register(container)
        if default_context and self._default_context is None:
            self._default_context = container.name

    def drop_document(self, name: str) -> None:
        self.store.drop(name)
        if self._default_context == name:
            self._default_context = None

    def save_store(self, path: Any) -> None:
        """Persist the loaded documents under ``path`` and stay bound.

        After a save the store writes through: later loads, drops and
        update commits keep the on-disk copy current, and a new engine
        constructed with ``store_path=path`` starts warm."""
        self.store.save(path)

    def set_default_context(self, name: str) -> None:
        if name not in self.store:
            raise DocumentError(f"document {name!r} is not loaded")
        self._default_context = name

    def reset_transient(self) -> None:
        """Drop all constructed nodes (start a fresh transient container)."""
        self.transient = DocumentContainer(
            "(transient)", self.transient.order_key, transient=True)

    # ------------------------------------------------------------------ #
    # query evaluation
    # ------------------------------------------------------------------ #
    def parse(self, query: str):
        """Parse a query without evaluating it (returns the AST module)."""
        return parser.parse(query)

    def query(self, query: str, *, context: str | None = None,
              options: EngineOptions | None = None) -> QueryResult:
        """Evaluate an XQuery string and return its result sequence.

        ``context`` names the document bound to the context item (absolute
        paths like ``/site/...`` start there); it defaults to the first
        loaded document.  ``options`` overrides the engine options for this
        query only.  Repeated query texts hit the prepared-plan cache and
        skip parse/plan/optimize entirely.
        """
        return self.prepare(query, options=options).run(context=context)

    def prepare(self, query: str, *,
                options: EngineOptions | None = None) -> PreparedQuery:
        """Parse, plan and optimize a query once; cache the result.

        The LRU cache is keyed by query text, the document-store schema
        version and the engine options, so loading/dropping a document (or
        committing updates) invalidates stale plans automatically.
        """
        active = options if options is not None else self.options
        key = (query, self.store.version, active.fingerprint())
        with self._plan_lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._plan_cache.move_to_end(key)
                self.plan_cache_stats.hits += 1
                explain.record("plan", "plan.cache.hit", 0, 0, detail="prepare")
                return cached
            self.plan_cache_stats.misses += 1
        # parse/plan/optimize outside the lock: compilation never blocks
        # concurrent cache hits (two threads may race to compile the same
        # text; the first insert wins and object identity stays stable)
        explain.record("plan", "plan.cache.miss", 0, 0, detail="prepare")
        module = parser.parse(query)
        optimized = optimize(plan_module(module), active,
                             statistics=StoreStatistics.from_store(self.store))
        compiled = compile_plan(optimized, active) \
            if getattr(active, "codegen", True) else None
        prepared = PreparedQuery(text=query, plan=optimized,
                                 options=active, engine=self,
                                 compiled=compiled)
        if self.plan_cache_size > 0:
            with self._plan_lock:
                existing = self._plan_cache.get(key)
                if existing is not None:
                    return existing
                self._plan_cache[key] = prepared
                if compiled is not None:
                    self.plan_cache_stats.compiled += 1
                    self.plan_cache_stats.codegen_fallbacks += \
                        len(compiled.fallbacks)
                while len(self._plan_cache) > self.plan_cache_size:
                    self._plan_cache.popitem(last=False)
                    self.plan_cache_stats.evictions += 1
        elif compiled is not None:
            with self._plan_lock:
                self.plan_cache_stats.compiled += 1
                self.plan_cache_stats.codegen_fallbacks += \
                    len(compiled.fallbacks)
        return prepared

    def explain(self, query: str, *,
                options: EngineOptions | None = None) -> str:
        """The optimized logical plan dump of a query (without running it)."""
        return self.prepare(query, options=options).explain()

    def plan_cache_stats_snapshot(self) -> PlanCacheStats:
        """A consistent copy of the plan-cache counters.

        Taken under the plan-cache lock, so the three counters always
        belong to one moment — a snapshot racing concurrent ``prepare()``
        calls can never mix a pre-insert miss count with a post-insert
        eviction count.
        """
        with self._plan_lock:
            return self.plan_cache_stats.snapshot()

    def clear_plan_cache(self) -> None:
        """Drop all cached prepared queries (counters are kept).

        Safe while other threads run or hold :class:`PreparedQuery`
        objects — a prepared query is self-contained, so in-flight
        executions finish on the plan they already have; only future
        ``prepare()`` calls miss.
        """
        with self._plan_lock:
            self._plan_cache.clear()

    def execute(self, module, *, context: str | None = None,
                options: EngineOptions | None = None) -> QueryResult:
        """Evaluate an already parsed module (uncached plan pipeline)."""
        active_options = options if options is not None else self.options
        compiler = LoopLiftingCompiler(_EngineView(self, active_options))
        context_item = self._context_item(context)
        started = time.perf_counter()
        items = compiler.run(module, context_item=context_item)
        elapsed = time.perf_counter() - started
        return QueryResult(items=items, elapsed_seconds=elapsed,
                           step_stats=compiler.step_stats)

    def _run_prepared(self, prepared: PreparedQuery, *,
                      context: str | None = None,
                      transient=None) -> QueryResult:
        """Execute a prepared plan.  ``transient`` optionally supplies a
        private container for constructed nodes — the serving layer passes
        a per-execution container so concurrent queries never share one."""
        compiler = LoopLiftingCompiler(
            _EngineView(self, prepared.options, transient=transient))
        context_item = self._context_item(context)
        started = time.perf_counter()
        items = compiler.run_optimized(prepared.plan,
                                       context_item=context_item,
                                       compiled=prepared.compiled)
        elapsed = time.perf_counter() - started
        return QueryResult(items=items, elapsed_seconds=elapsed,
                           step_stats=compiler.step_stats)

    def _context_item(self, context: str | None) -> NodeRef | None:
        name = context if context is not None else self._default_context
        if name is None:
            return None
        container = self.store.get(name)
        return NodeRef(container, 0)


class _EngineView:
    """What the compiler sees of the engine: store, transient container,
    options, and the (optional) shared cross-query subplan cache."""

    def __init__(self, engine: MonetXQuery, options: EngineOptions,
                 transient=None):
        self.store = engine.store
        self.transient = transient if transient is not None \
            else engine.transient
        self.options = options
        self.subplan_cache = engine.subplan_cache
