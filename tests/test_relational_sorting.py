"""Sort / refine-sort and order-property exploitation (Section 4.1)."""

from array import array

import pytest
from hypothesis import given, strategies as st

from repro.relational import Table, capture
from repro.relational.sorting import (argsort_ints, gallop, gallop_intersect,
                                      is_sorted_on, refine_sort, sort,
                                      total_order_key)


class TestSort:
    def test_full_sort(self):
        table = Table.from_dict({"a": [3, 1, 2], "b": ["x", "y", "z"]})
        result = sort(table, ("a",))
        assert list(result.col("a")) == [1, 2, 3]
        assert list(result.col("b")) == ["y", "z", "x"]

    def test_sort_skipped_when_property_holds(self):
        table = Table.from_dict({"a": [1, 2, 3]}, order=("a",))
        with capture() as trace:
            result = sort(table, ("a",))
        assert result is table
        assert trace.count("sort.skipped") == 1
        assert trace.count("sort.full") == 0

    def test_sort_not_skipped_without_properties(self):
        table = Table.from_dict({"a": [1, 2, 3]}, order=("a",))
        with capture() as trace:
            sort(table, ("a",), use_properties=False)
        assert trace.count("sort.full") == 1

    def test_sort_sets_order_property(self):
        table = Table.from_dict({"a": [2, 1]})
        result = sort(table, ("a",))
        assert result.props.order == ("a",)

    def test_lexicographic_two_columns(self):
        table = Table.from_dict({"a": [2, 1, 1], "b": [0, 5, 3]})
        result = sort(table, ("a", "b"))
        assert result.to_rows(["a", "b"]) == [(1, 3), (1, 5), (2, 0)]

    def test_mixed_type_column_sorts_deterministically(self):
        table = Table.from_dict({"a": ["b", 2, True, 1, "a"]})
        result = sort(table, ("a",))
        assert list(result.col("a")) == [True, 1, 2, "a", "b"]

    def test_is_sorted_on(self):
        table = Table.from_dict({"a": [1, 2, 2], "b": [1, 5, 0]})
        assert is_sorted_on(table, ("a",))
        assert not is_sorted_on(table, ("a", "b"))


class TestRefineSort:
    def test_refine_sort_only_reorders_within_groups(self):
        table = Table.from_dict({"g": [1, 1, 2, 2], "v": [5, 3, 9, 1]},
                                order=("g",))
        result = refine_sort(table, ("g",), ("v",))
        assert result.to_rows(["g", "v"]) == [(1, 3), (1, 5), (2, 1), (2, 9)]

    def test_refine_sort_skipped_when_fully_ordered(self):
        table = Table.from_dict({"g": [1, 1], "v": [1, 2]}, order=("g", "v"))
        with capture() as trace:
            refine_sort(table, ("g",), ("v",))
        assert trace.count("sort.skipped") == 1

    def test_refine_sort_matches_full_sort(self):
        table = Table.from_dict({"g": [1, 1, 1, 2, 2], "v": [3, 1, 2, 9, 0]},
                                order=("g",))
        refined = refine_sort(table, ("g",), ("v",))
        fully = sort(table, ("g", "v"), use_properties=False)
        assert refined.to_rows(["g", "v"]) == fully.to_rows(["g", "v"])


class TestTotalOrderKey:
    def test_none_sorts_first(self):
        assert total_order_key(None) < total_order_key(0)

    def test_numbers_before_strings(self):
        assert total_order_key(10) < total_order_key("1")

    def test_bools_are_smallest_non_null(self):
        assert total_order_key(True) < total_order_key(0)


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(-20, 20)), max_size=40))
def test_sort_matches_python_sorted(rows):
    table = Table.from_dict({"g": [row[0] for row in rows],
                             "v": [row[1] for row in rows]})
    result = sort(table, ("g", "v"), use_properties=False)
    assert result.to_rows(["g", "v"]) == sorted(rows)


class TestGallopKernels:
    """The WCOJ building blocks live next to the sort primitives: galloping
    boundary search and leapfrog intersection over sorted int buffers."""

    def test_gallop_on_empty_and_single(self):
        assert gallop(array("q"), 1) == 0
        assert gallop(array("q", [4]), 4) == 0
        assert gallop(array("q", [4]), 5) == 1

    def test_gallop_intersect_with_duplicates(self):
        left = array("q", [1, 1, 2, 2, 2, 7])
        right = array("q", [0, 2, 2, 7, 7, 9])
        assert gallop_intersect(left, right) == [2, 7]

    def test_argsort_ints_orders_paired_buffers(self):
        keys = array("q", [5, 1, 3])
        items = array("q", [10, 11, 12])
        order = argsort_ints(keys)
        assert [keys[i] for i in order] == [1, 3, 5]
        assert [items[i] for i in order] == [11, 12, 10]


@given(st.lists(st.integers(-30, 30), max_size=50).map(sorted),
       st.lists(st.integers(-30, 30), max_size=50).map(sorted))
def test_gallop_intersect_matches_naive_set_intersection(left, right):
    result = gallop_intersect(array("q", left), array("q", right))
    assert result == sorted(set(left) & set(right))


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(-10, 10)), max_size=40))
def test_refine_sort_equals_full_sort_on_grouped_input(rows):
    rows = sorted(rows, key=lambda row: row[0])      # grouped (ordered) on g
    table = Table.from_dict({"g": [row[0] for row in rows],
                             "v": [row[1] for row in rows]}, order=("g",))
    refined = refine_sort(table, ("g",), ("v",))
    assert refined.to_rows(["g", "v"]) == sorted(rows)
