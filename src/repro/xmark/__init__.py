"""XMark benchmark substrate: document generator, the 20 queries, a runner."""

from .generator import XMarkCounts, XMarkGenerator, generate_document, load_xmark
from .queries import JOIN_QUERIES, XMARK_QUERIES, all_queries, xmark_query
from .runner import QueryTiming, XMarkRun, make_engine, run_queries

__all__ = [
    "JOIN_QUERIES",
    "QueryTiming",
    "XMARK_QUERIES",
    "XMarkCounts",
    "XMarkGenerator",
    "XMarkRun",
    "all_queries",
    "generate_document",
    "load_xmark",
    "make_engine",
    "run_queries",
    "xmark_query",
]
