"""Node construction into the transient document container (Section 5.1).

XQuery element constructors create new nodes.  In the relational encoding a
constructed element is appended to the query's *transient* document
container: the structural part of copied content subtrees is pasted verbatim
(shifted pre ranks, preserved sizes), atomic content becomes text nodes, and
each constructed tree receives a fresh ``frag`` id so disjoint fragments stay
apart.  The returned node surrogate points into the transient container.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import XQueryRuntimeError
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from .types import to_string


def construct_text(container: DocumentContainer, content: str) -> NodeRef:
    """Create a standalone text node in the transient container."""
    pre = container.add_node(NodeKind.TEXT, 0, value=content)
    container.frag[pre] = pre
    return NodeRef(container, pre)


def construct_element(container: DocumentContainer, name: str,
                      attributes: Sequence[tuple[str, str]],
                      content: Sequence[Any]) -> NodeRef:
    """Create an element node with the given attributes and content sequence.

    ``content`` items are either node surrogates (their subtrees are copied
    into the new element — attribute nodes become attributes of the new
    element) or atomic values (adjacent atomics merge into one text node,
    separated by a single space, per the XQuery constructor rules).
    """
    root = container.add_node(NodeKind.ELEMENT, 0,
                              name_id=container.names.intern(name))
    container.frag[root] = root
    for attribute_name, attribute_value in attributes:
        container.add_attribute(root, container.names.intern(attribute_name),
                                attribute_value)

    pending_atomics: list[str] = []

    def flush_atomics() -> None:
        if not pending_atomics:
            return
        text = " ".join(pending_atomics)
        pending_atomics.clear()
        pre = container.add_node(NodeKind.TEXT, 1, value=text, frag=root)

    for item in content:
        if isinstance(item, NodeRef):
            if item.attr is not None:
                container.add_attribute(
                    root,
                    container.names.intern(item.name() or "attr"),
                    item.string_value())
                continue
            flush_atomics()
            source = item.container
            if source.kind[item.pre] == NodeKind.DOCUMENT:
                # copying a document node copies its children
                for child in source.children_pre(item.pre):
                    container.copy_subtree_from(source, child, 1, root)
            else:
                container.copy_subtree_from(source, item.pre, 1, root)
        else:
            pending_atomics.append(to_string(item))
    flush_atomics()

    container.set_size(root, container.node_count - root - 1)
    return NodeRef(container, root)
