"""The tree-walking baseline interpreter in isolation."""

import pytest

from repro.baselines import TreeWalkingInterpreter, run_baseline
from repro.errors import XQueryUnsupportedError
from repro.xml import DocumentStore, shred_document
from repro.xml.document import NodeRef
from repro.xml.serializer import serialize_sequence


@pytest.fixture
def baseline_store():
    store = DocumentStore()
    shred_document(
        "<site><people>"
        '<person id="p0"><name>Alice</name><age>30</age></person>'
        '<person id="p1"><name>Bob</name><age>40</age></person>'
        "</people></site>", "doc.xml", store)
    return store


def run(store, query):
    return run_baseline(store, query, "doc.xml")


class TestBaselineSemantics:
    def test_literals_and_arithmetic(self, baseline_store):
        assert run(baseline_store, "1 + 2 * 3") == [7]

    def test_flwor_with_where_and_order(self, baseline_store):
        assert run(baseline_store,
                   "for $x in (3, 1, 2) where $x > 1 order by $x descending return $x"
                   ) == [3, 2]

    def test_paths_and_predicates(self, baseline_store):
        assert run(baseline_store,
                   '/site/people/person[@id = "p1"]/name/text()')[0].string_value() == "Bob"

    def test_positional_predicate(self, baseline_store):
        result = run(baseline_store, "/site/people/person[2]/@id")
        assert [node.string_value() for node in result] == ["p1"]

    def test_aggregates(self, baseline_store):
        assert run(baseline_store, "sum(//age)") == [70]
        assert run(baseline_store, "count(//person)") == [2]

    def test_general_comparison_existential(self, baseline_store):
        assert run(baseline_store, "(1, 2) = (2, 9)") == [True]

    def test_quantified(self, baseline_store):
        assert run(baseline_store, "some $p in //person satisfies $p/age > 35") == [True]

    def test_constructors(self, baseline_store):
        result = run(baseline_store,
                     'for $p in //person return <n v="{$p/name/text()}"/>')
        assert serialize_sequence(result) == '<n v="Alice"/><n v="Bob"/>'

    def test_user_function(self, baseline_store):
        assert run(baseline_store,
                   "declare function local:sq($x) { $x * $x }; local:sq(4)") == [16]

    def test_distinct_values_and_strings(self, baseline_store):
        assert run(baseline_store, 'distinct-values((1, 1, 2))') == [1, 2]
        assert run(baseline_store, 'contains("abc", "b")') == [True]

    def test_unknown_function_raises(self, baseline_store):
        with pytest.raises(XQueryUnsupportedError):
            run(baseline_store, "mystery()")

    def test_reverse_axes(self, baseline_store):
        result = run(baseline_store, "//age/ancestor::site")
        assert len(result) == 2 or len(result) == 1  # per-context dedup happens per step
        result = run(baseline_store, "count(//name/parent::person)")
        assert result == [2]


class TestBaselineAgainstRelational(object):
    QUERIES = [
        "count(//person)",
        "for $p in /site/people/person order by $p/age descending return $p/name/text()",
        "sum(for $p in //person return $p/age)",
        "for $p in //person where $p/age >= 40 return $p/@id",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results_as_engine(self, baseline_store, query):
        from repro import MonetXQuery
        engine = MonetXQuery()
        engine.store = baseline_store
        engine._default_context = "doc.xml"
        relational = engine.query(query)
        baseline = run(baseline_store, query)
        assert serialize_sequence(relational.items) == serialize_sequence(baseline)
