"""Dependency-free concurrency primitives for the serving layer.

This module sits below everything else (it imports only the standard
library), so the document store, the storage layer and the server package
can all share one :class:`ReadWriteLock` implementation without import
cycles.  It is re-exported from :mod:`repro.storage.locking` next to the
paper's delta-ledger locking discussion.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A classic readers-writer lock with writer preference.

    Any number of readers may hold the lock simultaneously; writers get
    exclusive access.  Pending writers block *new* readers, so a steady
    query stream cannot starve a document load/drop/update-commit.  The
    lock is not reentrant — the document store acquires it only around
    short dictionary operations and never while calling back into itself.

        >>> lock = ReadWriteLock()
        >>> with lock.read_locked():
        ...     ...   # shared
        >>> with lock.write_locked():
        ...     ...   # exclusive
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
