"""Bridging XPath location steps to the staircase-join family.

``axis_step`` receives the relational encoding of the context node sequences
of all iterations (``iter|pos|item`` with node items), converts it into the
``(pre, iter)`` pairs the staircase joins expect, dispatches to

* the **loop-lifted** staircase join (default),
* the **iterative** staircase join (one pass per iteration — the Figure 12
  baseline, selected per axis through the engine options), or
* the **nametest pushdown** variant (candidate lists from the element-name
  index, Section 3.2),

and re-assembles an ``iter|pos|item`` table whose items are node surrogates
in document order per iteration.

The staircase joins deliver their results as paired ``(iter, pre)`` int
arrays; the assembly sorts/dedups on plain integers and boxes a
:class:`~repro.xml.document.NodeRef` only for rows that survive — and with
``need_item=False`` (the required-columns analysis proved every consumer
reads ``iter`` alone, e.g. ``count(path)``) no node surrogate is built at
all: the result table carries a typed ``iter`` column next to constant
``pos``/``item`` stand-ins.

``axis_step_chain`` is the **fused** evaluator for a whole chain of
predicate-free steps: the paired ``(iter, pre)`` arrays of each staircase
join feed the next join directly (sort/dedup on the raw int buffers via
:func:`repro.relational.sorting.sort_dedup_pairs`), so no intermediate step
ever boxes a surrogate or builds an ``iter|pos|item`` table — surrogates
appear once, at the chain's end, or never under dead-``item`` pruning.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Sequence

from ..errors import XQueryTypeError
from ..relational.column import Column, IntColumn
from ..relational.properties import TableProps
from ..relational.sorting import sort_dedup_pairs
from ..relational.table import Table
from ..relational import explain
from ..staircase.axes import Axis, NodeTest
from ..staircase.iterative import StaircaseStats
from ..staircase.loop_lifted import (iterative_step_arrays, ll_attribute,
                                     loop_lifted_step_arrays, pairs_to_arrays)
from ..staircase.pushdown import loop_lifted_step_pushdown
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from . import ast


@dataclass
class StepOptions:
    """The ablation switches that govern location-step execution."""

    loop_lifted_child: bool = True
    loop_lifted_descendant: bool = True
    loop_lifted_other: bool = True
    nametest_pushdown: bool = True


def node_test_from_ast(test: "ast.NodeTestExpr") -> NodeTest:
    """Translate an AST node test into a staircase-join node test."""
    name = test.name if test.name not in (None, "*") else None
    return NodeTest(kind=test.kind, name=name)


def _wants_loop_lifted(axis: Axis, options: StepOptions) -> bool:
    if axis is Axis.CHILD:
        return options.loop_lifted_child
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        return options.loop_lifted_descendant
    return options.loop_lifted_other


def _split_context(context: Table, axis: Axis, node_test: NodeTest
                   ) -> dict[int, tuple[DocumentContainer,
                                        list[tuple[int, int]]]]:
    """Split an ``iter|pos|item`` context per document container.

    Returns ``id(container) -> (container, [(pre, iter), ...])``; non-node
    items raise a type error (XPTY0019), attribute items only participate
    in self / parent steps.
    """
    per_container: dict[int, tuple[DocumentContainer, list[tuple[int, int]]]] = {}
    for iteration, item in zip(context.col("iter"), context.col("item")):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError(
                f"path step applied to a non-node item {item!r}")
        container = item.container
        if item.attr is not None:
            # attribute nodes only participate in self / parent steps
            if axis is Axis.PARENT:
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            elif axis is Axis.SELF and node_test.kind in ("attribute", "node"):
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            continue
        pairs = per_container.setdefault(id(container), (container, []))[1]
        pairs.append((item.pre, iteration))
    return per_container


def _produce_step(container: DocumentContainer, pairs: list[tuple[int, int]],
                  axis: Axis, node_test: NodeTest, options: StepOptions,
                  stats: StaircaseStats | None
                  ) -> tuple[array, array, bool]:
    """One staircase-join dispatch over a normalized per-container context.

    ``pairs`` must already be sorted on ``[pre, iter]`` and duplicate free.
    Returns ``(iters, ranks, is_attr)`` where ``ranks`` are pre ranks for
    tree-node axes and attribute-table row indexes for the attribute axis.
    """
    if axis is Axis.ATTRIBUTE:
        name = node_test.name if node_test.has_name else None
        iters, attrs = pairs_to_arrays(ll_attribute(container, pairs, name))
        explain.record("step", "step.attribute", len(pairs), len(iters))
        return iters, attrs, True

    if _wants_loop_lifted(axis, options):
        if options.nametest_pushdown:
            pushed = loop_lifted_step_pushdown(container, pairs, axis,
                                               node_test, stats=stats,
                                               normalized=True)
            if pushed is not None:
                iters, pres = pairs_to_arrays(pushed)
                explain.record("step", "step.pushdown", len(pairs),
                               len(iters), detail=axis.value)
                return iters, pres, False
        iters, pres = loop_lifted_step_arrays(container, pairs, axis,
                                              node_test, stats=stats,
                                              normalized=True)
        explain.record("step", "step.loop-lifted", len(pairs),
                       len(iters), detail=axis.value)
        return iters, pres, False

    iters, pres = iterative_step_arrays(container, pairs, axis, node_test,
                                        stats=stats)
    explain.record("step", "step.iterative", len(pairs),
                   len(iters), detail=axis.value)
    return iters, pres, False


def _assemble_result(produced: list[tuple[DocumentContainer, array, array, bool]],
                     contexts_in: int, need_item: bool, detail: str) -> Table:
    """Merge per-container ``(iter, rank)`` arrays into the result table.

    Containers are merged in document order per iteration, duplicate free.
    Rows are compared as plain int tuples — (iter, container order key,
    owner pre, attr flag, attr index) mirrors ``NodeRef.order_key()``
    exactly, so the sort/dedup never touches a boxed node surrogate.
    """
    containers = [entry[0] for entry in produced]
    rows: list[tuple[int, int, int, int, int, int]] = []
    for cidx, (container, iters, ranks, is_attr) in enumerate(produced):
        okey = container.order_key
        if is_attr:
            owners = container.attr_owner
            rows.extend((iteration, okey, owners[rank], 1, rank, cidx)
                        for iteration, rank in zip(iters, ranks))
        else:
            rows.extend((iteration, okey, rank, 0, 0, cidx)
                        for iteration, rank in zip(iters, ranks))
    rows.sort()
    deduped: list[tuple[int, int, int, int, int, int]] = []
    previous = None
    for row in rows:
        key = row[:5]
        if previous is not None and key == previous:
            continue
        deduped.append(row)
        previous = key

    iters_out = array("q", (row[0] for row in deduped))

    if not need_item:
        # dead-item rewrite: per-iteration cardinalities survive, node
        # surrogates are never built and — since consumers read iter
        # alone — a constant pos column stands in (no per-row numbering)
        explain.record("step", "step.item-pruned", contexts_in,
                       len(iters_out), detail=detail)
        table = Table([IntColumn("iter", iters_out),
                       Column.constant("pos", 1, len(iters_out)),
                       Column.constant("item", None, len(iters_out))],
                      props=TableProps(order=("iter",)))
        return table

    positions = array("q")
    counter = 0
    last_iter: int | None = None
    for iteration in iters_out:
        if iteration != last_iter:
            counter = 0
            last_iter = iteration
        counter += 1
        positions.append(counter)

    items: list[NodeRef] = []
    for _, _, pre, flag, rank, cidx in deduped:
        container = containers[cidx]
        items.append(container.attribute(rank) if flag
                     else NodeRef(container, pre))
    explain.record("step", "step.materialize", contexts_in,
                   len(items), detail=detail)

    table = Table([IntColumn("iter", iters_out),
                   IntColumn("pos", positions),
                   Column("item", items)],
                  props=TableProps(order=("iter", "pos")))
    return table


def axis_step(context: Table, axis: Axis, node_test: NodeTest, *,
              options: StepOptions | None = None,
              stats: StaircaseStats | None = None,
              need_item: bool = True) -> Table:
    """Evaluate one location step for every iteration of the context.

    ``context`` is an ``iter|pos|item`` table whose items are
    :class:`~repro.xml.document.NodeRef` values; non-node items raise a type
    error (XPTY0019).  The result is an ``iter|pos|item`` table with the step
    results per iteration in document order, duplicate free, ``pos``
    renumbered 1..n per iteration.

    ``need_item=False`` applies the dead-``item`` rewrite: callers proved no
    consumer ever reads the node surrogates (only per-iteration
    cardinalities matter), so the per-row ``NodeRef`` boxing is skipped and
    ``item`` is a constant stand-in column.
    """
    if options is None:
        options = StepOptions()

    per_container = _split_context(context, axis, node_test)
    produced: list[tuple[DocumentContainer, array, array, bool]] = []
    contexts_in = 0
    for container, pairs in per_container.values():
        pairs = sorted(set(pairs))
        contexts_in += len(pairs)
        iters, ranks, is_attr = _produce_step(container, pairs, axis,
                                              node_test, options, stats)
        produced.append((container, iters, ranks, is_attr))

    return _assemble_result(produced, contexts_in, need_item, axis.value)


def _step_spec(step: tuple) -> tuple | None:
    """The positional spec of a chain step tuple (pairs carry none)."""
    return step[2] if len(step) > 2 else None


def _collapse_descendant_steps(steps: Sequence[tuple]) -> list[tuple]:
    """Collapse ``descendant-or-self::node()/child::T`` pairs into
    ``descendant::T`` inside a fused chain.

    The classic XPath equivalence holds on node *sets* — a child of some
    descendant-or-self of ``s`` is exactly a descendant of ``s`` — and the
    intermediate contexts of a fused chain are per-iteration sets by
    construction, so collapsing never changes the chain's result.  It does
    change the work profile radically: the ``//x`` parse shape no longer
    enumerates the whole subtree as an intermediate context, it becomes a
    single (usually name-index-backed) descendant join.

    Steps carrying a positional spec never collapse: ``//b[1]`` counts
    children per *each* descendant-or-self context node, which the merged
    descendant join cannot express.
    """
    collapsed: list[tuple] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        axis, node_test = step[0], step[1]
        if (axis is Axis.DESCENDANT_OR_SELF and node_test.kind == "node"
                and not node_test.has_name and _step_spec(step) is None
                and index + 1 < len(steps)
                and steps[index + 1][0] is Axis.CHILD
                and _step_spec(steps[index + 1]) is None):
            collapsed.append((Axis.DESCENDANT,) + tuple(steps[index + 1][1:]))
            index += 2
            continue
        collapsed.append(step)
        index += 1
    return collapsed


def _positional_step(container: DocumentContainer,
                     pairs: list[tuple[int, int]], axis: Axis,
                     node_test: NodeTest, spec: tuple,
                     options: StepOptions, stats: StaircaseStats | None
                     ) -> tuple[array, array, bool]:
    """One chain step with a positional predicate (``[k]`` / ``[last()]``).

    Positional predicates count per *context node*, but the raw ``(iter,
    pre)`` buffers only carry iterations — several context nodes of one
    iteration share an iter value.  So the context is renumbered to one
    fresh dense iteration per context node (the ordinal doubles as an index
    back into ``pairs``), the staircase join runs as usual, and the
    counting loop walks its output in per-context document order keeping
    the ``k``-th (or last) row of each context before mapping ordinals back
    to the original iterations.  Still surrogate-free: the count runs on
    the raw int buffers, nothing is boxed.
    """
    contexts = [(pre, ordinal)
                for ordinal, (pre, _) in enumerate(pairs, start=1)]
    iters, ranks, is_attr = _produce_step(container, contexts, axis,
                                          node_test, options, stats)
    # per-context document order: one context node emits each result node
    # once, rank-ascending = document order
    order = sorted(range(len(iters)), key=lambda i: (iters[i], ranks[i]))
    keep: list[int] = []
    if spec[0] == "index":
        wanted = spec[1]
        count = 0
        last_ctx = None
        for i in order:
            ctx = iters[i]
            if ctx != last_ctx:
                count = 0
                last_ctx = ctx
            count += 1
            if count == wanted:
                keep.append(i)
    else:  # ("last",)
        last_ctx = None
        previous = -1
        for i in order:
            ctx = iters[i]
            if ctx != last_ctx and last_ctx is not None:
                keep.append(previous)
            last_ctx = ctx
            previous = i
        if last_ctx is not None:
            keep.append(previous)
    out_iters = array("q", (pairs[iters[i] - 1][1] for i in keep))
    out_ranks = array("q", (ranks[i] for i in keep))
    detail = f"{axis.value}[{wanted}]" if spec[0] == "index" \
        else f"{axis.value}[last()]"
    explain.record("step", "step.chain-positional", len(pairs),
                   len(keep), detail=detail)
    return out_iters, out_ranks, is_attr


def axis_step_chain(context: Table,
                    steps: Sequence[tuple], *,
                    options: StepOptions | None = None,
                    stats: StaircaseStats | None = None,
                    need_item: bool = True) -> Table:
    """Evaluate a fused chain of location steps.

    ``steps`` lists the chain bottom-most first — ``(axis, node_test)``
    pairs or ``(axis, node_test, positional_spec)`` triples where the spec
    is ``None``, ``("index", k)`` for a ``[k]`` predicate or ``("last",)``
    for ``[last()]``.  Per container, each staircase join's paired
    ``(iter, pre)`` int arrays are threaded straight into the next join —
    the between-steps sort/dedup runs on the raw buffers — so no
    intermediate step builds an ``iter|pos|item`` table or boxes a
    ``NodeRef``.  Positional predicates run as per-context counting on
    those same buffers (:func:`_positional_step`).  Only the chain's final
    result is assembled (and boxed at most once; never under
    ``need_item=False``), which is what makes whole path pipelines
    surrogate-free.

    Bit-identical to evaluating the steps one ``axis_step`` at a time: the
    intermediate context *sets* are the same (the per-step path dedups on
    the identical ``(iter, container, pre)`` int keys), only their
    materialisation is skipped.  Only the last step may use the attribute
    axis — attribute rows cannot feed a further tree-node step.
    """
    if options is None:
        options = StepOptions()
    if len(steps) < 2:
        raise ValueError("axis_step_chain needs at least two steps")
    normalized = [(step[0], step[1], step[2] if len(step) > 2 else None)
                  for step in steps]
    if any(axis is Axis.ATTRIBUTE for axis, _, _ in normalized[:-1]):
        raise ValueError("the attribute axis can only end a fused chain")
    normalized = _collapse_descendant_steps(normalized)

    first_axis, first_test, _ = normalized[0]
    per_container = _split_context(context, first_axis, first_test)
    produced: list[tuple[DocumentContainer, array, array, bool]] = []
    contexts_in = 0
    for container, pairs in per_container.values():
        pairs = sorted(set(pairs))
        contexts_in += len(pairs)
        iters = array("q")
        ranks = array("q")
        is_attr = False
        for index, (axis, node_test, spec) in enumerate(normalized):
            if index:
                # thread the previous join's output into the next context:
                # sort/dedup (iter, pre) -> [pre, iter] on the raw buffers
                pairs = sort_dedup_pairs(ranks, iters)
            if spec is None:
                iters, ranks, is_attr = _produce_step(
                    container, pairs, axis, node_test, options, stats)
            else:
                iters, ranks, is_attr = _positional_step(
                    container, pairs, axis, node_test, spec, options, stats)
        produced.append((container, iters, ranks, is_attr))

    detail = ">".join(axis.value for axis, _, _ in normalized)
    total_out = sum(len(entry[1]) for entry in produced)
    explain.record("step", "step.chain-fused", contexts_in, total_out,
                   detail=detail)
    return _assemble_result(produced, contexts_in, need_item, detail)
