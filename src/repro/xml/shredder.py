"""Document shredding: XML text → ``pre|size|level`` document container.

The shredder performs a single forward pass over the parse events.  Because
nodes are appended in preorder, shredding causes sequential write access to
the relational tables — the reason the paper reports linear, "interactive
time" shredding.  ``size`` is back-patched when the corresponding end tag is
seen; ``level`` is the current element-stack depth.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import XMLParseError
from .document import DocumentContainer, DocumentStore, NodeKind
from .parser import (Comment, EndElement, Event, ProcessingInstruction,
                     StartElement, Text, parse_events)


def shred_events(events: Iterable[Event], container: DocumentContainer, *,
                 frag: int | None = None, base_level: int = 0,
                 add_document_node: bool = True,
                 keep_whitespace: bool = False) -> int:
    """Shred a stream of parse events into ``container``.

    Returns the pre rank of the fragment root (the document node when
    ``add_document_node`` is true, the first top-level node otherwise).
    Whitespace-only text nodes are dropped unless ``keep_whitespace`` is set,
    matching the usual data-oriented XMark setup.
    """
    root_pre: int | None = None
    if add_document_node:
        root_pre = container.add_node(NodeKind.DOCUMENT, base_level,
                                      frag=frag)
        if frag is None:
            frag = root_pre
        base_level += 1

    stack: list[int] = []            # pre ranks of open elements
    node_count_at = {}               # pre -> node_count when opened

    for event in events:
        level = base_level + len(stack)
        if isinstance(event, StartElement):
            name_id = container.names.intern(event.name)
            pre = container.add_node(NodeKind.ELEMENT, level, name_id=name_id,
                                     frag=frag)
            if frag is None:
                frag = pre
            if root_pre is None:
                root_pre = pre
            for attr_name, attr_value in event.attributes:
                if attr_name.startswith("xmlns"):
                    continue
                container.add_attribute(pre, container.names.intern(attr_name),
                                        attr_value)
            stack.append(pre)
            node_count_at[pre] = container.node_count
        elif isinstance(event, EndElement):
            if not stack:
                raise XMLParseError(f"unexpected end tag </{event.name}>")
            pre = stack.pop()
            container.set_size(pre, container.node_count - node_count_at.pop(pre) + 0)
        elif isinstance(event, Text):
            content = event.content
            if not keep_whitespace and not content.strip():
                continue
            pre = container.add_node(NodeKind.TEXT, level, value=content,
                                     frag=frag)
            if root_pre is None:
                root_pre = pre
        elif isinstance(event, Comment):
            pre = container.add_node(NodeKind.COMMENT, level, value=event.content,
                                     frag=frag)
            if root_pre is None:
                root_pre = pre
        elif isinstance(event, ProcessingInstruction):
            pre = container.add_node(NodeKind.PROCESSING_INSTRUCTION, level,
                                     value=f"{event.target} {event.content}".strip(),
                                     frag=frag)
            if root_pre is None:
                root_pre = pre
        else:  # pragma: no cover - defensive
            raise XMLParseError(f"unexpected parse event {event!r}")

    if stack:
        raise XMLParseError("document ended with unclosed elements")
    if root_pre is None:
        raise XMLParseError("document contains no content")
    if add_document_node:
        container.set_size(root_pre, container.node_count - root_pre - 1)
    return root_pre


def shred_string(text: str, container: DocumentContainer, *,
                 keep_whitespace: bool = False) -> int:
    """Shred an XML string into an (empty or growing) container."""
    return shred_events(parse_events(text), container,
                        keep_whitespace=keep_whitespace)


def shred_document(text: str, name: str, store: DocumentStore, *,
                   keep_whitespace: bool = False) -> DocumentContainer:
    """Shred an XML string into a new named persistent container.

    The container is filled *before* it is registered with the store, so
    concurrent readers never observe a partially shredded document (the
    registration is the atomic publication point that bumps the store's
    schema version).
    """
    container = store.detached_container(name)
    shred_string(text, container, keep_whitespace=keep_whitespace)
    store.register(container)
    return container


def shred_file(path: str, name: str, store: DocumentStore, *,
               keep_whitespace: bool = False) -> DocumentContainer:
    """Shred an XML file from disk into a new named persistent container."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return shred_document(text, name, store, keep_whitespace=keep_whitespace)
