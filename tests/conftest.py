"""Shared fixtures: small hand-written documents and a tiny XMark instance."""

from __future__ import annotations

import pytest

from repro import EngineOptions, MonetXQuery
from repro.xmark import generate_document
from repro.xml import DocumentStore, shred_document


SMALL_XML = (
    '<site>'
    '  <people>'
    '    <person id="person0"><name>Alice</name>'
    '      <profile income="60000"><interest category="cat1"/></profile></person>'
    '    <person id="person1"><name>Bob</name>'
    '      <profile income="30000"><interest category="cat2"/></profile></person>'
    '    <person id="person2"><name>Carol</name></person>'
    '  </people>'
    '  <open_auctions>'
    '    <open_auction id="open0"><initial>10</initial>'
    '      <bidder><increase>3</increase></bidder>'
    '      <bidder><increase>7</increase></bidder>'
    '      <current>20</current><reserve>15</reserve>'
    '      <itemref item="item0"/></open_auction>'
    '    <open_auction id="open1"><initial>200</initial><current>205</current>'
    '      <itemref item="item1"/></open_auction>'
    '  </open_auctions>'
    '  <closed_auctions>'
    '    <closed_auction><buyer person="person0"/><price>44</price>'
    '      <itemref item="item0"/></closed_auction>'
    '    <closed_auction><buyer person="person0"/><price>12</price>'
    '      <itemref item="item1"/></closed_auction>'
    '    <closed_auction><buyer person="person2"/><price>99</price>'
    '      <itemref item="item2"/></closed_auction>'
    '  </closed_auctions>'
    '  <regions><europe>'
    '    <item id="item0"><name>gold watch</name>'
    '      <description><text>gold watch</text></description></item>'
    '    <item id="item1"><name>silver ring</name>'
    '      <description><text>silver ring</text></description></item>'
    '  </europe></regions>'
    '</site>'
)


@pytest.fixture
def store() -> DocumentStore:
    return DocumentStore()


@pytest.fixture
def small_doc(store):
    """The small auction document as a shredded container."""
    return shred_document(SMALL_XML, "small.xml", store)


@pytest.fixture
def engine() -> MonetXQuery:
    """An engine with the small auction document loaded."""
    mxq = MonetXQuery()
    mxq.load_document_text(SMALL_XML, name="auction.xml")
    return mxq


@pytest.fixture(scope="session")
def xmark_text() -> str:
    """A tiny generated XMark document (deterministic)."""
    return generate_document(scale=0.0012, seed=11)


@pytest.fixture(scope="session")
def xmark_engine(xmark_text) -> MonetXQuery:
    mxq = MonetXQuery()
    mxq.load_document_text(xmark_text, name="auction.xml")
    return mxq


@pytest.fixture
def all_options_off() -> EngineOptions:
    """Engine options with every optimization disabled (naive configuration)."""
    return EngineOptions(
        loop_lifted_child=False,
        loop_lifted_descendant=False,
        loop_lifted_other=False,
        nametest_pushdown=False,
        join_recognition=False,
        order_optimization=False,
        positional_lookup=False,
        existential_aggregates=False,
        projection_pushdown=False,
        subplan_sharing=False,
        predicate_pushdown=False,
        cost_based_joins=False,
        cross_query_caching=False,
        step_fusion=False,
        wcoj=False,
    )
