"""Worst-case-optimal multi-way joins over sorted int buffers.

Pairwise join plans can materialise intermediates that are quadratically
(or worse) larger than the final result; the generic-join / leapfrog-
triejoin family (Ngo et al., "Worst-Case Optimal Join Algorithms")
eliminates the blow-up by intersecting the join columns one *attribute* at
a time instead of one *relation* at a time.  This module implements the
mechanical half of that idea over typed ``array('q')`` buffers:

* every join attribute's values are interned into dense int keys and kept
  as parallel ``(key, item)`` buffers sorted on the key column — the
  argsort is paid once per attribute;
* at each level of the recursion the two relations sharing the attribute
  are intersected run-by-run with galloping
  (:func:`repro.relational.sorting.intersect_runs`), every common key
  narrowing both relations' candidate item sets before descending;
* the leaves emit the cross product of the fully-narrowed candidate sets,
  which by construction contains only genuine result tuples.

Value typing (XQuery's per-pair promotion rules) is the caller's business:
rows arrive already encoded as ``(key, item, genuine)`` where ``key`` is
any hashable and ``genuine`` distinguishes genuinely numeric values from
numeric *casts* of strings — at a numeric key the valid pairs are
``genuine x (genuine | cast)`` and ``cast x genuine``, never
``cast x cast`` (two strings compare as strings, not through their casts).
"""

from __future__ import annotations

from array import array
from itertools import product
from typing import Any, Iterable, Sequence

from . import explain
from .sorting import argsort_ints, intersect_runs


class _Side:
    """One relation's rows of one attribute, sorted on the key column."""

    __slots__ = ("keys", "items", "genuine")

    def __init__(self, keys: array, items: array, genuine: bytes):
        self.keys = keys
        self.items = items
        self.genuine = genuine

    def restrict(self, allowed: set[int] | None) -> "_Side":
        """The rows whose item index is in ``allowed`` (sort order kept)."""
        if allowed is None:
            return self
        positions = [index for index, item in enumerate(self.items)
                     if item in allowed]
        return _Side(array("q", (self.keys[i] for i in positions)),
                     array("q", (self.items[i] for i in positions)),
                     bytes(self.genuine[i] for i in positions))


class JoinAttribute:
    """One equality attribute of a generic join, shared by two relations.

    ``left_rel``/``right_rel`` are the indices of the participating
    relations.  Keys are interned per attribute (both sides share the
    dictionary, so equal values get equal ids); each side becomes a
    :class:`_Side` of parallel buffers sorted on the key column.
    """

    def __init__(self, left_rel: int, right_rel: int):
        self.rels = (left_rel, right_rel)
        self._intern: dict[Any, int] = {}
        self.numeric_ids: set[int] = set()
        self.sides: list[_Side] = []

    def intern(self, key: Any, *, numeric: bool = False) -> int:
        key_id = self._intern.setdefault(key, len(self._intern))
        if numeric:
            self.numeric_ids.add(key_id)
        return key_id

    def add_side(self, rows: Iterable[tuple[int, int, bool]]) -> None:
        """Append one side from ``(key_id, item_index, genuine)`` rows."""
        keys = array("q")
        items = array("q")
        genuine = bytearray()
        for key_id, item_index, is_genuine in rows:
            keys.append(key_id)
            items.append(item_index)
            genuine.append(1 if is_genuine else 0)
        order = argsort_ints(keys)
        self.sides.append(_Side(array("q", (keys[i] for i in order)),
                                array("q", (items[i] for i in order)),
                                bytes(genuine[i] for i in order)))

    def _branches(self, left: _Side, lo1: int, hi1: int,
                  right: _Side, lo2: int, hi2: int, key_id: int
                  ) -> list[tuple[set[int], set[int]]]:
        """The valid (left items, right items) pairs at one common key."""
        if key_id not in self.numeric_ids:
            return [(set(left.items[lo1:hi1]), set(right.items[lo2:hi2]))]
        left_genuine: set[int] = set()
        left_cast: set[int] = set()
        for index in range(lo1, hi1):
            (left_genuine if left.genuine[index] else left_cast).add(
                left.items[index])
        right_genuine: set[int] = set()
        right_cast: set[int] = set()
        for index in range(lo2, hi2):
            (right_genuine if right.genuine[index] else right_cast).add(
                right.items[index])
        branches = []
        if left_genuine and (right_genuine or right_cast):
            branches.append((left_genuine, right_genuine | right_cast))
        if left_cast and right_genuine:
            branches.append((left_cast, right_genuine))
        return branches


def generic_join(sizes: Sequence[int], attributes: Sequence[JoinAttribute]
                 ) -> set[tuple[int, ...]]:
    """All item-index tuples satisfying every attribute equality.

    ``sizes[r]`` is the item count of relation ``r``; every relation must
    participate in at least one attribute (the recogniser guarantees the
    join graph is connected).  Attributes are eliminated cheapest-first
    (fewest rows on their smaller side), each common key narrowing both
    relations' candidate sets before the recursion descends — the
    intermediate state never exceeds the buffers themselves, and the output
    is exactly the result set.
    """
    if any(size == 0 for size in sizes):
        return set()
    order = sorted(range(len(attributes)),
                   key=lambda i: min(len(side.keys)
                                     for side in attributes[i].sides))
    results: set[tuple[int, ...]] = set()

    def descend(level: int, allowed: list[set[int] | None]) -> None:
        if level == len(order):
            domains = [sorted(items) if items is not None else range(size)
                       for items, size in zip(allowed, sizes)]
            results.update(product(*domains))
            return
        attribute = attributes[order[level]]
        rel_a, rel_b = attribute.rels
        side_a = attribute.sides[0].restrict(allowed[rel_a])
        side_b = attribute.sides[1].restrict(allowed[rel_b])
        for key_id, lo1, hi1, lo2, hi2 in intersect_runs(side_a.keys,
                                                         side_b.keys):
            for items_a, items_b in attribute._branches(
                    side_a, lo1, hi1, side_b, lo2, hi2, key_id):
                narrowed = list(allowed)
                narrowed[rel_a] = items_a
                narrowed[rel_b] = items_b
                descend(level + 1, narrowed)

    descend(0, [None] * len(sizes))
    explain.record("join", "join.wcoj", sum(sizes), len(results),
                   detail=f"{len(sizes)}-way, {len(attributes)} attributes")
    return results


def eq_join_pairs(left_rows: Sequence[tuple[int, Any]],
                  right_rows: Sequence[tuple[int, Any]]
                  ) -> list[tuple[int, int]]:
    """Distinct ``(left_group, right_group)`` pairs with equal values.

    The sort-based existential equi-join: both inputs are interned into
    sorted ``(key, group)`` int buffers and their equal-value runs aligned
    by run detection — the vectorized replacement of the dict-bucket hash
    join followed by duplicate elimination.  Value equality follows Python
    (``1 == 1.0 == True``), exactly like the hash buckets it replaces.
    """
    intern: dict[Any, int] = {}

    def encode(rows: Sequence[tuple[int, Any]]) -> tuple[array, list[int]]:
        keys = array("q")
        groups: list[int] = []
        for group, value in rows:
            keys.append(intern.setdefault(value, len(intern)))
            groups.append(group)
        order = argsort_ints(keys)
        return (array("q", (keys[i] for i in order)),
                [groups[i] for i in order])

    left_keys, left_groups = encode(left_rows)
    right_keys, right_groups = encode(right_rows)
    pairs: set[tuple[int, int]] = set()
    for _key, lo1, hi1, lo2, hi2 in intersect_runs(left_keys, right_keys):
        for left_group in set(left_groups[lo1:hi1]):
            for right_group in set(right_groups[lo2:hi2]):
                pairs.add((left_group, right_group))
    explain.record("join", "join.sort-runs",
                   len(left_rows) + len(right_rows), len(pairs),
                   detail="eq run-intersection")
    return sorted(pairs)
