"""Worst-case-optimal vs. pairwise multi-way joins — the triangle workload.

The adversarial shape: R(x, y) ⋈ S(y, z) ⋈ T(z, x) where every R row and
every S row share the single join value ``y = 0``.  Any pairwise schedule
must materialise the full Θ(n²) R×S intermediate before the third conjunct
prunes it; the generic join narrows all three relations attribute by
attribute and only ever touches the n genuine result tuples.

Results are asserted bit-identical before timing; the generic join must be
>= 2x faster (in practice the gap grows quadratically with the document).
Results land in ``benchmarks/results/BENCH_bench_wcoj.json``.
"""

from __future__ import annotations

import time

from repro import MonetXQuery
from repro.relational.explain import capture

from .conftest import BASE_SCALE, write_bench_json

#: rows per relation — scaled so the quadratic pairwise intermediate stays
#: tractable at smoke scale (n=12 at REPRO_BENCH_SCALE=0.0008) but shows a
#: clear quadratic-vs-linear split at the default (n=60)
TRIANGLE_N = max(12, int(60 * BASE_SCALE / 0.002))
REPEATS = 5

TRIANGLE_QUERY = (
    "for $r in /db/r for $s in /db/s for $t in /db/t "
    "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
    "return <m>{$r/x/text()}</m>")


def triangle_document(n: int) -> str:
    rows = []
    rows.extend(f"<r><x>{i}</x><y>0</y></r>" for i in range(n))
    rows.extend(f"<s><y>0</y><z>{j}</z></s>" for j in range(n))
    rows.extend(f"<t><z>{j}</z><x>{j}</x></t>" for j in range(n))
    return "<db>" + "".join(rows) + "</db>"


def best_of(prepared, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        prepared.run()
        best = min(best, time.perf_counter() - started)
    return best


def test_triangle_generic_join_beats_pairwise():
    mxq = MonetXQuery()
    mxq.load_document_text(triangle_document(TRIANGLE_N), name="tri.xml")
    generic = mxq.prepare(TRIANGLE_QUERY)
    pairwise = mxq.prepare(TRIANGLE_QUERY,
                           options=mxq.options.replace(wcoj=False))

    # correctness first: the strategy may change the intermediates, never
    # the result bytes
    assert generic.run().serialize() == pairwise.run().serialize()
    with capture() as trace:
        generic.run()
    assert trace.count("plan.wcoj") == 1, \
        "the triangle workload did not take the generic-join path"

    generic_seconds = best_of(generic)
    pairwise_seconds = best_of(pairwise)
    speedup = pairwise_seconds / generic_seconds if generic_seconds \
        else float("inf")
    write_bench_json("bench_wcoj", {
        "n_per_relation": TRIANGLE_N,
        "query": TRIANGLE_QUERY,
        "wcoj_s": generic_seconds,
        "pairwise_s": pairwise_seconds,
        "speedup": speedup,
        "detail": "triangle 3-way join: quadratic pairwise intermediate "
                  "vs. linear generic-join narrowing",
    })
    assert speedup >= 2.0, f"triangle speedup only {speedup:.1f}x"
