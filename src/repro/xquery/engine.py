"""The MonetDB/XQuery engine facade.

:class:`MonetXQuery` ties the subsystems together: the document store
(shredded ``pre|size|level`` containers), a transient container for
constructed nodes, the loop-lifting compiler, and the engine options that
expose the ablation switches the paper's experiments toggle (loop-lifted vs.
iterative staircase join, nametest pushdown, join recognition, order
optimization, positional lookup).

    >>> mxq = MonetXQuery()
    >>> mxq.load_document_text("<a><b/></a>", name="doc.xml")
    >>> mxq.query('count(doc("doc.xml")//b)').items
    [1]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import DocumentError
from ..staircase.iterative import StaircaseStats
from ..xml.document import DocumentContainer, DocumentStore, NodeRef
from ..xml.serializer import serialize_sequence
from ..xml.shredder import shred_document, shred_file
from . import parser
from .compiler import LoopLiftingCompiler
from .types import atomize, to_string


@dataclass
class EngineOptions:
    """Ablation switches of the relational XQuery engine.

    The defaults correspond to the full MonetDB/XQuery configuration; the
    benchmarks flip individual switches to reproduce Figures 12–14.
    """

    #: use the loop-lifted staircase join for child steps (else one pass per iteration)
    loop_lifted_child: bool = True
    #: use the loop-lifted staircase join for descendant(-or-self) steps
    loop_lifted_descendant: bool = True
    #: use the loop-lifted algorithms for the remaining axes
    loop_lifted_other: bool = True
    #: push name tests below location steps (candidate lists from the name index)
    nametest_pushdown: bool = True
    #: recognise value joins hidden in loop-lifted FLWOR plans (Section 4.1)
    join_recognition: bool = True
    #: maintain/exploit order properties: skip sorts, streaming DENSE_RANK
    order_optimization: bool = True
    #: positional (address computation) lookups into dense key columns
    positional_lookup: bool = True
    #: min/max-aggregate plan for existential order comparisons (Figure 8b)
    existential_aggregates: bool = True

    def replace(self, **changes: Any) -> "EngineOptions":
        return replace(self, **changes)


@dataclass
class QueryResult:
    """The outcome of one query evaluation."""

    items: list[Any]
    elapsed_seconds: float
    step_stats: StaircaseStats

    def serialize(self) -> str:
        """Serialize the result sequence to XML / text."""
        return serialize_sequence(self.items)

    def atomized(self) -> list[Any]:
        """The result items after atomization (nodes → string values)."""
        return [atomize(item) for item in self.items]

    def strings(self) -> list[str]:
        """The result items as strings (handy in tests)."""
        return [to_string(item) for item in self.items]

    def __len__(self) -> int:
        return len(self.items)


class MonetXQuery:
    """A relational XQuery processor over shredded XML documents."""

    def __init__(self, options: EngineOptions | None = None):
        self.options = options if options is not None else EngineOptions()
        self.store = DocumentStore()
        self.transient = self.store.new_container("(transient)", transient=True)
        self._default_context: str | None = None

    # ------------------------------------------------------------------ #
    # document management
    # ------------------------------------------------------------------ #
    def load_document_text(self, text: str, name: str, *,
                           default_context: bool = True) -> DocumentContainer:
        """Shred an XML string into the store under the given name."""
        container = shred_document(text, name, self.store)
        if default_context and self._default_context is None:
            self._default_context = name
        return container

    def load_document(self, path: str, name: str | None = None, *,
                      default_context: bool = True) -> DocumentContainer:
        """Shred an XML file from disk into the store."""
        name = name if name is not None else path
        container = shred_file(path, name, self.store)
        if default_context and self._default_context is None:
            self._default_context = name
        return container

    def register_container(self, container: DocumentContainer, *,
                           default_context: bool = True) -> None:
        """Register an already shredded container (e.g. an XMark document)."""
        self.store.register(container)
        if default_context and self._default_context is None:
            self._default_context = container.name

    def drop_document(self, name: str) -> None:
        self.store.drop(name)
        if self._default_context == name:
            self._default_context = None

    def set_default_context(self, name: str) -> None:
        if name not in self.store:
            raise DocumentError(f"document {name!r} is not loaded")
        self._default_context = name

    def reset_transient(self) -> None:
        """Drop all constructed nodes (start a fresh transient container)."""
        self.transient = DocumentContainer(
            "(transient)", self.transient.order_key, transient=True)

    # ------------------------------------------------------------------ #
    # query evaluation
    # ------------------------------------------------------------------ #
    def parse(self, query: str):
        """Parse a query without evaluating it (returns the AST module)."""
        return parser.parse(query)

    def query(self, query: str, *, context: str | None = None,
              options: EngineOptions | None = None) -> QueryResult:
        """Evaluate an XQuery string and return its result sequence.

        ``context`` names the document bound to the context item (absolute
        paths like ``/site/...`` start there); it defaults to the first
        loaded document.  ``options`` overrides the engine options for this
        query only.
        """
        module = parser.parse(query)
        return self.execute(module, context=context, options=options)

    def execute(self, module, *, context: str | None = None,
                options: EngineOptions | None = None) -> QueryResult:
        """Evaluate an already parsed module."""
        active_options = options if options is not None else self.options
        compiler = LoopLiftingCompiler(_EngineView(self, active_options))
        context_item = self._context_item(context)
        started = time.perf_counter()
        items = compiler.run(module, context_item=context_item)
        elapsed = time.perf_counter() - started
        return QueryResult(items=items, elapsed_seconds=elapsed,
                           step_stats=compiler.step_stats)

    def _context_item(self, context: str | None) -> NodeRef | None:
        name = context if context is not None else self._default_context
        if name is None:
            return None
        container = self.store.get(name)
        return NodeRef(container, 0)


class _EngineView:
    """What the compiler sees of the engine: store, transient container, options."""

    def __init__(self, engine: MonetXQuery, options: EngineOptions):
        self.store = engine.store
        self.transient = engine.transient
        self.options = options
