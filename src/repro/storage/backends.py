"""Buffer backends: where a document container's columns physically live.

MonetDB's BATs are flat buffers a storage manager can place anywhere —
process heap, memory-mapped file, shared memory segment.  This module is
the pluggable seam that gives the typed ``array('q')`` columns of
:class:`~repro.xml.document.DocumentContainer` the same freedom:

:class:`RamBackend`
    today's behaviour, verbatim: integer columns are appendable
    ``array('q')`` buffers, string columns are plain Python lists.  The
    shredder and node constructors build documents through it.
:class:`MmapBackend`
    read-only views over the column files of a persisted store
    (:mod:`repro.storage.persist`): integer columns are ``memoryview``
    objects cast to 64-bit signed ints over ``mmap`` regions — the OS
    pages column data in on demand, so documents larger than RAM stay
    queryable — and string columns are :class:`StringHeapView` objects
    decoding UTF-8 lazily out of an offsets-plus-blob heap.
:class:`SharedMemoryBackend`
    the same read-only view machinery over a
    ``multiprocessing.shared_memory`` segment: one segment holds all of a
    document's columns back to back, every worker process attaches it
    zero-copy by name, so a pool of forked query workers serves one
    physical copy of the shredded document with no GIL in common
    (:mod:`repro.server` dispatches onto such a pool; the segment
    export/attach catalog lives in :mod:`repro.storage.persist`).

All three expose the same tiny protocol (``int_column`` / ``str_column``
/ ``readonly``), so they slot in without touching the container or the
kernels above it.

Every read path of the engine touches columns only through ``len``,
indexing, iteration and slicing — exactly the operations ``memoryview``
shares with ``array`` — so a container is queryable identically no matter
which backend holds its buffers.
"""

from __future__ import annotations

import mmap
from array import array
from typing import Any, Iterator, Protocol, Sequence

from ..errors import StorageError


#: length sentinel marking a missing (``None``) entry in a string heap
HEAP_NONE = -1


class Backend(Protocol):
    """Where a container's column buffers live (RAM, mmap, shared memory)."""

    #: read-only backends reject structural growth (``add_node`` etc.)
    readonly: bool

    def int_column(self, name: str) -> Sequence[int]:
        """The 64-bit integer buffer backing the named column."""
        ...

    def str_column(self, name: str) -> Sequence[str | None]:
        """The string sequence backing the named column."""
        ...

    def close(self) -> None:
        """Release any resources held for the buffers (idempotent)."""
        ...


class RamBackend:
    """Process-heap buffers: appendable ``array('q')`` / ``list`` columns.

    This is the default backend and reproduces the pre-backend behaviour
    bit for bit: each requested column is a fresh, growable buffer owned
    by the container.
    """

    readonly = False

    def int_column(self, name: str) -> "array[int]":
        return array("q")

    def str_column(self, name: str) -> list[str | None]:
        return []

    def close(self) -> None:
        pass


class StringHeapView:
    """Lazy string column over an offsets table and a UTF-8 blob.

    The heap layout is ``count`` int64 ``(offset, length)`` pairs followed
    by one contiguous UTF-8 blob; a length of :data:`HEAP_NONE` marks a
    ``None`` entry (text content of non-text nodes).  Entries decode on
    access only, so a mapped value column never materialises the whole
    document's text.  Out-of-bounds offsets — the signature of a torn or
    corrupted heap file — raise :class:`~repro.errors.StorageError` naming
    the file instead of returning garbage.
    """

    __slots__ = ("_entries", "_blob", "_label")

    def __init__(self, entries: Sequence[int], blob: "memoryview | bytes",
                 label: str):
        if len(entries) % 2:
            raise StorageError(
                f"string heap {label!r} has a truncated offsets table")
        self._entries = entries
        self._blob = blob
        self._label = label

    def __len__(self) -> int:
        return len(self._entries) // 2

    def __getitem__(self, index: int) -> str | None:
        count = len(self._entries) // 2
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(f"string heap index {index} out of range")
        offset = self._entries[2 * index]
        length = self._entries[2 * index + 1]
        if length == HEAP_NONE:
            return None
        if length < 0 or offset < 0 or offset + length > len(self._blob):
            raise StorageError(
                f"string heap {self._label!r} entry {index} points outside "
                f"the blob (offset={offset}, length={length})")
        try:
            return bytes(self._blob[offset:offset + length]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"string heap {self._label!r} entry {index} is not valid "
                f"UTF-8") from exc

    def __iter__(self) -> Iterator[str | None]:
        for index in range(len(self)):
            yield self[index]

    def tolist(self) -> list[str | None]:
        return list(self)

    def release(self) -> None:
        """Release mapped buffers (replaces them with empty sequences)."""
        if isinstance(self._entries, memoryview):
            self._entries.release()
        if isinstance(self._blob, memoryview):
            self._blob.release()
        self._entries = array("q")
        self._blob = b""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StringHeapView({self._label!r}, {len(self)} entries)"


def encode_string_heap(values: Sequence[str | None]) -> tuple[bytes, bytes]:
    """Encode a string column into ``(offsets_bytes, blob_bytes)``.

    The inverse of :class:`StringHeapView`: offsets are ``(offset,
    length)`` int64 pairs, ``None`` entries get ``(0, HEAP_NONE)``.
    """
    entries = array("q")
    pieces: list[bytes] = []
    offset = 0
    for value in values:
        if value is None:
            entries.append(0)
            entries.append(HEAP_NONE)
            continue
        encoded = value.encode("utf-8")
        entries.append(offset)
        entries.append(len(encoded))
        pieces.append(encoded)
        offset += len(encoded)
    return entries.tobytes(), b"".join(pieces)


class MmapBackend:
    """Read-only views over the mapped column files of a persisted store.

    Constructed by :mod:`repro.storage.persist` with the already-mapped
    buffers; this class only owns their lifetime.  Integer columns are
    ``memoryview('q')`` objects, string columns :class:`StringHeapView`
    objects — both page in from disk on demand.
    """

    readonly = True

    def __init__(self, int_columns: dict[str, "memoryview"],
                 str_columns: dict[str, StringHeapView],
                 mmaps: Sequence[mmap.mmap] = (), *, label: str = "(mmap)"):
        self._int_columns = int_columns
        self._str_columns = str_columns
        self._mmaps = list(mmaps)
        self._label = label

    def int_column(self, name: str) -> "memoryview":
        try:
            return self._int_columns[name]
        except KeyError:
            raise StorageError(
                f"store {self._label!r} has no integer column {name!r}") from None

    def str_column(self, name: str) -> StringHeapView:
        try:
            return self._str_columns[name]
        except KeyError:
            raise StorageError(
                f"store {self._label!r} has no string column {name!r}") from None

    def close(self) -> None:
        """Release the views and close the underlying maps (idempotent)."""
        for view in self._int_columns.values():
            view.release()
        for heap in self._str_columns.values():
            heap.release()
        self._int_columns = {}
        self._str_columns = {}
        for mapped in self._mmaps:
            try:
                if not mapped.closed:
                    mapped.close()
            except BufferError:     # a view escaped; the GC will finish up
                pass
        self._mmaps = []


def create_segment(size: int, name: str | None = None):
    """Create a shared-memory segment (at least one byte — POSIX minimum).

    The creating process owns the segment's lifetime: it stays linked
    until :func:`unlink_segment`, so attaching workers can come and go.
    """
    from multiprocessing import shared_memory
    return shared_memory.SharedMemory(create=True, size=max(size, 1),
                                      name=name)


def attach_segment(name: str):
    """Attach an existing shared-memory segment by name, *without*
    handing it to this process's ``resource_tracker``.

    The tracker would otherwise unlink the segment when the attaching
    worker exits (CPython gh-82300) — destroying it under the publishing
    parent and every sibling worker.  Python 3.13+ has ``track=False``
    for exactly this; on older versions registration is suppressed for
    the duration of the attach.
    """
    from multiprocessing import shared_memory
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:       # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def unlink_segment(segment) -> None:
    """Close and unlink a segment (idempotent; owner side only).

    POSIX semantics match ``os.replace`` on the column files: unlinking
    removes the *name*, attached workers keep their mapping alive until
    they close it — exactly the snapshot discipline readers rely on.
    """
    try:
        segment.close()
    except (OSError, BufferError):      # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class SharedMemoryBackend:
    """Read-only views over one shared-memory segment holding a document.

    Constructed by :func:`repro.storage.persist.attach_container_shared`
    with views already carved out of the attached segment; this class
    only owns their lifetime.  ``close()`` detaches this process's
    mapping — it never unlinks the segment, which belongs to the
    publishing (parent) process and is reclaimed through its epoch
    protocol once every reader generation drains.
    """

    readonly = True

    def __init__(self, int_columns: dict[str, "memoryview"],
                 str_columns: dict[str, StringHeapView],
                 segment: Any = None, *, label: str = "(shared)"):
        self._int_columns = int_columns
        self._str_columns = str_columns
        self._segment = segment
        self._label = label

    def int_column(self, name: str) -> "memoryview":
        try:
            return self._int_columns[name]
        except KeyError:
            raise StorageError(
                f"shared store {self._label!r} has no integer column "
                f"{name!r}") from None

    def str_column(self, name: str) -> StringHeapView:
        try:
            return self._str_columns[name]
        except KeyError:
            raise StorageError(
                f"shared store {self._label!r} has no string column "
                f"{name!r}") from None

    def close(self) -> None:
        """Release the views and detach the segment (idempotent)."""
        for view in self._int_columns.values():
            view.release()
        for heap in self._str_columns.values():
            heap.release()
        self._int_columns = {}
        self._str_columns = {}
        if self._segment is not None:
            try:
                self._segment.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass
            self._segment = None
