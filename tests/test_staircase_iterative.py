"""Plain staircase join: correctness against a naive oracle and the touch bound."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StaircaseJoinError
from repro.staircase import (Axis, NodeTest, StaircaseStats, attribute_step,
                             naive_axis, staircase_join,
                             structural_join, structural_join_descendant_step)
from repro.xml import DocumentStore, shred_document


AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.PARENT,
        Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.FOLLOWING, Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING, Axis.SELF]


def make_doc(xml: str):
    return shred_document(xml, "doc.xml", DocumentStore())


@pytest.fixture(scope="module")
def paper_doc():
    """The Figure 1-3 example tree a(b(c(d,e)), f(g, h(i,j)))."""
    return make_doc("<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>")


def name_to_pre(doc, name):
    return doc.candidates_by_name(name)[0]


class TestPaperExamples:
    def test_figure1_ancestor_pruning(self, paper_doc):
        """(c,e,f,i)/ancestor — covered context nodes are pruned, no duplicates."""
        context = [name_to_pre(paper_doc, name) for name in "cefi"]
        stats = StaircaseStats()
        result = staircase_join(paper_doc, context, Axis.ANCESTOR, stats=stats)
        expected = naive_axis(paper_doc, context, Axis.ANCESTOR)
        assert result == expected
        assert len(result) == len(set(result))
        assert stats.contexts_pruned >= 1

    def test_figure2_following_partitioning(self, paper_doc):
        context = [name_to_pre(paper_doc, name) for name in "cgi"]
        result = staircase_join(paper_doc, context, Axis.FOLLOWING)
        assert result == naive_axis(paper_doc, context, Axis.FOLLOWING)

    def test_figure3_descendant_skipping_bound(self, paper_doc):
        """Descendant touches at most |result| + |context| document tuples."""
        context = [name_to_pre(paper_doc, "c"), name_to_pre(paper_doc, "h")]
        stats = StaircaseStats()
        result = staircase_join(paper_doc, context, Axis.DESCENDANT, stats=stats)
        assert result == naive_axis(paper_doc, context, Axis.DESCENDANT)
        assert stats.nodes_scanned <= len(result) + len(context)

    def test_child_axis_skips_subtrees(self, paper_doc):
        a = name_to_pre(paper_doc, "a")
        stats = StaircaseStats()
        result = staircase_join(paper_doc, [a], Axis.CHILD, stats=stats)
        names = [paper_doc.element_name(pre) for pre in result]
        assert names == ["b", "f"]
        # only the context node and its children (+1 skip probe each) touched
        assert stats.nodes_scanned <= 1 + 2 * len(result) + 1

    def test_name_test_filter(self, paper_doc):
        a = name_to_pre(paper_doc, "a")
        result = staircase_join(paper_doc, [a], Axis.DESCENDANT,
                                NodeTest(kind="element", name="h"))
        assert [paper_doc.element_name(pre) for pre in result] == ["h"]

    def test_attribute_axis_raises(self, paper_doc):
        with pytest.raises(StaircaseJoinError):
            staircase_join(paper_doc, [0], Axis.ATTRIBUTE)

    def test_empty_context(self, paper_doc):
        assert staircase_join(paper_doc, [], Axis.DESCENDANT) == []

    def test_duplicate_context_nodes_collapse(self, paper_doc):
        c = name_to_pre(paper_doc, "c")
        once = staircase_join(paper_doc, [c], Axis.DESCENDANT)
        twice = staircase_join(paper_doc, [c, c, c], Axis.DESCENDANT)
        assert once == twice


class TestAttributes:
    def test_attribute_step_by_name(self):
        doc = make_doc('<a x="1"><b x="2" y="3"/></a>')
        owners = [doc.attr_owner[index]
                  for index in attribute_step(doc, [1, 2], "x")]
        assert owners == [1, 2]

    def test_attribute_step_wildcard(self):
        doc = make_doc('<a x="1"><b x="2" y="3"/></a>')
        assert len(attribute_step(doc, [2], None)) == 2

    def test_attribute_step_unknown_name(self):
        doc = make_doc('<a x="1"/>')
        assert attribute_step(doc, [1], "nope") == []


class TestStructuralJoinBaseline:
    def test_structural_join_pairs(self, paper_doc):
        a = name_to_pre(paper_doc, "a")
        b = name_to_pre(paper_doc, "b")
        pairs = structural_join(paper_doc, [a, b],
                                list(range(paper_doc.node_count)))
        for ancestor, descendant in pairs:
            assert ancestor < descendant <= ancestor + paper_doc.size[ancestor]

    def test_structural_join_step_matches_staircase(self, paper_doc):
        context = [name_to_pre(paper_doc, "b"), name_to_pre(paper_doc, "f")]
        assert structural_join_descendant_step(paper_doc, context) == \
            staircase_join(paper_doc, context, Axis.DESCENDANT)


# ---------------------------------------------------------------------------- #
# randomized equivalence with the naive oracle over all axes
# ---------------------------------------------------------------------------- #
def _random_document(seed: int):
    rng = random.Random(seed)

    def subtree(depth):
        name = rng.choice("abcd")
        if depth > 3 or rng.random() < 0.3:
            return f"<{name}/>"
        children = "".join(subtree(depth + 1) for _ in range(rng.randint(1, 3)))
        return f"<{name}>{children}</{name}>"

    return make_doc(f"<root>{subtree(0)}{subtree(0)}</root>")


@pytest.mark.parametrize("axis", AXES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_staircase_matches_naive_oracle(axis, seed):
    doc = _random_document(seed)
    rng = random.Random(seed * 100 + 7)
    context = rng.sample(range(doc.node_count), min(6, doc.node_count))
    assert staircase_join(doc, context, axis) == naive_axis(doc, context, axis)


@given(st.integers(0, 10_000), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_descendant_touch_bound_random(seed, context_size):
    doc = _random_document(seed % 17)
    rng = random.Random(seed)
    context = rng.sample(range(doc.node_count), min(context_size, doc.node_count))
    stats = StaircaseStats()
    result = staircase_join(doc, context, Axis.DESCENDANT, stats=stats)
    assert stats.nodes_scanned <= len(result) + len(context)
    assert result == sorted(set(result))
