"""Unit tests for the relational algebra operators and algorithm selection."""

import pytest

from repro.errors import RelationalError, SchemaError
from repro.relational import Table, capture
from repro.relational import operators as ops


@pytest.fixture
def left():
    return Table.from_dict({"iter": [1, 2, 3], "item": [10, 20, 30]},
                           infer_props=True, order=("iter",))


@pytest.fixture
def right():
    return Table.from_dict({"key": [1, 2, 3, 4], "val": ["a", "b", "c", "d"]},
                           infer_props=True, order=("key",))


class TestProjectAttach:
    def test_project_renames(self, left):
        result = ops.project(left, {"i": "iter"})
        assert result.column_names == ("i",)
        assert list(result.col("i")) == [1, 2, 3]

    def test_project_keeps_order_prefix(self, left):
        result = ops.project(left, {"iter": "iter", "item": "item"})
        assert result.props.order == ("iter",)

    def test_attach_constant(self, left):
        result = ops.attach(left, "pos", 1)
        assert list(result.col("pos")) == [1, 1, 1]
        assert result.col_props("pos").const

    def test_attach_existing_name_raises(self, left):
        with pytest.raises(SchemaError):
            ops.attach(left, "iter", 0)

    def test_add_column_length_check(self, left):
        with pytest.raises(SchemaError):
            ops.add_column(left, "x", [1])

    def test_number_is_dense(self, left):
        result = ops.number(left, "rank")
        assert list(result.col("rank")) == [1, 2, 3]
        assert result.col_props("rank").dense


class TestSelect:
    def test_select_mask(self, left):
        result = ops.select_mask(left, [True, False, True])
        assert list(result.col("item")) == [10, 30]

    def test_select_eq_positional_on_dense(self, left):
        with capture() as trace:
            result = ops.select_eq(left, "iter", 2)
        assert list(result.col("item")) == [20]
        assert trace.count("select.positional") == 1

    def test_select_eq_scan_when_requested(self, left):
        with capture() as trace:
            result = ops.select_eq(left, "item", 20, use_positional=False)
        assert list(result.col("iter")) == [2]
        assert trace.count("select.scan") == 1

    def test_select_eq_positional_miss(self, left):
        result = ops.select_eq(left, "iter", 99)
        assert result.row_count == 0

    def test_select_in(self, left):
        result = ops.select_in(left, "iter", [1, 3])
        assert list(result.col("item")) == [10, 30]


class TestJoins:
    def test_positional_join_on_dense_key(self, left, right):
        with capture() as trace:
            result = ops.join(left, right, "iter", "key")
        assert list(result.col("val")) == ["a", "b", "c"]
        assert trace.count("join.positional") == 1

    def test_hash_join_when_not_dense(self, left):
        other = Table.from_dict({"k": [20, 30, 30], "tag": ["x", "y", "z"]})
        result = ops.join(left, other, "item", "k", use_positional=False)
        assert sorted(result.col("tag")) == ["x", "y", "z"]

    def test_join_rejects_overlapping_schemas(self, left):
        with pytest.raises(SchemaError):
            ops.join(left, left, "iter", "iter")

    def test_join_preserves_left_order(self, left, right):
        result = ops.join(left, right, "iter", "key", use_positional=False)
        assert list(result.col("iter")) == [1, 2, 3]
        assert result.props.order == ("iter",)

    def test_cross_product_count(self, left, right):
        result = ops.cross(left, right)
        assert result.row_count == left.row_count * right.row_count

    def test_theta_join_lt(self):
        numbers = Table.from_dict({"a": [1, 5]})
        others = Table.from_dict({"b": [2, 6]})
        result = ops.theta_join(numbers, others, "a", "b", "lt",
                                algorithm="nested-loop")
        assert sorted(zip(result.col("a"), result.col("b"))) == [(1, 2), (1, 6), (5, 6)]

    def test_theta_join_index_matches_nested_loop(self):
        numbers = Table.from_dict({"a": list(range(10))})
        others = Table.from_dict({"b": list(range(5, 15))})
        nested = ops.theta_join(numbers, others, "a", "b", "ge",
                                algorithm="nested-loop")
        index = ops.theta_join(numbers, others, "a", "b", "ge", algorithm="index")
        assert sorted(zip(nested.col("a"), nested.col("b"))) == \
            sorted(zip(index.col("a"), index.col("b")))

    def test_theta_join_unknown_comparison(self, left, right):
        with pytest.raises(RelationalError):
            ops.theta_join(left, right, "iter", "key", "like")


class TestSetOperators:
    def test_union_all(self, left):
        result = ops.union_all([left, left])
        assert result.row_count == 6

    def test_union_schema_mismatch(self, left, right):
        with pytest.raises(SchemaError):
            ops.union_all([left, right])

    def test_difference(self):
        a = Table.from_dict({"k": [1, 2, 3]})
        b = Table.from_dict({"k": [2]})
        assert list(ops.difference(a, b, ["k"]).col("k")) == [1, 3]

    def test_distinct_hash(self):
        table = Table.from_dict({"k": [3, 1, 3, 2, 1]})
        with capture() as trace:
            result = ops.distinct(table, ["k"])
        assert list(result.col("k")) == [3, 1, 2]
        assert trace.count("distinct.hash") == 1

    def test_distinct_merge_when_ordered(self):
        table = Table.from_dict({"k": [1, 1, 2, 3, 3]}, order=("k",))
        with capture() as trace:
            result = ops.distinct(table, ["k"])
        assert list(result.col("k")) == [1, 2, 3]
        assert trace.count("distinct.merge") == 1


class TestRownumAndAggregates:
    def test_rownum_streaming_on_ordered_input(self):
        table = Table.from_dict({"g": [1, 1, 2, 2], "v": [1, 2, 1, 2]},
                                order=("g", "v"))
        with capture() as trace:
            result = ops.rownum(table, "rank", ("v",), partition="g")
        assert list(result.col("rank")) == [1, 2, 1, 2]
        assert trace.count("rownum.streaming") == 1

    def test_rownum_sorting_fallback(self):
        table = Table.from_dict({"g": [1, 2, 1, 2], "v": [2, 2, 1, 1]})
        with capture() as trace:
            result = ops.rownum(table, "rank", ("v",), partition="g")
        assert list(result.col("rank")) == [2, 2, 1, 1]
        assert trace.count("rownum.sorting") == 1

    def test_rownum_without_partition(self):
        table = Table.from_dict({"v": [30, 10, 20]})
        result = ops.rownum(table, "rank", ("v",))
        assert list(result.col("rank")) == [3, 1, 2]

    def test_rownum_existing_column_raises(self):
        table = Table.from_dict({"v": [1]})
        with pytest.raises(SchemaError):
            ops.rownum(table, "v", ())

    def test_aggregate_count_sum_avg(self):
        table = Table.from_dict({"g": [1, 1, 2], "v": [10, 20, 5]})
        result = ops.aggregate(table, "g", [("cnt", "count", None),
                                            ("total", "sum", "v"),
                                            ("mean", "avg", "v")])
        assert list(result.col("g")) == [1, 2]
        assert list(result.col("cnt")) == [2, 1]
        assert list(result.col("total")) == [30, 5]
        assert list(result.col("mean")) == [15, 5]

    def test_aggregate_min_max_with_strings(self):
        table = Table.from_dict({"g": [1, 1], "v": ["5", "7"]})
        result = ops.aggregate(table, "g", [("lo", "min", "v"), ("hi", "max", "v")])
        assert list(result.col("lo")) == [5] and list(result.col("hi")) == [7]

    def test_aggregate_global(self):
        table = Table.from_dict({"v": [1, 2, 3]})
        result = ops.aggregate(table, None, [("cnt", "count", None)])
        assert list(result.col("cnt")) == [3]

    def test_aggregate_unknown_kind(self):
        table = Table.from_dict({"g": [1], "v": [1]})
        with pytest.raises(RelationalError):
            ops.aggregate(table, "g", [("x", "median", "v")])


class TestKernels:
    def test_fun_applies_rowwise(self):
        table = Table.from_dict({"a": [1, 2], "b": [10, 20]})
        result = ops.fun(table, "c", lambda a, b: a + b, ["a", "b"])
        assert list(result.col("c")) == [11, 22]

    def test_fun_with_constant_argument(self):
        table = Table.from_dict({"a": [1, 2]})
        result = ops.fun(table, "c", lambda a, k: a * k, ["a", ("const", 10)])
        assert list(result.col("c")) == [10, 20]

    def test_compare_values_numeric_promotion(self):
        assert ops.compare_values("eq", "42", 42)
        assert ops.compare_values("gt", "10.5", 10)
        assert not ops.compare_values("eq", "abc", 42)

    def test_compare_values_strings(self):
        assert ops.compare_values("lt", "apple", "banana")

    def test_arithmetic_kernel(self):
        assert ops.arithmetic("add", "2", 3) == 5
        assert ops.arithmetic("idiv", 7, 2) == 3
        assert ops.arithmetic("mod", 7, 2) == 1
        assert ops.arithmetic("mul", "x", 2) is None
