"""Document containers: the ``pre|size|level`` relational XML encoding.

Following Section 2 and Figure 9 of the paper, every XML document (and the
set of transient fragments a query constructs) lives in its own *document
container*:

* the structural table with columns ``size``, ``level``, ``kind`` (the
  preorder rank ``pre`` is the implicit dense row id),
* property containers per node kind — here flattened into a dictionary-
  encoded ``name`` column (elements) and a ``value`` column (text, comment,
  processing-instruction content),
* a separate attribute table ``owner|name|value`` (attributes are not part
  of the structural table, as in the paper),
* a ``frag`` column keeping disjoint tree fragments apart inside the
  transient container; document order across containers/fragments is the
  ``[container, pre]`` combination.

Node surrogates are :class:`NodeRef` values — the ``γ`` of Section 2.1 —
which order by document order and compare by node identity.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterable, Iterator

from ..errors import DocumentError
from ..relational.column import Column, IntColumn
from ..relational.properties import ColumnProps, TableProps
from ..relational.table import Table
from ..concurrency import ReadWriteLock
from ..storage.backends import Backend, RamBackend
from .names import NamePool, QName


class NodeKind(IntEnum):
    """Node kinds stored in the structural table (plus ATTRIBUTE for refs)."""

    DOCUMENT = 0
    ELEMENT = 1
    TEXT = 2
    COMMENT = 3
    PROCESSING_INSTRUCTION = 4
    ATTRIBUTE = 5


class NodeRef:
    """A node surrogate: container + preorder rank (+ attribute slot).

    ``NodeRef`` reflects document order (``<``) and node identity (``==``),
    the two requirements Section 2.1 places on node surrogates.
    """

    __slots__ = ("container", "pre", "attr")

    def __init__(self, container: "DocumentContainer", pre: int,
                 attr: int | None = None):
        self.container = container
        self.pre = pre
        self.attr = attr

    # -- identity and order ------------------------------------------------ #
    def order_key(self) -> tuple[int, int, int, int]:
        if self.attr is None:
            return (self.container.order_key, self.pre, 0, 0)
        return (self.container.order_key, self.pre, 1, self.attr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeRef):
            return NotImplemented
        return (self.container is other.container and self.pre == other.pre
                and self.attr == other.attr)

    def __hash__(self) -> int:
        return hash((id(self.container), self.pre, self.attr))

    def __lt__(self, other: "NodeRef") -> bool:
        if not isinstance(other, NodeRef):
            return NotImplemented
        return self.order_key() < other.order_key()

    def __le__(self, other: "NodeRef") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.attr is not None:
            return f"NodeRef({self.container.name}, pre={self.pre}, attr={self.attr})"
        return f"NodeRef({self.container.name}, pre={self.pre})"

    # -- convenience accessors --------------------------------------------- #
    @property
    def kind(self) -> NodeKind:
        if self.attr is not None:
            return NodeKind.ATTRIBUTE
        return NodeKind(self.container.kind[self.pre])

    def name(self) -> str | None:
        """Local name of an element or attribute node (None otherwise)."""
        if self.attr is not None:
            name_id = self.container.attr_name[self.attr]
            return self.container.names.local(name_id)
        name_id = self.container.name_id[self.pre]
        if name_id < 0:
            return None
        return self.container.names.local(name_id)

    def string_value(self) -> str:
        """The XPath string value of the node."""
        if self.attr is not None:
            return self.container.attr_value[self.attr]
        return self.container.string_value(self.pre)


class DocumentContainer:
    """One document (or the transient fragment store) in relational encoding.

    The column buffers live on a pluggable :class:`~repro.storage.backends.
    Backend`.  The default :class:`~repro.storage.backends.RamBackend`
    serves appendable ``array('q')`` / ``list`` buffers (shredding appends
    in C, the staircase joins scan without per-value unboxing); a
    read-only :class:`~repro.storage.backends.MmapBackend` serves
    ``memoryview`` / string-heap views over the column files of a
    persisted store — queryable identically, paged in by the OS on demand.
    """

    def __init__(self, name: str, order_key: int, *, transient: bool = False,
                 backend: Backend | None = None):
        self.name = name
        self.order_key = order_key
        self.transient = transient
        self.backend = backend if backend is not None else RamBackend()
        self.names = NamePool()
        # structural table (pre is the implicit dense row id)
        self.size = self.backend.int_column("size")
        self.level = self.backend.int_column("level")
        self.kind = self.backend.int_column("kind")
        self.name_id = self.backend.int_column("name_id")   # -1 for non-elements
        self.value = self.backend.str_column("value")   # text / comment / PI
        self.frag = self.backend.int_column("frag")     # fragment root pre
        # attribute table
        self.attr_owner = self.backend.int_column("attr_owner")
        self.attr_name = self.backend.int_column("attr_name")
        self.attr_value = self.backend.str_column("attr_value")
        # owner -> attribute slots; maintained eagerly while building on a
        # writable backend, built lazily on first use for read-only backends
        # (a reopened store must not scan the attribute table at open time)
        self._attrs_by_owner: dict[int, list[int]] | None = \
            None if self.backend.readonly else {}
        # lazily built element-name index (nametest pushdown candidate lists)
        self._name_index: dict[int, list[int]] | None = None
        # per-tag element counts, maintained eagerly while shredding — the
        # statistics the cost-based optimizer derives cardinalities from
        self._tag_counts: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # construction (used by the shredder and by node constructors)
    # ------------------------------------------------------------------ #
    def add_node(self, kind: NodeKind, level: int, *, name_id: int = -1,
                 value: str | None = None, frag: int | None = None,
                 size: int = 0) -> int:
        """Append a node; returns its preorder rank."""
        if self.backend.readonly:
            raise DocumentError(
                f"container {self.name!r} is backed by a read-only store; "
                "updates go through XMLUpdater / DocumentStore.replace")
        pre = len(self.size)
        self.size.append(size)
        self.level.append(level)
        self.kind.append(int(kind))
        self.name_id.append(name_id)
        self.value.append(value)
        self.frag.append(frag if frag is not None else pre)
        self._name_index = None
        if kind == NodeKind.ELEMENT and name_id >= 0:
            self._tag_counts[name_id] = self._tag_counts.get(name_id, 0) + 1
        return pre

    def set_size(self, pre: int, size: int) -> None:
        self.size[pre] = size

    def add_attribute(self, owner: int, name_id: int, value: str) -> int:
        if self.backend.readonly:
            raise DocumentError(
                f"container {self.name!r} is backed by a read-only store; "
                "updates go through XMLUpdater / DocumentStore.replace")
        index = len(self.attr_owner)
        self.attr_owner.append(owner)
        self.attr_name.append(name_id)
        self.attr_value.append(value)
        self._attrs_by_owner.setdefault(owner, []).append(index)
        return index

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return len(self.size)

    @property
    def attribute_count(self) -> int:
        return len(self.attr_owner)

    def node(self, pre: int) -> NodeRef:
        if pre < 0 or pre >= self.node_count:
            raise DocumentError(f"pre value {pre} out of range for {self.name!r}")
        return NodeRef(self, pre)

    def attribute(self, index: int) -> NodeRef:
        if index < 0 or index >= self.attribute_count:
            raise DocumentError(f"attribute index {index} out of range")
        return NodeRef(self, self.attr_owner[index], attr=index)

    def attributes_of(self, pre: int) -> list[int]:
        """Attribute-table row indexes owned by the element at ``pre``."""
        if self._attrs_by_owner is None:
            self._rebuild_attr_index()
        return self._attrs_by_owner.get(pre, [])

    def _rebuild_attr_index(self) -> None:
        """(Re)build the owner → attribute-slot index from the attribute
        table — used after bulk-loading the columns from a persisted store."""
        index: dict[int, list[int]] = {}
        for slot, owner in enumerate(self.attr_owner):
            index.setdefault(owner, []).append(slot)
        self._attrs_by_owner = index

    def root_pre(self, pre: int) -> int:
        """The root of the fragment containing ``pre`` (frag column)."""
        return self.frag[pre]

    def parent_pre(self, pre: int) -> int | None:
        """The parent of ``pre`` (None for fragment roots).

        With the pre/size/level encoding the parent is the closest preceding
        node with a smaller level.
        """
        target_level = self.level[pre]
        if target_level == 0:
            return None
        candidate = pre - 1
        while candidate >= 0:
            if self.level[candidate] < target_level:
                return candidate
            candidate -= 1
        return None

    def children_pre(self, pre: int) -> Iterator[int]:
        """Iterate the children of ``pre`` using the size-skipping rule.

        ``v1 = pre + 1`` is the first child and ``v_{i+1} = v_i + size(v_i) + 1``
        (Section 2) — exactly the skipping the child staircase join exploits.
        """
        end = pre + self.size[pre]
        child = pre + 1
        while child <= end:
            yield child
            child += self.size[child] + 1

    def descendants_pre(self, pre: int) -> range:
        """Preorder ranks of the descendants of ``pre`` (excluding ``pre``)."""
        return range(pre + 1, pre + self.size[pre] + 1)

    def string_value(self, pre: int) -> str:
        """Concatenation of all descendant-or-self text node contents."""
        kind = self.kind[pre]
        if kind in (NodeKind.TEXT, NodeKind.COMMENT, NodeKind.PROCESSING_INSTRUCTION):
            return self.value[pre] or ""
        pieces = []
        for descendant in self.descendants_pre(pre):
            if self.kind[descendant] == NodeKind.TEXT:
                pieces.append(self.value[descendant] or "")
        return "".join(pieces)

    def element_name(self, pre: int) -> str | None:
        name_id = self.name_id[pre]
        if name_id < 0:
            return None
        return self.names.local(name_id)

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #
    def name_index(self) -> dict[int, list[int]]:
        """``name_id -> sorted pre list`` index over element nodes.

        This is the element-name index of Figure 9 that the nametest
        pushdown variant of the staircase join uses as its candidate list.
        """
        if self._name_index is None:
            index: dict[int, list[int]] = {}
            for pre, (kind, name_id) in enumerate(zip(self.kind, self.name_id)):
                if kind == NodeKind.ELEMENT and name_id >= 0:
                    index.setdefault(name_id, []).append(pre)
            self._name_index = index
        return self._name_index

    def candidates_by_name(self, local: str) -> list[int]:
        """Sorted pre ranks of elements with the given local name."""
        name_id = self.names.lookup(local)
        if name_id is None:
            return []
        return self.name_index().get(name_id, [])

    # ------------------------------------------------------------------ #
    # statistics (cardinality estimation)
    # ------------------------------------------------------------------ #
    def tag_counts(self) -> dict[str, int]:
        """Element counts per local tag name, collected at shred time."""
        return {self.names.local(name_id): count
                for name_id, count in self._tag_counts.items()}

    def tag_count(self, local: str) -> int:
        """Number of elements with the given local name (0 when unknown)."""
        name_id = self.names.lookup(local)
        if name_id is None:
            return 0
        return self._tag_counts.get(name_id, 0)

    @property
    def element_count(self) -> int:
        """Total number of element nodes in this container."""
        return sum(self._tag_counts.values())

    # ------------------------------------------------------------------ #
    # relational views
    # ------------------------------------------------------------------ #
    def _snapshot(self, values: "array | memoryview") -> "array | memoryview":
        """A stable int64 buffer for relational views.

        Writable containers copy (the table must stay a consistent
        materialised intermediate even if the container grows afterwards);
        read-only backends never grow, so their views are adopted without
        copying — a mapped store serves tables out-of-core.
        """
        if self.backend.readonly:
            return values
        return array("q", values)

    def structural_table(self) -> Table:
        """The ``pre|size|level|kind|name|frag`` table as a relational Table.

        ``pre`` is a virtual dense column; the other columns are typed
        ``i64`` snapshots (zero-copy views on a read-only backend).
        """
        pre = Column.dense("pre", self.node_count)
        props = TableProps(order=("pre",))
        columns = [
            pre,
            IntColumn("size", self._snapshot(self.size)),
            IntColumn("level", self._snapshot(self.level)),
            IntColumn("kind", self._snapshot(self.kind)),
            IntColumn("name", self._snapshot(self.name_id)),
            IntColumn("frag", self._snapshot(self.frag)),
        ]
        return Table(columns, props=props)

    def attribute_table(self) -> Table:
        """The attribute property container as a relational Table."""
        columns = [
            IntColumn("owner", self._snapshot(self.attr_owner)),
            IntColumn("name", self._snapshot(self.attr_name)),
            Column("value", self.attr_value),
        ]
        return Table(columns, props=TableProps(order=("owner",)))

    # ------------------------------------------------------------------ #
    # subtree copying (element construction, Section 5.1)
    # ------------------------------------------------------------------ #
    def copy_subtree_from(self, source: "DocumentContainer", source_pre: int,
                          level_offset: int, frag: int) -> int:
        """Paste the encoding of a subtree of ``source`` into this container.

        The structural part is copied verbatim (pre ranks shift, sizes are
        preserved); node properties are copied along.  Returns the pre rank
        the copied subtree root received in this container.
        """
        base_level = source.level[source_pre]
        new_root = len(self.size)
        span = range(source_pre, source_pre + source.size[source_pre] + 1)
        for pre in span:
            name_id = source.name_id[pre]
            new_name_id = -1
            if name_id >= 0:
                qname = source.names.name(name_id)
                new_name_id = self.names.intern(qname.local, qname.namespace)
            new_pre = self.add_node(
                NodeKind(source.kind[pre]),
                source.level[pre] - base_level + level_offset,
                name_id=new_name_id,
                value=source.value[pre],
                frag=frag,
                size=source.size[pre],
            )
            for attr_index in source.attributes_of(pre):
                attr_name = source.names.name(source.attr_name[attr_index])
                self.add_attribute(new_pre,
                                   self.names.intern(attr_name.local, attr_name.namespace),
                                   source.attr_value[attr_index])
        return new_root


@dataclass(frozen=True)
class StoreSnapshot:
    """One atomic observation of the document store.

    Version, document names and container references are captured under a
    single read-lock acquisition, so the three fields always correspond to
    one committed state — a consumer (``ServerStats``, the shared-memory
    publication path) can never mix an old document list with a new
    version.  The containers tuple holds strong references, so the
    snapshot stays fully readable even if documents are dropped or
    replaced afterwards.
    """

    version: int
    names: tuple[str, ...]
    containers: "tuple[DocumentContainer, ...]"
    order_counter: int = 0


class DocumentStore:
    """The "loaded documents" table: all persistent and transient containers.

    The store is **thread-safe**: lookups take a shared (read) lock, and
    every change to the set of loaded documents — load, register, drop,
    :meth:`replace` (update commit) — takes the exclusive (write) lock and
    bumps the monotonically increasing :attr:`version`.  That version is
    the invalidation token of the serving layer: prepared plans and
    cross-query materialized subplan results are cached against it, so a
    cached artifact can never be served across a schema-version boundary.

    Containers themselves follow a snapshot discipline: they are filled
    *before* registration and never mutated afterwards (updates commit by
    atomically replacing the container), so readers that already hold a
    container reference keep a consistent snapshot without locking.
    """

    def __init__(self) -> None:
        self._documents: dict[str, DocumentContainer] = {}
        self._order_counter = 0
        self._version = 0
        self._lock = ReadWriteLock()
        # the on-disk home of the store, once save()/open() bound one;
        # every version bump writes through to it under the write lock
        self._persistence: Any = None

    @property
    def version(self) -> int:
        """Schema version: bumped whenever the set of loaded documents
        changes (load, register, drop, update commit).  Prepared query
        plans and materialized subplan results are cached against this
        number; a persisted store restores it on :meth:`open`, so cached
        artifacts stay correctly keyed across restarts."""
        with self._lock.read_locked():
            return self._version

    # ------------------------------------------------------------------ #
    # persistence (storage.persist)
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Any") -> None:
        """Persist every loaded document under ``path`` and stay bound.

        Publishes the directory-per-store format of
        :mod:`repro.storage.persist` (column files + catalog, atomically).
        After a save the store *writes through*: loads, drops and update
        commits rewrite the changed column files and republish the catalog
        with the bumped store version.
        """
        from ..storage.persist import save_store
        with self._lock.write_locked():
            containers = list(self._documents.values())
            self._persistence = save_store(
                path, containers, store_version=self._version,
                order_counter=self._order_counter)

    @classmethod
    def open(cls, path: "str | Any", *, backend: str = "mmap",
             verify: bool | None = None) -> "DocumentStore":
        """Reopen a persisted store — warm, with no re-parse or re-shred.

        ``backend="mmap"`` serves the documents out-of-core from mapped
        column files; ``backend="ram"`` loads them into ordinary
        ``array('q')`` / ``list`` buffers (the pure-RAM path, byte-identical
        query results).  The persisted schema version, document order keys
        and shred-time tag statistics are restored, and the store stays
        bound to the directory for write-through.

        ``verify`` controls CRC checking of the column payloads and is
        resolved identically for both backends
        (:func:`repro.storage.persist.resolve_verify`): ``None`` — the
        default — means *full CRC verification for* ``ram`` (the load
        pass reads every byte anyway, so checking is nearly free) and
        *structural-only validation for* ``mmap`` (sizes and layout; a
        full checksum would fault in every page and defeat lazy
        mapping).  Pass ``verify=True`` to force full CRC checks on
        either backend, ``verify=False`` to skip them on either.
        """
        from ..storage.persist import StoreDirectory
        persistence = StoreDirectory.load(path)
        store = cls()
        for name in persistence.document_names():
            store._documents[name] = persistence.open_container(
                name, backend=backend, verify=verify)
        store._version = persistence.catalog["store_version"]
        store._order_counter = persistence.catalog["order_counter"]
        store._persistence = persistence
        return store

    @classmethod
    def attach_shared(cls, catalog: dict) -> "DocumentStore":
        """Attach a published shared-memory store by segment names.

        The worker-process mirror of :meth:`open`: ``catalog`` is the
        shared-store catalog the publishing parent built
        (:func:`repro.storage.persist.shared_catalog`); every document's
        segment is attached read-only and zero-copy, the store version,
        order counter and tag statistics are restored, so plan-cache and
        subplan-cache keys in this process agree with the parent's.
        """
        from ..storage.persist import attach_container_shared
        store = cls()
        for name, entry in catalog["documents"].items():
            store._documents[name] = attach_container_shared(name, entry)
        store._version = catalog["store_version"]
        store._order_counter = catalog["order_counter"]
        return store

    def snapshot(self) -> StoreSnapshot:
        """Version + names + containers under one lock acquisition."""
        with self._lock.read_locked():
            return StoreSnapshot(self._version, tuple(self._documents),
                                 tuple(self._documents.values()),
                                 self._order_counter)

    def _write_through(self, container: "DocumentContainer | None" = None, *,
                       removed: str | None = None) -> None:
        """Mirror one catalog change to the bound store directory.

        Caller holds the write lock (writers are serialized).  Only changed
        column files are rewritten; republishing the catalog is the atomic
        commit point, so a crash mid-write leaves the previous catalog —
        and therefore a consistent store — in place.
        """
        if self._persistence is None:
            return
        if removed is not None:
            self._persistence.remove_container(removed)
        if container is not None and not container.transient:
            self._persistence.write_container(container)
        self._persistence.publish_catalog(
            store_version=self._version, order_counter=self._order_counter)

    def close(self) -> None:
        """Release backend resources (mapped column files) of all documents."""
        with self._lock.write_locked():
            for container in self._documents.values():
                container.backend.close()

    def new_container(self, name: str, *, transient: bool = False) -> DocumentContainer:
        with self._lock.write_locked():
            if not transient and name in self._documents:
                raise DocumentError(f"document {name!r} already loaded")
            self._order_counter += 1
            container = DocumentContainer(name, self._order_counter,
                                          transient=transient)
            if not transient:
                self._documents[name] = container
                self._version += 1
                self._write_through(container)
            return container

    def detached_container(self, name: str) -> DocumentContainer:
        """A persistent-to-be container that is *not yet* registered.

        Shredding fills the container first and registers it afterwards
        (:meth:`register`), so concurrent readers never observe a
        half-shredded document.  The name collision is re-checked at
        registration time.
        """
        with self._lock.write_locked():
            if name in self._documents:
                raise DocumentError(f"document {name!r} already loaded")
            self._order_counter += 1
            return DocumentContainer(name, self._order_counter)

    def register(self, container: DocumentContainer) -> None:
        """Register an externally built (already shredded) container."""
        with self._lock.write_locked():
            if container.name in self._documents:
                raise DocumentError(f"document {container.name!r} already loaded")
            self._documents[container.name] = container
            self._version += 1
            self._write_through(container)

    def replace(self, container: DocumentContainer) -> None:
        """Atomically swap a loaded document for an updated container.

        Used by update commits: unlike a ``drop`` + ``register`` pair there
        is no window in which the document is missing, and the schema
        version advances exactly once.  Queries already running keep their
        snapshot of the old container; queries prepared after the swap see
        the new content.
        """
        with self._lock.write_locked():
            if container.name not in self._documents:
                raise DocumentError(f"document {container.name!r} is not loaded")
            self._documents[container.name] = container
            self._version += 1
            self._write_through(container)

    def get(self, name: str) -> DocumentContainer:
        with self._lock.read_locked():
            try:
                return self._documents[name]
            except KeyError:
                raise DocumentError(f"document {name!r} is not loaded") from None

    def drop(self, name: str) -> None:
        with self._lock.write_locked():
            if name not in self._documents:
                raise DocumentError(f"document {name!r} is not loaded")
            del self._documents[name]
            self._version += 1
            self._write_through(removed=name)

    def names(self) -> list[str]:
        with self._lock.read_locked():
            return list(self._documents)

    def __contains__(self, name: str) -> bool:
        with self._lock.read_locked():
            return name in self._documents

    def loaded_documents_table(self) -> Table:
        """The loaded-document table of Figure 9 as a relational Table."""
        with self._lock.read_locked():
            names = list(self._documents)
            containers = [self._documents[name] for name in names]
        columns = [
            Column("doc", names),
            Column("nodes", [container.node_count for container in containers]),
            Column("elements", [container.element_count
                                for container in containers]),
            Column("height", [max(container.level) + 1 if container.level else 0
                              for container in containers]),
        ]
        return Table(columns)

    def tag_statistics_table(self) -> Table:
        """Per-tag element counts across loaded documents (``doc|tag|count``)."""
        docs: list[str] = []
        tags: list[str] = []
        counts: list[int] = []
        with self._lock.read_locked():
            snapshot = dict(self._documents)
        for name, container in snapshot.items():
            for tag, count in sorted(container.tag_counts().items()):
                docs.append(name)
                tags.append(tag)
                counts.append(count)
        return Table([Column("doc", docs), Column("tag", tags),
                      Column("count", counts)])

    def containers(self) -> list[DocumentContainer]:
        """All loaded (persistent) containers."""
        with self._lock.read_locked():
            return list(self._documents.values())
