"""The concurrent query-serving layer.

MonetDB/XQuery's selling point is serving heavy repeated XQuery traffic on
a relational engine; :class:`QueryServer` is that serving layer for this
reproduction.  It turns the (thread-safe, but single-client-oriented)
:class:`~repro.xquery.engine.MonetXQuery` library into a multi-client
system:

* **concurrent clients** — queries are accepted from any thread
  (:meth:`QueryServer.execute`) or dispatched onto the server's worker
  pool (:meth:`QueryServer.submit` / :meth:`QueryServer.run_batch`),
* **shared prepared-plan cache** — all threads prepare through the
  engine's lock-guarded LRU, so a hot query text is parsed/planned/
  optimized once no matter which client sends it,
* **per-execution isolation** — every execution gets a private transient
  container for constructed nodes (immutable :class:`PreparedQuery` plans
  carry no execution state, so they are freely shared),
* **cross-query materialized subplan cache** — loop-invariant
  absolute-path subplans marked by the rewrite optimizer are materialised
  once and reused across queries and threads
  (:class:`~repro.server.subplan_cache.SubplanCache`),
* **serialized writers** — document loads/drops and update commits are
  funnelled through one mutation lock; each bumps the document store's
  schema version, which atomically invalidates both caches (their keys
  embed the version).

**Process-pool mode** (``QueryServer(processes=N)``) breaks the GIL bound
of the thread pool: the shredded document columns are exported once into
``multiprocessing.shared_memory`` segments
(:func:`repro.storage.persist.export_container_shared`) and a pool of
worker processes attaches them read-only by name — one physical copy of
the store, N independent interpreters.  Writers stay serialized in the
parent; every commit bumps the store version exactly as before, and the
next dispatch *republishes*: a fresh segment set for changed documents
plus a new catalog generation are swapped in atomically, readers in
flight keep the generation they were pinned to, and the old generation's
segments are unlinked only once its last reader epoch drains
(:class:`repro.concurrency.EpochTracker`).  Thread mode and process mode
return bit-identical results; process mode marshals them back as
:class:`~repro.server.procworker.RemoteQueryResult` (serialized XML +
stringified items — node surrogates cannot cross a process boundary).

The thread-safety contract: readers never block readers; writers are
serialized among themselves and atomic with respect to readers (a query
sees either the complete old or the complete new document state, never a
mix); every cached artifact is keyed on the schema version it was built
against.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Iterable, Iterator, Sequence

from ..concurrency import EpochTracker
from ..xquery.engine import (EngineOptions, MonetXQuery, PlanCacheStats,
                             PreparedQuery, QueryResult)
from ..xquery.updates import XMLUpdater
from . import procworker
from .procworker import RemoteQueryResult
from .subplan_cache import SubplanCache, SubplanCacheStats


@dataclass
class ServerStats:
    """A point-in-time snapshot of the server's serving state.

    All store-derived fields (``store_version``, ``documents``) come from
    one :meth:`DocumentStore.snapshot
    <repro.xml.document.DocumentStore.snapshot>` — a single lock
    acquisition — and the cache counters are copied under their own
    locks, so a stats call racing an update commit reports one consistent
    committed state, never an old document list next to a new version.
    """

    threads: int
    queries_served: int
    store_version: int
    documents: list[str] = field(default_factory=list)
    plan_cache: PlanCacheStats = field(default_factory=PlanCacheStats)
    subplan_cache: SubplanCacheStats = field(default_factory=SubplanCacheStats)
    subplan_entries: int = 0
    mode: str = "threads"
    processes: int = 0
    generation: int = 0
    live_segments: int = 0

    def render(self) -> str:
        workers = (f"processes={self.processes}" if self.mode == "processes"
                   else f"threads={self.threads}")
        shared = (f" gen={self.generation} segments={self.live_segments}"
                  if self.mode == "processes" else "")
        return (f"{workers} served={self.queries_served} "
                f"version={self.store_version}{shared} "
                f"plans[hit={self.plan_cache.hits} "
                f"miss={self.plan_cache.misses} "
                f"evict={self.plan_cache.evictions} "
                f"compiled={self.plan_cache.compiled} "
                f"fallback={self.plan_cache.codegen_fallbacks}] "
                f"subplans[hit={self.subplan_cache.hits} "
                f"miss={self.subplan_cache.misses} "
                f"entries={self.subplan_entries}]")


class QueryServer:
    """Serve XQuery traffic from concurrent clients over one engine.

        >>> server = QueryServer(threads=4)
        >>> server.load_document_text("<a><b/><b/></a>", name="doc.xml")
        >>> futures = [server.submit("count(//b)") for _ in range(8)]
        >>> [f.result().items for f in futures][0]
        [2]
        >>> server.close()

    The server can also wrap an existing engine (``QueryServer(engine)``),
    attaching a shared :class:`SubplanCache` to it unless it already has
    one.  Use it as a context manager to get deterministic shutdown.

    With ``processes=N`` the server additionally forks a pool of N worker
    processes that attach the document columns out of shared memory and
    execute independently of the parent's GIL; :meth:`submit` and
    :meth:`run_batch` dispatch onto that pool (results come back as
    :class:`RemoteQueryResult`), while :meth:`execute` still runs in the
    calling thread.  ``mp_context`` picks the multiprocessing start
    method (default: ``forkserver`` where available, else ``spawn`` —
    both are safe to combine with the parent's client threads).
    """

    def __init__(self, engine: MonetXQuery | None = None, *,
                 threads: int = 4, processes: int | None = None,
                 mp_context: str | None = None,
                 options: EngineOptions | None = None,
                 store_path: Any = None, store_backend: str = "mmap",
                 store_verify: bool | None = None,
                 plan_cache_size: int = 256, subplan_cache_size: int = 256):
        if engine is None:
            engine = MonetXQuery(options=options, store_path=store_path,
                                 store_backend=store_backend,
                                 store_verify=store_verify,
                                 plan_cache_size=plan_cache_size)
        elif store_path is not None:
            raise ValueError("pass either an engine or a store_path, not both")
        self.engine = engine
        if engine.subplan_cache is None and subplan_cache_size > 0:
            engine.subplan_cache = SubplanCache(subplan_cache_size)
        self.subplan_cache: SubplanCache | None = engine.subplan_cache
        self.threads = threads
        self.processes = processes
        self._pool = ThreadPoolExecutor(max_workers=threads,
                                        thread_name_prefix="repro-serve")
        self._proc_pool: ProcessPoolExecutor | None = None
        if processes is not None:
            if processes <= 0:
                raise ValueError("processes must be a positive worker count")
            start_method = mp_context
            if start_method is None:
                available = multiprocessing.get_all_start_methods()
                start_method = ("forkserver" if "forkserver" in available
                                else "spawn")
            self._proc_pool = ProcessPoolExecutor(
                max_workers=processes,
                mp_context=multiprocessing.get_context(start_method))
        # reentrant: a writer inside an update() block may load/drop too
        self._mutation_lock = threading.RLock()
        self._served = 0
        self._served_lock = threading.Lock()
        # close() must be idempotent and race-free against submit()
        self._lifecycle_lock = threading.Lock()
        self._closed = False
        # shared-memory publication state (process mode), all guarded by
        # the reentrant publish lock: epoch closers may run on a pool
        # done-callback thread or re-enter from retire() on this thread
        self._publish_lock = threading.RLock()
        self._tracker = EpochTracker()
        self._generation = 0
        self._published_version: int | None = None
        self._catalog_blob: bytes | None = None
        # id(container) -> (pinned container, catalog entry)
        self._exported: dict[int, tuple] = {}
        # segment name -> SharedMemory / number of generations referencing it
        self._segments: dict[str, Any] = {}
        self._segment_refs: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # document management (writers, serialized)
    # ------------------------------------------------------------------ #
    def load_document_text(self, text: str, name: str, *,
                           default_context: bool = True) -> None:
        """Shred and publish a document (atomic: readers see it complete)."""
        with self._mutation_lock:
            self.engine.load_document_text(text, name,
                                           default_context=default_context)
            self._reclaim_stale()

    def load_document(self, path: str, name: str | None = None, *,
                      default_context: bool = True) -> None:
        with self._mutation_lock:
            self.engine.load_document(path, name,
                                      default_context=default_context)
            self._reclaim_stale()

    def drop_document(self, name: str) -> None:
        with self._mutation_lock:
            self.engine.drop_document(name)
            self._reclaim_stale()

    @contextmanager
    def update(self, document_name: str, **updater_kwargs: Any
               ) -> Iterator[XMLUpdater]:
        """An update transaction: mutate inside the block, commit on exit.

            >>> with server.update("doc.xml") as updater:          # doctest: +SKIP
            ...     [target] = updater.select("/a/b[1]")
            ...     updater.delete(target)

        The commit swaps the document atomically and bumps the schema
        version, so no query — and no cached plan or materialized subplan —
        can ever observe a half-committed state.  In process mode the
        commit additionally republishes the shared segment set: queries
        dispatched after the commit attach the new generation, in-flight
        queries finish on the one they were pinned to.
        """
        with self._mutation_lock:
            updater = XMLUpdater(self.engine, document_name, **updater_kwargs)
            yield updater
            updater.commit()
            self._reclaim_stale()

    def save_store(self, path: Any) -> None:
        """Persist the loaded documents (serialized with other writers).

        Afterwards the store writes through: every committed change keeps
        the directory current, and a later ``QueryServer(store_path=path)``
        starts warm — no re-parse, no re-shred, caches correctly keyed.
        """
        with self._mutation_lock:
            self.engine.save_store(path)

    def _reclaim_stale(self) -> None:
        """Free cache entries stranded behind the new schema version, and
        (in process mode) republish the shared segment set eagerly so the
        superseded generation can start draining.

        Purely a memory measure: version-embedding keys already guarantee
        stale entries can never be served, and dispatch republishes
        lazily anyway.
        """
        if self.subplan_cache is not None:
            self.subplan_cache.invalidate(self.engine.store.version)
        if self._proc_pool is not None and self._catalog_blob is not None:
            with self._publish_lock:
                snapshot = self.engine.store.snapshot()
                if self._published_version != snapshot.version:
                    self._publish_shared(snapshot)

    # ------------------------------------------------------------------ #
    # shared-memory publication (process mode)
    # ------------------------------------------------------------------ #
    def _publish_shared(self, snapshot) -> None:
        """Export new containers, swap in catalog generation N+1, retire N.

        Caller holds the publish lock.  Containers are immutable after
        registration, so each is exported exactly once and its segment
        reused by every later generation that still contains it; the
        retired generation's closer releases the per-segment references
        and unlinks segments no live generation uses any more — but only
        once the retired epoch's in-flight readers drain.
        """
        from ..storage.persist import export_container_shared, shared_catalog

        documents: dict[str, dict] = {}
        segment_names: set[str] = set()
        for container in snapshot.containers:
            cached = self._exported.get(id(container))
            if cached is None:
                segment, entry = export_container_shared(container)
                self._segments[entry["segment"]] = segment
                self._segment_refs.setdefault(entry["segment"], 0)
                cached = (container, entry)
                self._exported[id(container)] = cached
            documents[container.name] = cached[1]
            segment_names.add(cached[1]["segment"])
        # exports of dropped/replaced containers are forgotten (dropping
        # the pin); their segments live on until referencing epochs drain
        live = {id(container) for container in snapshot.containers}
        for key in [key for key in self._exported if key not in live]:
            del self._exported[key]

        previous = self._generation
        self._generation += 1
        catalog = shared_catalog(
            documents, store_version=snapshot.version,
            order_counter=snapshot.order_counter,
            generation=self._generation,
            default_context=self.engine._default_context)
        for name in segment_names:
            self._segment_refs[name] += 1
        self._tracker.open(self._generation,
                           closer=partial(self._release_segments,
                                          frozenset(segment_names)))
        self._catalog_blob = pickle.dumps(catalog,
                                          protocol=pickle.HIGHEST_PROTOCOL)
        self._published_version = snapshot.version
        if previous:
            self._tracker.retire(previous)

    def _release_segments(self, segment_names: frozenset) -> None:
        """Epoch closer: drop one generation's references, unlink orphans."""
        from ..storage.backends import unlink_segment
        with self._publish_lock:
            for name in segment_names:
                count = self._segment_refs.get(name)
                if count is None:
                    continue
                count -= 1
                if count > 0:
                    self._segment_refs[name] = count
                    continue
                del self._segment_refs[name]
                segment = self._segments.pop(name, None)
                if segment is not None:
                    unlink_segment(segment)

    def _dispatch_catalog(self) -> tuple[bytes, int]:
        """The catalog to pin one dispatch to (publishing if stale).

        Returns ``(pickled catalog, generation)`` with the generation's
        reader epoch already entered — the caller must arrange the
        matching exit when the dispatched future completes.
        """
        with self._publish_lock:
            snapshot = self.engine.store.snapshot()
            if self._catalog_blob is None \
                    or self._published_version != snapshot.version:
                self._publish_shared(snapshot)
            self._tracker.enter(self._generation)
            return self._catalog_blob, self._generation

    # ------------------------------------------------------------------ #
    # serving (readers, concurrent)
    # ------------------------------------------------------------------ #
    def prepare(self, query: str, *,
                options: EngineOptions | None = None) -> PreparedQuery:
        """Prepare through the shared, lock-guarded plan cache."""
        return self.engine.prepare(query, options=options)

    def execute(self, query: str, *, context: str | None = None,
                options: EngineOptions | None = None) -> QueryResult:
        """Prepare (cached) and execute a query in the calling thread."""
        prepared = self.engine.prepare(query, options=options)
        return self.execute_prepared(prepared, context=context)

    def execute_prepared(self, prepared: PreparedQuery, *,
                         context: str | None = None) -> QueryResult:
        """Execute an immutable prepared plan with a private transient
        container (concurrent executions never share constructed-node
        storage)."""
        transient = self.engine.store.new_container("(transient)",
                                                    transient=True)
        result = self.engine._run_prepared(prepared, context=context,
                                           transient=transient)
        with self._served_lock:
            self._served += 1
        return result

    def submit(self, query: str, *, context: str | None = None,
               options: EngineOptions | None = None) -> "Future":
        """Dispatch a query onto the worker pool; returns a future.

        Thread mode resolves to a :class:`QueryResult`; process mode
        pins the dispatch to the current shared-store generation and
        resolves to a :class:`RemoteQueryResult`.
        """
        if self._closed:
            raise RuntimeError("QueryServer is closed")
        if self._proc_pool is None:
            try:
                return self._pool.submit(self.execute, query, context=context,
                                         options=options)
            except RuntimeError:
                # close() won the race between our check and the submit
                raise RuntimeError("QueryServer is closed") from None
        catalog_blob, generation = self._dispatch_catalog()
        try:
            future = self._proc_pool.submit(
                procworker.run_query, catalog_blob, generation, query,
                context, options)
        except RuntimeError:
            self._tracker.exit(generation)
            raise RuntimeError("QueryServer is closed") from None
        future.add_done_callback(partial(self._dispatch_done, generation))
        return future

    def _dispatch_done(self, generation: int, future: "Future") -> None:
        """Done-callback of one process dispatch: release the epoch pin."""
        self._tracker.exit(generation)
        if not future.cancelled() and future.exception() is None:
            with self._served_lock:
                self._served += 1

    def run_batch(self, queries: Iterable[str], *,
                  context: str | None = None) -> list:
        """Run a batch of query texts concurrently; results in input order."""
        futures = [self.submit(query, context=context) for query in queries]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        with self._served_lock:
            served = self._served
        subplan_stats = SubplanCacheStats()
        subplan_entries = 0
        if self.subplan_cache is not None:
            subplan_stats = self.subplan_cache.stats.snapshot()
            subplan_entries = len(self.subplan_cache)
        # one read-lock acquisition: version and document list always
        # describe the same committed state (satellite of the commit
        # protocol — a stats call racing a commit is torn-proof)
        snapshot = self.engine.store.snapshot()
        with self._publish_lock:
            generation = self._generation
            live_segments = len(self._segments)
        return ServerStats(
            threads=self.threads,
            queries_served=served,
            store_version=snapshot.version,
            documents=list(snapshot.names),
            plan_cache=self.engine.plan_cache_stats_snapshot(),
            subplan_cache=subplan_stats,
            subplan_entries=subplan_entries,
            mode="processes" if self._proc_pool is not None else "threads",
            processes=self.processes or 0,
            generation=generation,
            live_segments=live_segments,
        )

    def close(self, *, wait: bool = True) -> None:
        """Shut the worker pools down and reclaim shared segments.

        Idempotent and safe to race against in-flight :meth:`submit`
        calls: the first close wins, concurrent and later submits raise
        ``RuntimeError("QueryServer is closed")``, and futures already
        dispatched complete normally (``wait=True`` blocks on them).
        Shared-memory segments are unlinked after the process pool
        drains, so no segment can leak past a clean close.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._proc_pool is not None:
            self._proc_pool.shutdown(wait=wait, cancel_futures=not wait)
        from ..storage.backends import unlink_segment
        with self._publish_lock:
            # drained epochs have already reclaimed their segments; this
            # sweeps whatever a forced (wait=False) close left behind
            self._tracker.retire_all()
            for segment in self._segments.values():
                unlink_segment(segment)
            self._segments.clear()
            self._segment_refs.clear()
            self._exported.clear()
            self._catalog_blob = None
            self._published_version = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
