"""Differential harness: relational engine vs. tree-walking baseline.

A seeded random generator produces FLWOR / path / predicate / aggregate
queries over small XMark-shaped documents; every query is evaluated by the
relational engine under

* the default configuration,
* every **single-switch** ablation of :class:`EngineOptions`, and
* a seeded random sample of multi-switch combinations,

and cross-checked against the conventional tree-walking interpreter
(:mod:`repro.baselines.interpreter`), which shares the storage layer but
none of the relational execution machinery.  The serialized result
sequences must be identical — the optimizer switches may change *how* a
query runs, never *what* it returns.
"""

from __future__ import annotations

import dataclasses
import random
import re

import pytest

from repro import EngineOptions, MonetXQuery
from repro.baselines.interpreter import run_baseline
from repro.xml.serializer import serialize_sequence

from conftest import SMALL_XML


OPTION_NAMES = [f.name for f in dataclasses.fields(EngineOptions)]

#: generator + sampling seeds are fixed so CI failures are reproducible
GENERATOR_SEED = 20260728
COMBINATION_SEED = 4242
QUERY_COUNT = 14
COMBINATION_COUNT = 6


# --------------------------------------------------------------------------- #
# the random query generator
# --------------------------------------------------------------------------- #
class QueryGenerator:
    """Seeded random queries in the subset both engines implement.

    The vocabulary is tied to the fixture document's shape (tags,
    attributes, value ranges), so generated predicates are selective but
    usually non-empty — empty-result queries are still produced and are
    fine, they must simply agree across engines.
    """

    ABSOLUTE_PATHS = [
        "/site/people/person",
        "/site/open_auctions/open_auction",
        "/site/closed_auctions/closed_auction",
        "/site/regions/europe/item",
        "/site/regions",
        "//person",
        "//item",
        "/site//increase",
        "//price",
    ]
    RELATIVE_PATHS = {
        "/site/people/person": ["name/text()", "@id", "profile/@income",
                                "profile/interest/@category", "name"],
        "/site/open_auctions/open_auction":
            ["@id", "initial/text()", "bidder/increase/text()",
             "current/text()", "itemref/@item"],
        "/site/closed_auctions/closed_auction":
            ["price/text()", "buyer/@person", "itemref/@item"],
        "/site/regions/europe/item": ["@id", "name/text()",
                                      "description//text()"],
        "/site/regions": ["europe/item/name/text()", "europe/item/@id"],
        "//person": ["name/text()", "@id"],
        "//item": ["name/text()", "@id"],
        "/site//increase": ["text()"],
        "//price": ["text()"],
    }

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def query(self) -> str:
        kind = self.rng.choice(["path", "path", "aggregate", "flwor",
                                "flwor", "flwor_where", "flwor_where",
                                "join", "quantified", "order_by"])
        return getattr(self, f"_gen_{kind}")()

    # -- building blocks ------------------------------------------------- #
    def _abs_path(self) -> str:
        return self.rng.choice(self.ABSOLUTE_PATHS)

    def _rel_path(self, base: str) -> str:
        return self.rng.choice(self.RELATIVE_PATHS[base])

    def _predicate(self, base: str) -> str:
        choices = [
            "[1]", "[2]", "[last()]",
            '[@id = "person0"]' if "person" in base else "[1]",
            "[price/text() >= 40]" if "closed" in base else "[name]",
        ]
        return self.rng.choice(choices)

    # -- query templates -------------------------------------------------- #
    def _gen_path(self) -> str:
        base = self._abs_path()
        if self.rng.random() < 0.5:
            return base + self._predicate(base)
        return f"{base}/{self._rel_path(base)}"

    def _gen_aggregate(self) -> str:
        base = self._abs_path()
        function = self.rng.choice(["count", "count", "exists", "empty"])
        if function == "count" and self.rng.random() < 0.4:
            return f"count({base}{self._predicate(base)})"
        return f"{function}({base})"

    def _gen_flwor(self) -> str:
        base = self._abs_path()
        returns = [
            f"$x/{self._rel_path(base)}",
            f"count($x/{self._rel_path(base)})",
            f'<r v="{{$x/{self._rel_path(base)}}}"/>',
            "<r>{ $x }</r>" if self.rng.random() < 0.2 else "$x",
        ]
        return (f"for $x in {base} "
                f"return {self.rng.choice(returns)}")

    def _gen_flwor_where(self) -> str:
        base = self._abs_path()
        conditions = {
            "/site/people/person": [
                '$x/@id = "person0"', '$x/profile/@income >= 40000',
                'empty($x/profile)', 'exists($x/profile/interest)'],
            "/site/open_auctions/open_auction": [
                '$x/initial/text() >= 100', 'count($x/bidder) >= 2',
                'exists($x/reserve)'],
            "/site/closed_auctions/closed_auction": [
                '$x/price/text() >= 40', '$x/buyer/@person = "person0"'],
            "/site/regions/europe/item": [
                'contains($x/name/text(), "gold")', 'exists($x/description)'],
        }
        condition_pool = conditions.get(base)
        if condition_pool is None:
            base = "/site/people/person"
            condition_pool = conditions[base]
        condition = self.rng.choice(condition_pool)
        if self.rng.random() < 0.3:
            condition += " and " + self.rng.choice(condition_pool)
        return (f"for $x in {base} where {condition} "
                f"return $x/{self._rel_path(base)}")

    def _gen_join(self) -> str:
        templates = [
            # Q8 shape: buyer joined to person id
            ("for $p in /site/people/person "
             "let $a := for $t in /site/closed_auctions/closed_auction "
             "where $t/buyer/@person = $p/@id return $t "
             'return <n id="{$p/@id}">{ count($a) }</n>'),
            # item reference join
            ("for $i in /site/regions/europe/item "
             "let $c := for $t in /site/closed_auctions/closed_auction "
             "where $t/itemref/@item = $i/@id return $t "
             "return count($c)"),
            # value join in the where clause directly
            ("for $p in /site/people/person "
             "for $t in /site/closed_auctions/closed_auction "
             'where $t/buyer/@person = $p/@id '
             "return $t/price/text()"),
            # inequality join (existential aggregates path)
            ("for $p in /site/people/person "
             "let $l := for $i in /site/open_auctions/open_auction/initial "
             "where $p/profile/@income > 5 * $i/text() return $i "
             "return count($l)"),
        ]
        return self.rng.choice(templates)

    def _gen_quantified(self) -> str:
        templates = [
            ("for $a in /site/open_auctions/open_auction "
             "where some $b in $a/bidder satisfies $b/increase/text() >= 5 "
             "return $a/@id"),
            ("for $p in /site/people/person "
             "where every $i in $p/profile/interest "
             'satisfies exists($i/@category) '
             "return $p/name/text()"),
            ("count(for $a in /site/closed_auctions/closed_auction "
             "where some $r in $a/itemref satisfies $r/@item = \"item0\" "
             "return $a)"),
        ]
        return self.rng.choice(templates)

    def _gen_order_by(self) -> str:
        base = self.rng.choice(["/site/people/person",
                                "/site/closed_auctions/closed_auction",
                                "/site/regions/europe/item"])
        keys = {
            "/site/people/person": "$x/name/text()",
            "/site/closed_auctions/closed_auction": "$x/price/text()",
            "/site/regions/europe/item": "$x/name/text()",
        }
        direction = self.rng.choice(["ascending", "descending"])
        return (f"for $x in {base} order by {keys[base]} {direction} "
                f"return $x/{self._rel_path(base)}")


def generated_queries() -> list[str]:
    generator = QueryGenerator(GENERATOR_SEED)
    queries: list[str] = []
    seen: set[str] = set()
    while len(queries) < QUERY_COUNT:
        query = generator.query()
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries


# --------------------------------------------------------------------------- #
# the path-chain fuzzer (step-chain fusion differential coverage)
# --------------------------------------------------------------------------- #
CHAIN_SEED = 52601
CHAIN_COUNT = 30
CHAIN_COMBINATION_COUNT = 4


class PathChainFuzzer:
    """Seeded random 2–5-step path chains over the fixture vocabulary.

    Chains mix child (``/``) and descendant (``//``) separators, *named*
    axis steps over the full axis vocabulary (ancestor, following,
    preceding, the sibling axes, self, parent...), element name tests
    (including ``*`` and ``text()``), attribute steps — both terminal and
    *continued* (``@id/ancestor::*``: the attribute node becomes the
    context of a further step), and optional positional / name predicates.
    Positional predicates land on reverse-axis steps too, where
    ``position()`` counts in proximity rather than document order.
    Predicates deliberately appear on *interior* steps as well: a general
    predicate breaks the fusable chain there, so the generated corpus
    exercises fused chains, unfused chains and mixed fused/unfused
    segments of one path.
    """

    TAGS = ["site", "people", "person", "name", "profile", "interest",
            "open_auctions", "open_auction", "bidder", "increase", "initial",
            "current", "reserve", "itemref", "closed_auctions",
            "closed_auction", "buyer", "price", "regions", "europe", "item",
            "description"]
    ATTRIBUTES = ["id", "income", "category", "person", "item"]
    PREDICATES = ["[1]", "[2]", "[last()]", "[name]", "[@id]"]
    POSITIONAL = ["[1]", "[2]", "[last()]"]
    AXES = ["self", "child", "parent", "ancestor", "ancestor-or-self",
            "descendant", "descendant-or-self", "following", "preceding",
            "following-sibling", "preceding-sibling"]
    REVERSE_AXES = {"parent", "ancestor", "ancestor-or-self", "preceding",
                    "preceding-sibling"}
    # the axes XPath defines for attribute context nodes (via the owner)
    ATTRIBUTE_AXES = ["self", "parent", "ancestor", "ancestor-or-self",
                      "following", "preceding"]

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def _name_test(self) -> str:
        roll = self.rng.random()
        if roll < 0.72:
            return self.rng.choice(self.TAGS)
        if roll < 0.88:
            return "*"
        return "text()"

    def _axis_step(self, axis: str) -> str:
        test = "node()" if self.rng.random() < 0.18 else self._name_test()
        step = f"/{axis}::{test}"
        if test != "text()" and self.rng.random() < 0.3:
            predicates = self.POSITIONAL if axis in self.REVERSE_AXES \
                else self.PREDICATES
            step += self.rng.choice(predicates)
        return step

    def chain(self) -> str:
        depth = self.rng.randint(2, 5)
        parts: list[str] = []
        position = 0
        while position < depth:
            is_last = position == depth - 1
            if position > 0 and is_last and self.rng.random() < 0.25:
                parts.append(f"/@{self.rng.choice(self.ATTRIBUTES)}")
                if self.rng.random() < 0.5:
                    # attribute-context continuation: the attribute node
                    # itself is the context of the next step
                    parts.append(self._axis_step(
                        self.rng.choice(self.ATTRIBUTE_AXES)))
                position += 1
                continue
            if position == 0 or self.rng.random() < 0.62:
                separator = "/" if self.rng.random() < 0.55 else "//"
                step = self._name_test()
                if step != "text()" and self.rng.random() < 0.25:
                    step += self.rng.choice(self.PREDICATES)
                parts.append(separator + step)
            else:
                parts.append(self._axis_step(self.rng.choice(self.AXES)))
            position += 1
        query = "".join(parts)
        if self.rng.random() < 0.35:
            return f"count({query})"
        return query


def generated_chain_queries() -> list[str]:
    fuzzer = PathChainFuzzer(CHAIN_SEED)
    queries: list[str] = []
    seen: set[str] = set()
    while len(queries) < CHAIN_COUNT:
        query = fuzzer.chain()
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries


def chain_configurations() -> list[tuple[str, EngineOptions]]:
    """Fusion on/off plus sampled multi-switch combos that flip it."""
    configurations: list[tuple[str, EngineOptions]] = [
        ("default", EngineOptions()),
        ("no-step_fusion", EngineOptions(step_fusion=False)),
    ]
    rng = random.Random(CHAIN_SEED + 1)
    for index in range(CHAIN_COMBINATION_COUNT):
        flipped = set(rng.sample(OPTION_NAMES,
                                 rng.randint(2, len(OPTION_NAMES) - 1)))
        # half the combos keep fusion on against other disabled rewrites,
        # half turn it off together with them
        if index % 2 == 0:
            flipped.discard("step_fusion")
        else:
            flipped.add("step_fusion")
        configurations.append(
            (f"chain-combo-{index}",
             EngineOptions(**{name: False for name in flipped})))
    return configurations


# --------------------------------------------------------------------------- #
# the multi-join fuzzer (worst-case-optimal join differential coverage)
# --------------------------------------------------------------------------- #
JOIN_SEED = 60301
JOIN_COUNT = 16
JOIN_COMBINATION_COUNT = 4
JOIN_COUNT_LONG = 48


class MultiJoinFuzzer:
    """Seeded random multi-``for`` FLWOR value joins (2–4 variables).

    Every variable binds a loop-invariant absolute path (including an
    always-empty one); ``eq`` conjuncts connect all variables into one
    component, so the 3- and 4-way shapes qualify for the WCOJ rewrite.
    Conjunct sides draw from numeric text, string and deliberately *mixed*
    domains (attribute vs. numeric text), and the fixture data carries
    duplicate join values (two closed auctions share a buyer) — exactly the
    per-pair-typing and dedup corners where join strategies historically
    diverged.  An extra random conjunct occasionally closes a cycle
    (triangle shapes).
    """

    SOURCES = [
        ("/site/people/person",
         [("@id", "str"), ("name/text()", "str"),
          ("profile/@income", "num"),
          ("profile/interest/@category", "str")]),
        ("/site/closed_auctions/closed_auction",
         [("buyer/@person", "str"), ("itemref/@item", "str"),
          ("price/text()", "num")]),
        ("/site/open_auctions/open_auction",
         [("@id", "str"), ("itemref/@item", "str"),
          ("initial/text()", "num"), ("current/text()", "num"),
          ("bidder/increase/text()", "num")]),
        ("/site/regions/europe/item",
         [("@id", "str"), ("name/text()", "str")]),
        ("/site/regions/africa/item",           # always-empty input
         [("@id", "str")]),
    ]

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def _attribute(self, source, domain: str | None = None) -> str:
        pool = [attribute for attribute, kind in source[1]
                if domain is None or kind == domain]
        if not pool:
            pool = [attribute for attribute, _ in source[1]]
        return self.rng.choice(pool)

    def _conjunct(self, sources, left: int, right: int) -> str:
        domain = self.rng.choice(["str", "num", None])   # None = mixed
        left_attribute = self._attribute(sources[left], domain)
        right_attribute = self._attribute(sources[right], domain)
        return f"$v{left}/{left_attribute} = $v{right}/{right_attribute}"

    def query(self) -> str:
        count = self.rng.randint(2, 4)
        sources = [self.rng.choice(self.SOURCES) for _ in range(count)]
        clauses = " ".join(f"for $v{index} in {source[0]}"
                           for index, source in enumerate(sources))
        conjuncts = []
        for index in range(1, count):
            conjuncts.append(
                self._conjunct(sources, index, self.rng.randrange(index)))
        if count >= 3 and self.rng.random() < 0.4:
            extra = self.rng.sample(range(count), 2)
            conjuncts.append(self._conjunct(sources, extra[0], extra[1]))
        where = " and ".join(conjuncts)
        last = count - 1
        body = self.rng.choice([
            f"$v0/{self._attribute(sources[0])}",
            f"<j>{{$v{last}/{self._attribute(sources[last])}}}</j>",
        ])
        query = f"{clauses} where {where} return {body}"
        if self.rng.random() < 0.4:
            return f"count({query})"
        return query


def generated_join_queries(count: int = JOIN_COUNT) -> list[str]:
    fuzzer = MultiJoinFuzzer(JOIN_SEED)
    queries: list[str] = []
    seen: set[str] = set()
    while len(queries) < count:
        query = fuzzer.query()
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries


def join_configurations() -> list[tuple[str, EngineOptions]]:
    """wcoj on/off (plus pairwise recognition off) and sampled combos."""
    configurations: list[tuple[str, EngineOptions]] = [
        ("default", EngineOptions()),
        ("no-wcoj", EngineOptions(wcoj=False)),
        ("no-join_recognition", EngineOptions(join_recognition=False)),
    ]
    rng = random.Random(JOIN_SEED + 1)
    for index in range(JOIN_COMBINATION_COUNT):
        flipped = set(rng.sample(OPTION_NAMES,
                                 rng.randint(2, len(OPTION_NAMES) - 1)))
        # half the combos keep wcoj on against other disabled rewrites,
        # half turn it off together with them
        if index % 2 == 0:
            flipped.discard("wcoj")
        else:
            flipped.add("wcoj")
        configurations.append(
            (f"join-combo-{index}",
             EngineOptions(**{name: False for name in flipped})))
    return configurations


def option_configurations() -> list[tuple[str, EngineOptions]]:
    """Default + every single-switch ablation + sampled combinations."""
    configurations: list[tuple[str, EngineOptions]] = [
        ("default", EngineOptions())]
    for name in OPTION_NAMES:
        configurations.append(
            (f"no-{name}", EngineOptions(**{name: False})))
    rng = random.Random(COMBINATION_SEED)
    for index in range(COMBINATION_COUNT):
        flipped = rng.sample(OPTION_NAMES, rng.randint(2, len(OPTION_NAMES)))
        configurations.append(
            (f"combo-{index}", EngineOptions(**{name: False
                                                for name in flipped})))
    configurations.append(
        ("all-off", EngineOptions(**{name: False for name in OPTION_NAMES})))
    return configurations


# --------------------------------------------------------------------------- #
# the cross-check
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def differential_engine() -> MonetXQuery:
    engine = MonetXQuery()
    engine.load_document_text(SMALL_XML, name="auction.xml")
    return engine


@pytest.fixture(scope="module")
def baseline_results(differential_engine) -> dict[str, str]:
    """The oracle: every generated query run once by the interpreter."""
    oracle: dict[str, str] = {}
    for query in generated_queries():
        items = run_baseline(differential_engine.store, query, "auction.xml")
        oracle[query] = serialize_sequence(items)
    return oracle


@pytest.mark.parametrize("config_name,options", option_configurations(),
                         ids=[name for name, _ in option_configurations()])
def test_differential_against_baseline(differential_engine, baseline_results,
                                       config_name, options):
    for query in generated_queries():
        result = differential_engine.query(query, options=options)
        assert result.serialize() == baseline_results[query], (
            f"configuration {config_name!r} diverged from the baseline "
            f"interpreter on:\n{query}")


def test_generator_is_deterministic():
    assert generated_queries() == generated_queries()
    assert len(generated_queries()) == QUERY_COUNT


def test_typed_columns_switch_is_ablated():
    """The vectorization switch must be part of the harness: a single-switch
    ``no-typed_columns`` configuration and membership in the sampled
    multi-switch combinations (OPTION_NAMES is derived from the dataclass
    fields, so this guards against the switch being renamed away)."""
    assert "typed_columns" in OPTION_NAMES
    names = [name for name, _ in option_configurations()]
    assert "no-typed_columns" in names


def test_typed_kernels_bit_identical_to_list_baseline(differential_engine,
                                                      baseline_results):
    """typed_columns=True (the default) and the list-representation baseline
    must serialize identically on every generated query — the typed kernels
    may change *how* results are computed, never their bytes."""
    typed = EngineOptions(typed_columns=True)
    listy = EngineOptions(typed_columns=False)
    for query in generated_queries():
        typed_result = differential_engine.query(query, options=typed)
        list_result = differential_engine.query(query, options=listy)
        assert typed_result.serialize() == list_result.serialize() \
            == baseline_results[query], query


@pytest.fixture(scope="module")
def chain_baseline_results(differential_engine) -> dict[str, str]:
    """The oracle for the path-chain fuzzer corpus."""
    oracle: dict[str, str] = {}
    for query in generated_chain_queries():
        items = run_baseline(differential_engine.store, query, "auction.xml")
        oracle[query] = serialize_sequence(items)
    return oracle


@pytest.mark.parametrize("config_name,options", chain_configurations(),
                         ids=[name for name, _ in chain_configurations()])
def test_path_chains_against_baseline(differential_engine,
                                      chain_baseline_results,
                                      config_name, options):
    for query in generated_chain_queries():
        result = differential_engine.query(query, options=options)
        assert result.serialize() == chain_baseline_results[query], (
            f"configuration {config_name!r} diverged from the baseline "
            f"interpreter on:\n{query}")


def test_chain_fuzzer_is_deterministic():
    assert generated_chain_queries() == generated_chain_queries()
    assert len(generated_chain_queries()) == CHAIN_COUNT


def test_chain_fuzzer_covers_the_chain_shapes():
    queries = "\n".join(generated_chain_queries())
    assert "//" in queries                    # descendant separators
    assert "/@" in queries or "//@" in queries  # attribute final steps
    assert "[last()]" in queries or "[1]" in queries or "[2]" in queries
    assert "count(" in queries
    assert "*" in queries
    # named-axis vocabulary: forward, reverse and sibling window axes
    assert "ancestor" in queries
    assert "following" in queries or "preceding" in queries
    assert "sibling::" in queries
    # a reverse-axis step carrying a proximity-order positional predicate
    assert re.search(
        r"(ancestor-or-self|ancestor|preceding-sibling|preceding|parent)"
        r"::[\w*()-]+\[(1|2|last\(\))\]", queries)
    # an attribute-context continuation: a step *after* an attribute
    assert re.search(r"@\w+/", queries)


def test_step_fusion_switch_is_ablated():
    """``step_fusion`` must be part of the generic harness: OPTION_NAMES is
    derived from the dataclass fields, so the single-switch configuration
    and the sampled combinations pick it up automatically."""
    assert "step_fusion" in OPTION_NAMES
    names = [name for name, _ in option_configurations()]
    assert "no-step_fusion" in names
    chain_names = [name for name, _ in chain_configurations()]
    assert "no-step_fusion" in chain_names


def test_fused_chains_bit_identical_to_per_step_baseline(
        differential_engine, chain_baseline_results):
    """step_fusion=True (the default) and the per-step baseline must
    serialize identically on every fuzzed chain — fusion may change *how*
    a path runs, never its bytes."""
    fused = EngineOptions(step_fusion=True)
    per_step = EngineOptions(step_fusion=False)
    for query in generated_chain_queries():
        fused_result = differential_engine.query(query, options=fused)
        per_step_result = differential_engine.query(query, options=per_step)
        assert fused_result.serialize() == per_step_result.serialize() \
            == chain_baseline_results[query], query


@pytest.fixture(scope="module")
def join_baseline_results(differential_engine) -> dict[str, str]:
    """The oracle for the multi-join fuzzer corpus."""
    oracle: dict[str, str] = {}
    for query in generated_join_queries():
        items = run_baseline(differential_engine.store, query, "auction.xml")
        oracle[query] = serialize_sequence(items)
    return oracle


@pytest.mark.parametrize("config_name,options", join_configurations(),
                         ids=[name for name, _ in join_configurations()])
def test_multi_joins_against_baseline(differential_engine,
                                      join_baseline_results,
                                      config_name, options):
    for query in generated_join_queries():
        result = differential_engine.query(query, options=options)
        assert result.serialize() == join_baseline_results[query], (
            f"configuration {config_name!r} diverged from the baseline "
            f"interpreter on:\n{query}")


def test_join_fuzzer_is_deterministic():
    assert generated_join_queries() == generated_join_queries()
    assert len(generated_join_queries()) == JOIN_COUNT


def test_join_fuzzer_covers_the_join_shapes():
    queries = generated_join_queries()
    text = "\n".join(queries)
    assert any(query.count("for $") >= 3 for query in queries)  # >= 3-way
    assert "africa" in text                    # an always-empty input
    assert "buyer/@person" in text             # duplicates in the data
    assert "price/text()" in text or "initial/text()" in text  # numeric
    assert "count(" in text


def test_join_fuzzer_exercises_wcoj(differential_engine):
    """At least one fuzzed shape must actually take the generic-join path
    (guards the corpus against drifting away from the recognition rule)."""
    from repro.relational import capture
    hits = 0
    for query in generated_join_queries():
        with capture() as trace:
            differential_engine.query(query)
        hits += trace.count("plan.wcoj")
    assert hits > 0


def test_wcoj_switch_is_ablated():
    """``wcoj`` must be part of the generic harness: OPTION_NAMES is derived
    from the dataclass fields, so the single-switch configuration and the
    sampled combinations pick it up automatically."""
    assert "wcoj" in OPTION_NAMES
    names = [name for name, _ in option_configurations()]
    assert "no-wcoj" in names
    join_names = [name for name, _ in join_configurations()]
    assert "no-wcoj" in join_names


def test_wcoj_bit_identical_to_pairwise_baseline(differential_engine,
                                                 join_baseline_results):
    """wcoj=True (the default) and the pairwise join planner must serialize
    identically on every fuzzed join — the generic join may change *how*
    tuples are found, never their bytes or their order."""
    generic = EngineOptions(wcoj=True)
    pairwise = EngineOptions(wcoj=False)
    for query in generated_join_queries():
        generic_result = differential_engine.query(query, options=generic)
        pairwise_result = differential_engine.query(query, options=pairwise)
        assert generic_result.serialize() == pairwise_result.serialize() \
            == join_baseline_results[query], query


@pytest.mark.slow
def test_multi_join_fuzzer_long_mode(differential_engine):
    """Opt-in long mode: a larger corpus under every single-switch ablation
    (run with ``pytest -m slow tests/test_differential.py``)."""
    queries = generated_join_queries(JOIN_COUNT_LONG)
    oracle = {
        query: serialize_sequence(
            run_baseline(differential_engine.store, query, "auction.xml"))
        for query in queries}
    configurations = [("default", EngineOptions())] + [
        (f"no-{name}", EngineOptions(**{name: False}))
        for name in OPTION_NAMES]
    for config_name, options in configurations:
        for query in queries:
            result = differential_engine.query(query, options=options)
            assert result.serialize() == oracle[query], (
                f"configuration {config_name!r} diverged from the baseline "
                f"interpreter on:\n{query}")


def test_codegen_switch_is_ablated():
    """``codegen`` must be part of the generic harness: OPTION_NAMES is
    derived from the dataclass fields, so the single-switch configuration
    and the sampled combinations pick it up automatically."""
    assert "codegen" in OPTION_NAMES
    names = [name for name, _ in option_configurations()]
    assert "no-codegen" in names


def test_codegen_bit_identical_to_interpreter(differential_engine,
                                              baseline_results,
                                              chain_baseline_results,
                                              join_baseline_results):
    """codegen=True (the default) and the pure interpreter must serialize
    identically on all three fuzzed corpora — compiled closures may change
    *how* a plan executes, never its bytes."""
    compiled_options = EngineOptions(codegen=True)
    interpreted_options = EngineOptions(codegen=False)
    oracle = {**baseline_results, **chain_baseline_results,
              **join_baseline_results}
    for query, expected in oracle.items():
        compiled_result = differential_engine.query(
            query, options=compiled_options)
        interpreted_result = differential_engine.query(
            query, options=interpreted_options)
        assert compiled_result.serialize() \
            == interpreted_result.serialize() == expected, query


def test_generator_covers_the_query_families():
    queries = "\n".join(generated_queries())
    assert "for $" in queries
    assert "where" in queries
    assert "count(" in queries
    assert "order by" in queries


def test_differential_with_subplan_cache(differential_engine,
                                         baseline_results):
    """The cross-query materialized subplan cache must be invisible in the
    results: run the whole generated suite twice through one server (the
    second pass is served largely from the cache) and compare each result
    against the oracle."""
    from repro.server import QueryServer

    with QueryServer(threads=2) as server:
        server.load_document_text(SMALL_XML, name="auction.xml")
        for _ in range(2):
            for query in generated_queries():
                result = server.execute(query)
                assert result.serialize() == baseline_results[query], query
        stats = server.stats()
        assert stats.subplan_cache.hits > 0
