"""Lexer and parser unit tests."""

import pytest

from repro.errors import XQuerySyntaxError, XQueryUnsupportedError
from repro.staircase.axes import Axis
from repro.xquery import ast
from repro.xquery.lexer import Lexer
from repro.xquery.parser import parse, parse_expression


class TestLexer:
    def tokens(self, text):
        lexer = Lexer(text)
        result = []
        while True:
            token = lexer.next_token()
            if token.kind == "eof":
                return result
            result.append((token.kind, token.value))

    def test_names_numbers_strings(self):
        assert self.tokens('foo 42 3.14 "bar"') == [
            ("name", "foo"), ("number", 42), ("number", 3.14), ("string", "bar")]

    def test_variable_tokens(self):
        assert self.tokens("$x + $long-name") == [
            ("variable", "x"), ("symbol", "+"), ("variable", "long-name")]

    def test_prefixed_names_are_single_tokens(self):
        assert self.tokens("fn:count local:convert") == [
            ("name", "fn:count"), ("name", "local:convert")]

    def test_axis_separator_not_merged(self):
        assert ("symbol", "::") in self.tokens("child::item")

    def test_multi_char_symbols(self):
        kinds = [value for _, value in self.tokens("// :: := <= >= !=")]
        assert kinds == ["//", "::", ":=", "<=", ">=", "!="]

    def test_comments_are_skipped(self):
        assert self.tokens("1 (: a (: nested :) comment :) 2") == [
            ("number", 1), ("number", 2)]

    def test_string_escape_doubled_quote(self):
        assert self.tokens('"say ""hi"""') == [("string", 'say "hi"')]

    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            self.tokens('"oops')


class TestParserShapes:
    def test_flwor_structure(self):
        module = parse("for $x in (1,2) let $y := $x + 1 where $y > 1 "
                       "order by $y descending return $y")
        flwor = module.body
        assert isinstance(flwor, ast.FLWORExpr)
        assert isinstance(flwor.clauses[0], ast.ForClause)
        assert isinstance(flwor.clauses[1], ast.LetClause)
        assert flwor.where is not None
        assert flwor.order_by[0].descending

    def test_for_with_positional_variable(self):
        flwor = parse("for $x at $i in (5,6) return $i").body
        assert flwor.clauses[0].position_variable == "i"

    def test_path_with_axes_and_predicates(self):
        path = parse('$a/b//c[@id = "x"]/ancestor::d/@e').body
        assert isinstance(path, ast.PathExpr)
        axes = [step.axis for step in path.steps]
        assert Axis.DESCENDANT_OR_SELF in axes
        assert Axis.ANCESTOR in axes
        assert axes[-1] is Axis.ATTRIBUTE

    def test_absolute_path(self):
        path = parse("/site/people").body
        assert path.absolute and len(path.steps) == 2

    def test_kind_tests(self):
        path = parse("$a/text()").body
        assert path.steps[0].node_test.kind == "text"

    def test_general_vs_value_comparison(self):
        assert isinstance(parse("$a = $b").body, ast.GeneralComparison)
        assert isinstance(parse("$a eq $b").body, ast.ValueComparison)

    def test_arithmetic_precedence(self):
        expression = parse("1 + 2 * 3").body
        assert isinstance(expression, ast.ArithmeticExpr)
        assert expression.op == "add"
        assert isinstance(expression.right, ast.ArithmeticExpr)

    def test_quantified_expression(self):
        expression = parse("some $x in (1,2) satisfies $x = 2").body
        assert isinstance(expression, ast.QuantifiedExpr)
        assert expression.quantifier == "some"

    def test_if_expression(self):
        expression = parse('if ($x) then 1 else 2').body
        assert isinstance(expression, ast.IfExpr)

    def test_function_declaration(self):
        module = parse("declare function local:f($a) { $a + 1 }; local:f(1)")
        assert "local:f" in module.functions
        assert module.functions["local:f"].parameters == ["a"]

    def test_variable_declaration(self):
        module = parse('declare variable $base := 10; $base + 1')
        assert module.variables[0].name == "base"

    def test_constructor_with_attribute_template(self):
        element = parse('<item id="{$x}" lang="en">{ $y }</item>').body
        assert isinstance(element, ast.ElementConstructor)
        assert element.attributes[0][0] == "id"
        parts = element.attributes[0][1].parts
        assert isinstance(parts[0], ast.Expr)
        assert element.attributes[1][1].parts == ["en"]

    def test_nested_constructors(self):
        element = parse("<a><b>{1}</b><c/></a>").body
        kinds = [type(part).__name__ for part in element.content]
        assert kinds == ["ElementConstructor", "ElementConstructor"]

    def test_sequence_expression(self):
        expression = parse("(1, 2, 3)").body
        assert isinstance(expression, ast.SequenceExpr)
        assert len(expression.items) == 3

    def test_empty_sequence(self):
        assert isinstance(parse("()").body, ast.EmptySequence)

    def test_filter_on_parenthesized_sequence(self):
        expression = parse("(1, 2, 3)[2]").body
        assert isinstance(expression, ast.FilterExpr)


class TestParserErrors:
    def test_trailing_garbage(self):
        with pytest.raises(XQuerySyntaxError):
            parse("1 2 3 oops(")

    def test_missing_return(self):
        with pytest.raises(XQuerySyntaxError):
            parse("for $x in (1,2) $x")

    def test_unclosed_constructor(self):
        with pytest.raises(XQuerySyntaxError):
            parse("<a><b></a>")

    def test_unsupported_computed_constructor(self):
        from repro.errors import XQueryError
        with pytest.raises(XQueryError):
            parse('element {"a"} { 1 }')

    def test_unknown_prolog_declaration(self):
        with pytest.raises(XQueryUnsupportedError):
            parse("declare construction strip; 1")


class TestFreeVariables:
    def test_flwor_binds_its_variables(self):
        expression = parse("for $x in $src where $x = $y return $x").body
        assert expression.free_variables() == {"src", "y"}

    def test_quantifier_binds_variable(self):
        expression = parse("some $v in $seq satisfies $v = $limit").body
        assert expression.free_variables() == {"seq", "limit"}

    def test_constructor_content(self):
        expression = parse('<a b="{$x}">{$y}</a>').body
        assert expression.free_variables() == {"x", "y"}
