"""Abstract syntax tree of the supported XQuery subset.

The node classes are plain dataclasses; the same AST is consumed by both the
relational loop-lifting compiler (:mod:`repro.xquery.compiler`) and the
conventional tree-walking baseline (:mod:`repro.baselines.interpreter`), so
the two engines are guaranteed to agree on what a query *means*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..staircase.axes import Axis


class Expr:
    """Base class of all expression nodes."""

    def free_variables(self) -> set[str]:
        """Names of the variables the expression references (without ``$``)."""
        names: set[str] = set()
        _collect_free_variables(self, names, bound=set())
        return names


# --------------------------------------------------------------------------- #
# literals, variables, sequences
# --------------------------------------------------------------------------- #
@dataclass
class Literal(Expr):
    value: Any              # int, float, str, bool


@dataclass
class EmptySequence(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ContextItem(Expr):
    """The context item expression ``.``."""


@dataclass
class SequenceExpr(Expr):
    items: list[Expr]


@dataclass
class RangeExpr(Expr):
    start: Expr
    end: Expr


# --------------------------------------------------------------------------- #
# FLWOR
# --------------------------------------------------------------------------- #
@dataclass
class ForClause(Expr):
    variable: str
    sequence: Expr
    position_variable: str | None = None


@dataclass
class LetClause(Expr):
    variable: str
    value: Expr


@dataclass
class OrderSpec(Expr):
    key: Expr
    descending: bool = False
    empty_greatest: bool = False


@dataclass
class FLWORExpr(Expr):
    clauses: list[Expr]                     # ForClause | LetClause, in order
    where: Expr | None
    order_by: list[OrderSpec]
    return_expr: Expr


@dataclass
class QuantifiedExpr(Expr):
    quantifier: str                         # "some" | "every"
    bindings: list[tuple[str, Expr]]
    satisfies: Expr


# --------------------------------------------------------------------------- #
# control, logic, comparisons, arithmetic
# --------------------------------------------------------------------------- #
@dataclass
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass
class AndExpr(Expr):
    operands: list[Expr]


@dataclass
class OrExpr(Expr):
    operands: list[Expr]


@dataclass
class GeneralComparison(Expr):
    """Existential comparison: ``=  !=  <  <=  >  >=``."""

    op: str                                 # "eq" "ne" "lt" "le" "gt" "ge"
    left: Expr
    right: Expr


@dataclass
class ValueComparison(Expr):
    """Singleton comparison: ``eq ne lt le gt ge``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class ArithmeticExpr(Expr):
    op: str                                 # "add" "sub" "mul" "div" "idiv" "mod"
    left: Expr
    right: Expr


@dataclass
class UnaryExpr(Expr):
    negate: bool
    operand: Expr


# --------------------------------------------------------------------------- #
# paths
# --------------------------------------------------------------------------- #
@dataclass
class NodeTestExpr(Expr):
    kind: str = "element"                   # element | text | comment | node | ...
    name: str | None = None                 # local name, "*" or None


@dataclass
class AxisStep(Expr):
    axis: Axis
    node_test: NodeTestExpr
    predicates: list[Expr] = field(default_factory=list)


@dataclass
class PathExpr(Expr):
    """``start/step1/step2...``; ``start=None`` means the query context item
    (an absolute path ``/...``)."""

    start: Expr | None
    steps: list[Expr]                       # AxisStep | FilterStep
    absolute: bool = False


@dataclass
class FilterStep(Expr):
    """A primary expression used as a path step (with optional predicates)."""

    expression: Expr
    predicates: list[Expr] = field(default_factory=list)


@dataclass
class FilterExpr(Expr):
    """``primary[predicate]...`` outside a path."""

    base: Expr
    predicates: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# functions
# --------------------------------------------------------------------------- #
@dataclass
class FunctionCall(Expr):
    name: str
    arguments: list[Expr]


@dataclass
class FunctionDecl:
    name: str
    parameters: list[str]
    body: Expr


@dataclass
class VariableDecl:
    name: str
    value: Expr


# --------------------------------------------------------------------------- #
# constructors
# --------------------------------------------------------------------------- #
@dataclass
class AttributeValue(Expr):
    """An attribute value template: literal text mixed with enclosed exprs."""

    parts: list[Any]                        # str | Expr


@dataclass
class ElementConstructor(Expr):
    name: str
    attributes: list[tuple[str, AttributeValue]]
    content: list[Any]                      # str | Expr (enclosed expressions)


@dataclass
class TextConstructor(Expr):
    content: Expr


@dataclass
class Module:
    """A parsed query: prolog declarations plus the body expression."""

    functions: dict[str, FunctionDecl]
    variables: list[VariableDecl]
    body: Expr


# --------------------------------------------------------------------------- #
# free-variable analysis (used by join recognition / independence detection)
# --------------------------------------------------------------------------- #
def _collect_free_variables(node: Any, names: set[str], bound: set[str]) -> None:
    if isinstance(node, VarRef):
        if node.name not in bound:
            names.add(node.name)
        return
    if isinstance(node, FLWORExpr):
        inner_bound = set(bound)
        for clause in node.clauses:
            if isinstance(clause, ForClause):
                _collect_free_variables(clause.sequence, names, inner_bound)
                inner_bound.add(clause.variable)
                if clause.position_variable:
                    inner_bound.add(clause.position_variable)
            elif isinstance(clause, LetClause):
                _collect_free_variables(clause.value, names, inner_bound)
                inner_bound.add(clause.variable)
        if node.where is not None:
            _collect_free_variables(node.where, names, inner_bound)
        for spec in node.order_by:
            _collect_free_variables(spec.key, names, inner_bound)
        _collect_free_variables(node.return_expr, names, inner_bound)
        return
    if isinstance(node, QuantifiedExpr):
        inner_bound = set(bound)
        for variable, sequence in node.bindings:
            _collect_free_variables(sequence, names, inner_bound)
            inner_bound.add(variable)
        _collect_free_variables(node.satisfies, names, inner_bound)
        return
    if isinstance(node, (list, tuple)):
        for child in node:
            _collect_free_variables(child, names, bound)
        return
    if isinstance(node, Expr) or isinstance(node, (OrderSpec, AttributeValue)):
        for value in vars(node).values():
            _collect_free_variables(value, names, bound)
        return
    # plain values (str, int, Axis, ...) carry no variables
