"""Tables: named collections of equally long columns.

A :class:`Table` is the materialised intermediate result of the
column-at-a-time engine.  Besides the columns it carries the table-level
ordering properties (``ord``, ``grpord``) that the peephole optimization of
Section 4.1 uses to avoid sorts.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .column import Column
from .properties import ColumnProps, GroupOrder, TableProps


class Table:
    """A named-column table with property tracking.

    The table owns its columns; operators never mutate an input table's
    columns (they build new ones), which keeps shared intermediates safe for
    re-use — exactly the behaviour of MonetDB's read-only materialised
    intermediate results the paper relies on for positional algorithms.
    """

    __slots__ = ("columns", "props")

    def __init__(self, columns: Sequence[Column] | None = None, *,
                 props: TableProps | None = None):
        self.columns: dict[str, Column] = {}
        if columns:
            for column in columns:
                if column.name in self.columns:
                    raise SchemaError(f"duplicate column name {column.name!r}")
                self.columns[column.name] = column
            lengths = {len(column) for column in self.columns.values()}
            if len(lengths) > 1:
                raise SchemaError(
                    f"columns have differing lengths: "
                    + ", ".join(f"{c.name}={len(c)}" for c in self.columns.values()))
        self.props = props if props is not None else TableProps()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any]], *,
                  infer_props: bool = False,
                  order: Sequence[str] = ()) -> "Table":
        """Build a table from ``{column_name: values}`` (test-friendly)."""
        columns = [Column(name, values, infer=infer_props)
                   for name, values in data.items()]
        props = TableProps(order=tuple(order))
        return cls(columns, props=props)

    @classmethod
    def empty(cls, names: Sequence[str]) -> "Table":
        """An empty table with the given column names."""
        return cls([Column(name, []) for name in names])

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    @property
    def row_count(self) -> int:
        for column in self.columns.values():
            return len(column)
        return 0

    def __len__(self) -> int:
        return self.row_count

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; table has {list(self.columns)}") from None

    def col(self, name: str) -> Sequence[Any]:
        """Shorthand for the raw value sequence of a column.

        The representation depends on the column: a plain ``list`` for
        polymorphic columns, ``array('q')`` for typed integer columns, a
        virtual ``range`` for dense columns.  All support ``len``,
        indexing, slicing and iteration uniformly.
        """
        return self.column(name).values

    def rows(self, names: Sequence[str] | None = None) -> Iterator[tuple[Any, ...]]:
        """Iterate tuples over the given columns (all columns by default)."""
        names = list(names) if names is not None else list(self.columns)
        cols = [self.col(name) for name in names]
        return zip(*cols) if cols else iter(())

    def to_rows(self, names: Sequence[str] | None = None) -> list[tuple[Any, ...]]:
        return list(self.rows(names))

    def to_dict(self) -> dict[str, list[Any]]:
        return {name: list(column.values) for name, column in self.columns.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Table(cols={list(self.columns)}, rows={self.row_count}, "
                f"props={self.props.describe()})")

    # ------------------------------------------------------------------ #
    # property helpers
    # ------------------------------------------------------------------ #
    def col_props(self, name: str) -> ColumnProps:
        return self.column(name).props

    def set_order(self, *columns: str) -> "Table":
        """Declare the lexicographic ordering of this table (in place)."""
        for name in columns:
            self.column(name)
        self.props.order = tuple(columns)
        return self

    def add_group_order(self, columns: Sequence[str], group: str) -> "Table":
        """Declare a ``grpord`` property (in place)."""
        self.props.group_orders = self.props.group_orders + (
            GroupOrder(tuple(columns), group),)
        return self

    def ordered_on(self, *columns: str) -> bool:
        return self.props.ordered_on(columns)

    # ------------------------------------------------------------------ #
    # structural helpers used by the operators
    # ------------------------------------------------------------------ #
    def with_columns(self, columns: Iterable[Column], *,
                     props: TableProps | None = None) -> "Table":
        """Return a new table consisting of the given columns."""
        return Table(list(columns), props=props)

    def take(self, positions: Sequence[int], *,
             keep_order: bool = False) -> "Table":
        """Row selection by position, applied to every column.

        ``keep_order=True`` asserts that ``positions`` is monotonically
        increasing, in which case the table ordering properties survive.
        """
        new_columns = [column.take(positions) for column in self.columns.values()]
        props = TableProps()
        if keep_order:
            props.order = tuple(self.props.order)
            props.group_orders = tuple(self.props.group_orders)
        return Table(new_columns, props=props)

    def head(self, count: int) -> "Table":
        """The first ``count`` rows (ordering preserved)."""
        return self.take(range(min(count, self.row_count)), keep_order=True)

    def describe(self) -> str:
        """Human readable schema + properties summary (for ``explain``)."""
        pieces = []
        for name, column in self.columns.items():
            pieces.append(f"{name}:{column.rep}[{column.props.describe()}]")
        return f"({', '.join(pieces)}) rows={self.row_count} {self.props.describe()}"
