"""The cross-query materialized subplan cache.

The rewrite optimizer marks *loop-invariant absolute-path* subplans
(``/site/people/person`` and every prefix of it) with a builder-independent
structural fingerprint (:func:`repro.relational.plan.structural_fingerprint`).
This cache stores their materialised ``item`` sequences **across queries and
threads**: two different queries that both navigate ``/site/people/person``
share one materialisation, turning the plan cache into a materialized-view
layer for hot XMark traffic — the free-connex structural-indexing view of a
cached path result as a reusable index structure.

Staleness is impossible by construction rather than by invalidation
callbacks: every key embeds the :attr:`DocumentStore.version
<repro.xml.document.DocumentStore.version>` schema version current at
execution time, so after any load/drop/update-commit the very same subplan
computes a *different* key and misses.  :meth:`SubplanCache.invalidate` only
reclaims the memory of entries stranded behind a version boundary; it is
never needed for correctness.

Entries pin their source :class:`DocumentContainer` (a strong reference),
which guarantees the ``id(container)`` component of the key cannot be
recycled by the allocator while the entry lives, and that the cached
:class:`NodeRef` items always point into live storage.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Sequence


@dataclass
class SubplanCacheStats:
    """Hit/miss/eviction/invalidation counters (mutated under the cache lock)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def clear(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0

    def snapshot(self) -> "SubplanCacheStats":
        """An independent copy (for reporting from another thread)."""
        return SubplanCacheStats(self.hits, self.misses,
                                 self.evictions, self.invalidations)


class SubplanCache:
    """A thread-safe LRU of materialised subplan results.

    Keys are built through :meth:`make_key` —
    ``(fingerprint, store version, container identity, context root)`` —
    and values are immutable item tuples, so concurrent readers can share
    them without copying.  All operations are guarded by one lock; the
    executor computes misses *outside* the lock, so two threads may race
    to materialize the same subplan — the first insert wins and later ones
    adopt the already-cached tuple (stable identity, identical content).
    """

    #: index of the schema-version component inside keys from make_key()
    _VERSION_SLOT = 1

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.stats = SubplanCacheStats()
        self._lock = threading.Lock()
        # key -> (items, pinned container)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    @staticmethod
    def make_key(fingerprint: str, version: int, container: Any,
                 root_pre: int) -> tuple:
        """The cache key of one (subplan, document state, context root)."""
        return (fingerprint, version, id(container), root_pre)

    def lookup(self, key: tuple) -> tuple | None:
        """The cached item tuple, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def insert(self, key: tuple, items: Sequence[Any], *,
               pin: Any = None) -> tuple:
        """Store a materialised result; returns the canonical item tuple.

        ``pin`` keeps the source document container alive for the lifetime
        of the entry.  If another thread inserted the same key first, its
        tuple is returned instead so all consumers share one object.
        """
        materialized = tuple(items)
        if self.capacity <= 0:
            return materialized
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing[0]
            self._entries[key] = (materialized, pin)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return materialized

    def invalidate(self, current_version: int | None = None) -> int:
        """Reclaim entries stranded behind a schema-version boundary.

        Keys embed their version, so stale entries can never be *served*;
        this only frees their memory.  With ``current_version`` the entries
        of other versions are dropped; with ``None`` everything is.
        Returns the number of entries removed.
        """
        with self._lock:
            if current_version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [key for key in self._entries
                         if key[self._VERSION_SLOT] != current_version]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.stats.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[tuple]:
        """A snapshot of the current keys (diagnostics/tests)."""
        with self._lock:
            return list(self._entries)
