"""Serialization: ``pre|size|level`` encoded subtrees back to XML text.

Because the encoding stores nodes in document order, serialization is a
single sequential scan over the subtree's pre range; close tags are emitted
whenever the level drops — the linear behaviour the paper measures in its
shredding/serialization experiment.
"""

from __future__ import annotations

from typing import Any

from .document import DocumentContainer, NodeKind, NodeRef
from .parser import escape_attribute, escape_text


def serialize_subtree(container: DocumentContainer, pre: int, *,
                      indent: bool = False) -> str:
    """Serialize the subtree rooted at ``pre`` to XML text."""
    pieces: list[str] = []
    open_elements: list[tuple[int, str]] = []   # (level, name)

    first = pre
    last = pre + container.size[pre]
    for current in range(first, last + 1):
        level = container.level[current]
        # close elements whose subtree has ended
        while open_elements and open_elements[-1][0] >= level:
            _, name = open_elements.pop()
            pieces.append(f"</{name}>")
        kind = container.kind[current]
        if kind == NodeKind.DOCUMENT:
            continue
        if kind == NodeKind.ELEMENT:
            name = container.element_name(current) or ""
            attrs = []
            for attr_index in container.attributes_of(current):
                attr_name = container.names.local(container.attr_name[attr_index])
                attr_value = escape_attribute(container.attr_value[attr_index])
                attrs.append(f' {attr_name}="{attr_value}"')
            if container.size[current] == 0:
                pieces.append(f"<{name}{''.join(attrs)}/>")
            else:
                pieces.append(f"<{name}{''.join(attrs)}>")
                open_elements.append((level, name))
        elif kind == NodeKind.TEXT:
            pieces.append(escape_text(container.value[current] or ""))
        elif kind == NodeKind.COMMENT:
            pieces.append(f"<!--{container.value[current] or ''}-->")
        elif kind == NodeKind.PROCESSING_INSTRUCTION:
            pieces.append(f"<?{container.value[current] or ''}?>")
    while open_elements:
        _, name = open_elements.pop()
        pieces.append(f"</{name}>")
    return "".join(pieces)


def serialize_node(node: NodeRef) -> str:
    """Serialize a single node (tree node, attribute, or document node)."""
    if node.attr is not None:
        name = node.name() or ""
        value = escape_attribute(node.string_value())
        return f'{name}="{value}"'
    return serialize_subtree(node.container, node.pre)


def serialize_item(item: Any) -> str:
    """Serialize one XQuery item: nodes as XML, atomics via string conversion."""
    if isinstance(item, NodeRef):
        return serialize_node(item)
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        if item == int(item):
            return str(int(item))
        return repr(item)
    return str(item)


def serialize_sequence(items: list[Any], *, separator: str = " ") -> str:
    """Serialize an item sequence.

    Adjacent atomic values are separated by ``separator`` (a space, as in the
    W3C serialization rules); nodes are serialized as XML without separators
    around them.
    """
    pieces: list[str] = []
    previous_atomic = False
    for item in items:
        is_atomic = not isinstance(item, NodeRef)
        if previous_atomic and is_atomic:
            pieces.append(separator)
        pieces.append(serialize_item(item))
        previous_atomic = is_atomic
    return "".join(pieces)
