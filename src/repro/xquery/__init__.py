"""Pathfinder-style XQuery front-end: parser, loop-lifting compiler, engine."""

from .ast import Module
from .compiler import LoopLiftingCompiler
from .engine import EngineOptions, MonetXQuery, QueryResult
from .parser import parse, parse_expression
from .updates import XMLUpdater

__all__ = [
    "EngineOptions",
    "LoopLiftingCompiler",
    "Module",
    "MonetXQuery",
    "QueryResult",
    "XMLUpdater",
    "parse",
    "parse_expression",
]
