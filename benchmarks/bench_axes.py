"""Window-arithmetic axes vs. the per-iteration fallback — DBLP workloads.

A DBLP-style bibliography is the natural stress test for the horizontal
axes: one flat ``<dblp>`` element with thousands of record children, each
record a short sibling run (authors, title, pages, year, ee).  Four
workloads exercise the window kernels where the per-iteration fallback
(``loop_lifted_other=False``: one plain staircase join per binding) pays
one document scan per context node:

* **sibling titles** — ``following-sibling::title`` from every author:
  the loop-lifted kernel groups all authors of a record to one
  representative and walks each sibling run once,
* **following scan** — ``count(following::note)`` from every author: the
  window kernel bisects the (singleton) candidate list per iteration,
  the fallback scans from each author to the end of the document,
* **preceding-sibling first** — ``preceding-sibling::author[1]`` from
  every title, a reverse axis with a proximity-order positional
  predicate,
* **ancestor count** — ``count(ancestor::*)`` from every year element,
  the stack-scan kernel vs. one staircase join per binding.

Vectorized and fallback results are asserted bit-identical before any
timing, and the explain trace must show the vectorized run never takes
the per-iteration (``step.iterative``) path.  The acceptance floor of the
axis work is the *mix*: total fallback time over total vectorized time
across the four workloads must be >= 5x.  Results land in
``benchmarks/results/BENCH_bench_axes.json``.
"""

from __future__ import annotations

import random
import time

from repro import EngineOptions, MonetXQuery
from repro.relational.explain import capture

from .conftest import BASE_SCALE, SEED, write_bench_json

#: the horizontal-axis gap needs enough records that per-query fixed costs
#: do not drown the scan difference — keep a floor under the smoke scale
SCALE = max(BASE_SCALE, 0.002)
#: records per unit scale: SCALE=0.002 gives a ~360-record bibliography
RECORDS_PER_SCALE = 180_000
REPEATS = 5

MIX_FLOOR = 5.0

_RESULTS: dict[str, dict] = {}
_ENGINE: MonetXQuery | None = None


def generate_dblp(scale: float, seed: int) -> str:
    """A deterministic flat DBLP-style bibliography.

    Record shape follows dblp.xml: ``article`` / ``inproceedings``
    children of one flat root, each holding 1-4 ``author`` elements, a
    ``title``, ``pages``, ``year`` and an optional ``ee`` — wide sibling
    runs under a single parent, the exact opposite of XMark's deep trees.
    A single trailing ``note`` keeps ``following::note`` result sizes
    linear in the number of authors.
    """
    rng = random.Random(seed)
    records = max(60, int(RECORDS_PER_SCALE * scale))
    parts = ["<dblp>"]
    for index in range(records):
        kind = "article" if rng.random() < 0.7 else "inproceedings"
        parts.append(f'<{kind} key="ref/{index}">')
        for _ in range(rng.randint(1, 4)):
            parts.append(f"<author>Author {rng.randrange(records)}</author>")
        parts.append(f"<title>Paper {index}</title>")
        parts.append(f"<pages>{index}-{index + 9}</pages>")
        parts.append(f"<year>{1990 + index % 36}</year>")
        if rng.random() < 0.3:
            parts.append(f"<ee>https://doi.org/10.1000/{index}</ee>")
        parts.append(f"</{kind}>")
    parts.append("<note>end of snapshot</note></dblp>")
    return "".join(parts)


def engine() -> MonetXQuery:
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = MonetXQuery()
        _ENGINE.load_document_text(generate_dblp(SCALE, SEED),
                                   name="dblp.xml")
    return _ENGINE


def best_of(prepared, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        prepared.run()
        best = min(best, time.perf_counter() - started)
    return best


def measure(workload: str, query: str, detail: str) -> float:
    mxq = engine()
    vectorized = mxq.prepare(query, options=EngineOptions())
    fallback = mxq.prepare(
        query, options=EngineOptions(loop_lifted_other=False))

    # correctness first: the kernels may change how an axis runs, never
    # its bytes — and the vectorized plan must not fall back per iteration
    assert vectorized.run().serialize() == fallback.run().serialize()
    with capture() as trace:
        vectorized.run()
    assert trace.count("step.iterative") == 0, \
        f"workload {workload!r} took the per-iteration fallback"

    vectorized_seconds = best_of(vectorized)
    fallback_seconds = best_of(fallback)
    speedup = fallback_seconds / vectorized_seconds if vectorized_seconds \
        else float("inf")
    _RESULTS[workload] = {
        "query": query,
        "vectorized_s": vectorized_seconds,
        "fallback_s": fallback_seconds,
        "speedup": speedup,
        "detail": detail,
    }
    _write()
    return speedup


def _write() -> None:
    totals = {
        "vectorized_s": sum(w["vectorized_s"] for w in _RESULTS.values()),
        "fallback_s": sum(w["fallback_s"] for w in _RESULTS.values()),
    }
    totals["mix_speedup"] = (totals["fallback_s"] / totals["vectorized_s"]
                             if totals["vectorized_s"] else float("inf"))
    write_bench_json("bench_axes", {"scale_used": SCALE,
                                    "mix_floor": MIX_FLOOR,
                                    "workloads": _RESULTS,
                                    "totals": totals})


def test_sibling_titles():
    speedup = measure(
        "sibling_titles",
        "for $a in //author return $a/following-sibling::title",
        "following-sibling from every author: grouped sibling runs vs. "
        "one staircase join per author")
    assert speedup >= 1.5, f"sibling titles speedup only {speedup:.1f}x"


def test_following_scan():
    speedup = measure(
        "following_scan",
        "for $a in //author return count($a/following::note)",
        "following window from every author: candidate bisection vs. one "
        "document-tail scan per author")
    assert speedup >= 5.0, f"following scan speedup only {speedup:.1f}x"


def test_preceding_sibling_first():
    speedup = measure(
        "preceding_sibling_first",
        "for $t in //title return $t/preceding-sibling::author[1]",
        "reverse sibling axis with a proximity-order positional predicate "
        "from every title")
    assert speedup >= 1.2, \
        f"preceding-sibling[1] speedup only {speedup:.1f}x"


def test_ancestor_count():
    speedup = measure(
        "ancestor_count",
        "for $y in //year return count($y/ancestor::*)",
        "ancestor chains from every year: one stack scan vs. one "
        "staircase join per binding")
    assert speedup >= 1.2, f"ancestor count speedup only {speedup:.1f}x"


def test_mix_meets_the_acceptance_floor():
    """The sibling/following mix must beat the fallback >= 5x overall."""
    assert len(_RESULTS) == 4, "run the whole module, not a single test"
    totals_fallback = sum(w["fallback_s"] for w in _RESULTS.values())
    totals_vectorized = sum(w["vectorized_s"] for w in _RESULTS.values())
    mix = totals_fallback / totals_vectorized
    assert mix >= MIX_FLOOR, f"axis mix speedup only {mix:.1f}x"
