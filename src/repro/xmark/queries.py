"""The twenty XMark benchmark queries, in the supported XQuery subset.

The queries follow the published XMark query set [36].  Three adaptations
were necessary (documented per query and in DESIGN.md):

* Q4 uses the node-order comparison ``<<`` in the original; it is expressed
  here via existence of both bidders (the navigational work is identical).
* The original queries occasionally wrap operands in ``zero-or-one`` /
  ``exactly-one``; these are kept where the subset supports them.
* The string constants (person ids, keywords) are chosen to select a
  non-empty but selective result on the generated documents.
"""

from __future__ import annotations


XMARK_QUERIES: dict[int, str] = {
    1: '''
        for $b in /site/people/person[@id = "person0"]
        return $b/name/text()
    ''',
    2: '''
        for $b in /site/open_auctions/open_auction
        return <increase>{ $b/bidder[1]/increase/text() }</increase>
    ''',
    3: '''
        for $b in /site/open_auctions/open_auction
        where zero-or-one($b/bidder[1]/increase/text()) * 2
              <= $b/bidder[last()]/increase/text()
        return <increase first="{$b/bidder[1]/increase/text()}"
                         last="{$b/bidder[last()]/increase/text()}"/>
    ''',
    4: '''
        for $b in /site/open_auctions/open_auction
        where some $pr1 in $b/bidder/personref[@person = "person3"]
              satisfies exists($b/bidder/personref[@person = "person2"])
        return <history>{ $b/reserve/text() }</history>
    ''',
    5: '''
        count(for $i in /site/closed_auctions/closed_auction
              where $i/price/text() >= 40
              return $i/price)
    ''',
    6: '''
        for $b in /site/regions return count($b//item)
    ''',
    7: '''
        for $p in /site
        return count($p//description) + count($p//annotation) + count($p//emailaddress)
    ''',
    8: '''
        for $p in /site/people/person
        let $a := for $t in /site/closed_auctions/closed_auction
                  where $t/buyer/@person = $p/@id
                  return $t
        return <item person="{$p/name/text()}">{ count($a) }</item>
    ''',
    9: '''
        for $p in /site/people/person
        let $a := for $t in /site/closed_auctions/closed_auction
                  let $n := for $t2 in /site/regions/europe/item
                            where $t/itemref/@item = $t2/@id
                            return $t2
                  where $p/@id = $t/buyer/@person
                  return <item>{ $n/name/text() }</item>
        return <person name="{$p/name/text()}">{ $a }</person>
    ''',
    10: '''
        for $i in distinct-values(/site/people/person/profile/interest/@category)
        let $p := for $t in /site/people/person
                  where $t/profile/interest/@category = $i
                  return <personne>
                            <statistiques>
                               <sexe>{ $t/profile/gender/text() }</sexe>
                               <age>{ $t/profile/age/text() }</age>
                               <education>{ $t/profile/education/text() }</education>
                               <revenu>{ $t/profile/@income }</revenu>
                            </statistiques>
                            <coordonnees>
                               <nom>{ $t/name/text() }</nom>
                               <ville>{ $t/address/city/text() }</ville>
                               <pays>{ $t/address/country/text() }</pays>
                               <courrier>{ $t/emailaddress/text() }</courrier>
                            </coordonnees>
                            <cartePaiement>{ $t/creditcard/text() }</cartePaiement>
                         </personne>
        return <categorie>{ <id>{ $i }</id>, $p }</categorie>
    ''',
    11: '''
        for $p in /site/people/person
        let $l := for $i in /site/open_auctions/open_auction/initial
                  where $p/profile/@income > 5000 * exactly-one($i/text())
                  return $i
        return <items name="{$p/name/text()}">{ count($l) }</items>
    ''',
    12: '''
        for $p in /site/people/person
        let $l := for $i in /site/open_auctions/open_auction/initial
                  where $p/profile/@income > 5000 * exactly-one($i/text())
                  return $i
        where $p/profile/@income > 50000
        return <items person="{$p/profile/@income}">{ count($l) }</items>
    ''',
    13: '''
        for $i in /site/regions/australia/item
        return <item name="{$i/name/text()}">{ $i/description }</item>
    ''',
    14: '''
        for $i in /site//item
        where contains(string(exactly-one($i/description)), "gold")
        return $i/name/text()
    ''',
    15: '''
        for $a in /site/closed_auctions/closed_auction/annotation/description/parlist/
                  listitem/parlist/listitem/text/emph/keyword/text()
        return <text>{ $a }</text>
    ''',
    16: '''
        for $a in /site/closed_auctions/closed_auction
        where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/
                        text/emph/keyword/text()))
        return <person id="{$a/seller/@person}"/>
    ''',
    17: '''
        for $p in /site/people/person
        where empty($p/homepage/text())
        return <person name="{$p/name/text()}"/>
    ''',
    18: '''
        declare function local:convert($v) { 2.20371 * $v };
        for $i in /site/open_auctions/open_auction
        return local:convert(zero-or-one($i/reserve/text()))
    ''',
    19: '''
        for $b in /site/regions//item
        let $k := $b/name/text()
        order by zero-or-one($b/location) ascending
        return <item name="{$k}">{ $b/location/text() }</item>
    ''',
    20: '''
        <result>
          <preferred>{ count(/site/people/person/profile[@income >= 100000]) }</preferred>
          <standard>{ count(/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>
          <challenge>{ count(/site/people/person/profile[@income < 30000]) }</challenge>
          <na>{ count(for $p in /site/people/person
                      where empty($p/profile/@income)
                      return $p) }</na>
        </result>
    ''',
}

#: query numbers whose plans contain value joins (Figure 13)
JOIN_QUERIES = (8, 9, 10, 11, 12)


def xmark_query(number: int) -> str:
    """The text of XMark query ``number`` (1-20)."""
    if number not in XMARK_QUERIES:
        raise KeyError(f"XMark defines queries 1..20, got {number}")
    return XMARK_QUERIES[number]


def all_queries() -> dict[int, str]:
    """All twenty queries keyed by their number."""
    return dict(XMARK_QUERIES)
