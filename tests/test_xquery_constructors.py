"""Node construction into the transient container and serialization."""

import pytest

from repro.xml import DocumentStore, serialize_item, serialize_sequence, shred_document
from repro.xml.document import DocumentContainer, NodeKind, NodeRef
from repro.xquery.constructors import construct_element, construct_text


@pytest.fixture
def transient():
    return DocumentContainer("(transient)", order_key=99, transient=True)


@pytest.fixture
def source_doc():
    return shred_document("<a><b x='1'>hi</b><c/></a>", "src.xml", DocumentStore())


class TestConstructElement:
    def test_empty_element(self, transient):
        node = construct_element(transient, "empty", [], [])
        assert serialize_item(node) == "<empty/>"

    def test_attributes(self, transient):
        node = construct_element(transient, "e", [("a", "1"), ("b", "x & y")], [])
        assert serialize_item(node) == '<e a="1" b="x &amp; y"/>'

    def test_atomic_content_merges_with_spaces(self, transient):
        node = construct_element(transient, "e", [], [1, 2, "three"])
        assert serialize_item(node) == "<e>1 2 three</e>"

    def test_node_content_copies_subtree(self, transient, source_doc):
        b = source_doc.candidates_by_name("b")[0]
        node = construct_element(transient, "wrap", [], [NodeRef(source_doc, b)])
        assert serialize_item(node) == '<wrap><b x="1">hi</b></wrap>'

    def test_document_node_content_copies_children(self, transient, source_doc):
        node = construct_element(transient, "copy", [], [NodeRef(source_doc, 0)])
        assert serialize_item(node) == '<copy><a><b x="1">hi</b><c/></a></copy>'

    def test_attribute_node_content_becomes_attribute(self, transient, source_doc):
        attr = source_doc.attribute(0)
        node = construct_element(transient, "e", [], [attr])
        assert serialize_item(node) == '<e x="1"/>'

    def test_mixed_content_order_preserved(self, transient, source_doc):
        c = source_doc.candidates_by_name("c")[0]
        node = construct_element(transient, "e", [],
                                 ["before", NodeRef(source_doc, c), "after"])
        assert serialize_item(node) == "<e>before<c/>after</e>"

    def test_constructed_nodes_are_separate_fragments(self, transient):
        first = construct_element(transient, "a", [], [])
        second = construct_element(transient, "b", [], [])
        assert transient.frag[first.pre] != transient.frag[second.pre]
        assert first < second          # document order by construction order

    def test_size_covers_content(self, transient, source_doc):
        b = source_doc.candidates_by_name("b")[0]
        node = construct_element(transient, "w", [], [NodeRef(source_doc, b), "x"])
        assert transient.size[node.pre] == 3    # b, text(hi), text(x)


class TestConstructText:
    def test_text_node(self, transient):
        node = construct_text(transient, "hello")
        assert node.kind == NodeKind.TEXT
        assert serialize_item(node) == "hello"


class TestSerializeSequence:
    def test_atomics_separated_by_space(self):
        assert serialize_sequence([1, 2, "x"]) == "1 2 x"

    def test_nodes_not_separated(self, transient):
        first = construct_element(transient, "a", [], [])
        second = construct_element(transient, "b", [], [])
        assert serialize_sequence([first, second, 7]) == "<a/><b/>7"

    def test_booleans_and_floats(self):
        assert serialize_sequence([True, False, 2.0, 2.5]) == "true false 2 2.5"
