"""Updatable XML documents over the page-wise storage scheme.

:class:`UpdatableDocument` stores a shredded document in a
:class:`~repro.storage.pages.PagedStructure` and implements the update
operations of Section 5.2:

* **value updates** — text/comment/PI content and attribute values map to
  in-place updates of the property columns;
* **structural inserts** — a new subtree is written into the free space of
  the logical page containing the insert point; when it does not fit, fresh
  logical pages are appended to the rid table and spliced into the page map,
  so nodes on *other* pages never shift;
* **structural deletes** — the deleted subtree's tuples simply become unused
  tuples; no shifting at all;
* the ``size`` of the ancestors of the update point is maintained through a
  per-transaction **delta ledger** (:mod:`repro.storage.locking`) instead of
  locking the document root for the duration of the transaction.

Update cost is reported via :class:`UpdateStats` (logical pages touched /
appended) which the *text-updates* benchmark uses to verify the paper's
claim that an insert costs a constant number of logical pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UpdateError
from ..xml.document import DocumentContainer, NodeKind
from .locking import SizeDeltaLedger
from .pages import UNUSED, PagedStructure


@dataclass
class UpdateStats:
    """Bookkeeping of the most recent update operations."""

    pages_touched: int = 0
    pages_appended: int = 0
    tuples_written: int = 0
    tuples_marked_unused: int = 0

    def reset(self) -> None:
        self.pages_touched = 0
        self.pages_appended = 0
        self.tuples_written = 0
        self.tuples_marked_unused = 0


@dataclass
class _Node:
    """A plain record used while re-arranging tuples inside a page."""

    size: int
    level: int
    kind: int
    name_id: int
    value: str | None
    uid: int


class UpdatableDocument:
    """A document stored in page-wise updatable form."""

    def __init__(self, page_size: int = 64, fill_factor: float = 0.75):
        self.pages = PagedStructure(page_size=page_size, fill_factor=fill_factor)
        self.names = None                    # NamePool shared with the source
        self.ledger = SizeDeltaLedger()
        self.stats = UpdateStats()
        self._uids: list[int | None] = []    # rid -> node uid (rids never move)
        self._next_uid = 0
        self.attributes: dict[int, list[tuple[int, str]]] = {}   # uid -> [(name_id, value)]

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    @classmethod
    def from_container(cls, container: DocumentContainer, *, page_size: int = 64,
                       fill_factor: float = 0.75) -> "UpdatableDocument":
        """Shred-to-updatable load: distribute the dense encoding over pages.

        The shredder leaves ``(1 - fill_factor) * page_size`` unused tuples at
        the end of every logical page so that later inserts find local free
        space.
        """
        document = cls(page_size=page_size, fill_factor=fill_factor)
        document.names = container.names
        per_page = max(1, int(page_size * fill_factor))
        pages = document.pages

        position_in_page = per_page          # force a new page for the first node
        slot = -1
        for pre in range(container.node_count):
            if position_in_page >= per_page:
                page = pages.append_page()
                document._uids.extend([None] * page_size)
                slot = page << pages.page_bits
                position_in_page = 0
            uid = document._new_uid()
            pages.set(slot, size=container.size[pre], level=container.level[pre],
                      kind=container.kind[pre], name_id=container.name_id[pre],
                      value=container.value[pre])
            document._set_uid(slot, uid)
            for attr_index in container.attributes_of(pre):
                document.attributes.setdefault(uid, []).append(
                    (container.attr_name[attr_index], container.attr_value[attr_index]))
            slot += 1
            position_in_page += 1
        pages.compact_free_runs()
        return document

    def _new_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _uid_at(self, slot: int) -> int | None:
        """The uid of the node stored at a pre-view slot (rids never move)."""
        return self._uids[self.pages.pre_to_rid(slot)]

    def _set_uid(self, slot: int, uid: int | None) -> None:
        self._uids[self.pages.pre_to_rid(slot)] = uid

    # ------------------------------------------------------------------ #
    # dense view helpers
    # ------------------------------------------------------------------ #
    def used_slots(self) -> list[int]:
        """Pre-view slot of every live node, in document order."""
        return [slot for slot in range(self.pages.pre_count)
                if not self.pages.is_unused(slot)]

    @property
    def node_count(self) -> int:
        return len(self.used_slots())

    def dense_to_slot(self, dense_pre: int) -> int:
        """Translate a dense pre rank (what queries see) to a pre-view slot."""
        slots = self.used_slots()
        if not 0 <= dense_pre < len(slots):
            raise UpdateError(f"dense pre {dense_pre} out of range")
        return slots[dense_pre]

    def slot_to_dense(self, slot: int) -> int:
        slots = self.used_slots()
        try:
            return slots.index(slot)
        except ValueError:
            raise UpdateError(f"slot {slot} holds no live node") from None

    def node_size(self, dense_pre: int) -> int:
        slot = self.dense_to_slot(dense_pre)
        return self.pages.get(slot)[0]

    def node_level(self, dense_pre: int) -> int:
        slot = self.dense_to_slot(dense_pre)
        level = self.pages.get(slot)[1]
        assert level is not None
        return level

    # ------------------------------------------------------------------ #
    # value updates
    # ------------------------------------------------------------------ #
    def replace_value(self, dense_pre: int, new_value: str) -> None:
        """Replace the content of a text / comment / PI node."""
        slot = self.dense_to_slot(dense_pre)
        size, level, kind, name_id, _ = self.pages.get(slot)
        if kind not in (NodeKind.TEXT, NodeKind.COMMENT,
                        NodeKind.PROCESSING_INSTRUCTION):
            raise UpdateError("replace_value targets text, comment or PI nodes")
        self.pages.set(slot, size=size, level=level, kind=kind,
                       name_id=name_id, value=new_value)
        self.stats.pages_touched += 1

    def set_attribute(self, dense_pre: int, name: str, value: str) -> None:
        """Insert or replace an attribute of an element node."""
        slot = self.dense_to_slot(dense_pre)
        _, _, kind, _, _ = self.pages.get(slot)
        if kind != NodeKind.ELEMENT:
            raise UpdateError("attributes can only be set on element nodes")
        if self.names is None:
            raise UpdateError("document has no name pool")
        name_id = self.names.intern(name)
        uid = self._uid_at(slot)
        attrs = self.attributes.setdefault(uid, [])
        for index, (existing, _) in enumerate(attrs):
            if existing == name_id:
                attrs[index] = (name_id, value)
                break
        else:
            attrs.append((name_id, value))
        self.stats.pages_touched += 1

    def delete_attribute(self, dense_pre: int, name: str) -> None:
        slot = self.dense_to_slot(dense_pre)
        uid = self._uid_at(slot)
        if self.names is None:
            raise UpdateError("document has no name pool")
        name_id = self.names.lookup(name)
        attrs = self.attributes.get(uid, [])
        remaining = [(aid, value) for aid, value in attrs if aid != name_id]
        if len(remaining) == len(attrs):
            raise UpdateError(f"element has no attribute {name!r}")
        self.attributes[uid] = remaining

    # ------------------------------------------------------------------ #
    # structural updates
    # ------------------------------------------------------------------ #
    def _ancestor_slots(self, slot: int) -> list[int]:
        """Slots of the ancestors of ``slot`` (walk backwards over live slots)."""
        slots = self.used_slots()
        position = slots.index(slot)
        level = self.pages.get(slot)[1]
        ancestors = []
        for candidate in reversed(slots[:position]):
            candidate_level = self.pages.get(candidate)[1]
            if candidate_level is not None and candidate_level < level:
                ancestors.append(candidate)
                level = candidate_level
                if level == 0:
                    break
        return ancestors

    def _read_node(self, slot: int) -> _Node:
        size, level, kind, name_id, value = self.pages.get(slot)
        return _Node(size, level, kind, name_id, value, self._uid_at(slot))

    def _write_node(self, slot: int, node: _Node) -> None:
        self.pages.set(slot, size=node.size, level=node.level, kind=node.kind,
                       name_id=node.name_id, value=node.value)
        self._set_uid(slot, node.uid)
        self.stats.tuples_written += 1

    def insert_subtree(self, target_dense_pre: int, fragment: DocumentContainer,
                       fragment_pre: int = 0, *, as_first_child: bool = False) -> None:
        """Insert a subtree of ``fragment`` under the target element.

        ``as_first_child=True`` implements ``insert-first`` (the new subtree
        becomes the first child); otherwise the subtree is appended as the
        last child.  Only the logical page containing the insert point is
        rewritten; overflow goes to freshly appended pages.
        """
        self.stats.reset()
        target_slot = self.dense_to_slot(target_dense_pre)
        target_size, target_level, target_kind, _, _ = self.pages.get(target_slot)
        if target_kind not in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            raise UpdateError("insert target must be an element or document node")

        # collect the new nodes from the fragment (dense encoding)
        span = range(fragment_pre, fragment_pre + fragment.size[fragment_pre] + 1)
        base_level = fragment.level[fragment_pre]
        new_nodes: list[_Node] = []
        for pre in span:
            uid = self._new_uid()
            new_nodes.append(_Node(
                size=fragment.size[pre],
                level=fragment.level[pre] - base_level + target_level + 1,
                kind=fragment.kind[pre],
                name_id=self._import_name(fragment, fragment.name_id[pre]),
                value=fragment.value[pre],
                uid=uid,
            ))
            for attr_index in fragment.attributes_of(pre):
                self.attributes.setdefault(uid, []).append(
                    (self._import_name(fragment, fragment.attr_name[attr_index]),
                     fragment.attr_value[attr_index]))

        # determine the pre-view slot right before which the nodes go
        if as_first_child:
            insert_slot = self._next_live_slot(target_slot)
        else:
            insert_slot = self._slot_after_subtree(target_slot, target_dense_pre)

        self._splice_nodes(insert_slot, new_nodes)

        # maintain ancestor sizes through the delta ledger
        delta = len(new_nodes)
        ancestors = self._ancestor_slots(target_slot)
        self.ledger.record(self._uid_at(target_slot), delta)
        self._apply_size_delta(target_slot, delta)
        for ancestor in ancestors:
            self.ledger.record(self._uid_at(ancestor), delta)
            self._apply_size_delta(ancestor, delta)
        self.ledger.commit()
        self.pages.compact_free_runs()

    def delete_subtree(self, target_dense_pre: int) -> None:
        """Delete the subtree rooted at the given dense pre rank.

        The tuples become unused; no other page is touched.  Ancestor sizes
        shrink by the number of deleted nodes.
        """
        self.stats.reset()
        target_slot = self.dense_to_slot(target_dense_pre)
        subtree_size = self.pages.get(target_slot)[0]
        slots = self.used_slots()
        position = slots.index(target_slot)
        doomed = slots[position:position + subtree_size + 1]

        delta = -(subtree_size + 1)
        ancestors = self._ancestor_slots(target_slot)
        for slot in doomed:
            uid = self._uid_at(slot)
            self.attributes.pop(uid, None)
            self.pages.mark_unused(slot)
            self._set_uid(slot, None)
            self.stats.tuples_marked_unused += 1
        for ancestor in ancestors:
            self.ledger.record(self._uid_at(ancestor), delta)
            self._apply_size_delta(ancestor, delta)
        self.ledger.commit()
        self.pages.compact_free_runs()
        self.stats.pages_touched = len({slot >> self.pages.page_bits for slot in doomed})

    # -- helpers ----------------------------------------------------------- #
    def _import_name(self, fragment: DocumentContainer, name_id: int) -> int:
        if name_id < 0 or self.names is None:
            return -1
        qname = fragment.names.name(name_id)
        return self.names.intern(qname.local, qname.namespace)

    def _next_live_slot(self, slot: int) -> int:
        """The slot right after ``slot`` (insert-first position)."""
        return slot + 1

    def _slot_after_subtree(self, target_slot: int, target_dense_pre: int) -> int:
        """The slot right after the last live descendant of the target."""
        size = self.pages.get(target_slot)[0]
        slots = self.used_slots()
        position = slots.index(target_slot)
        last_descendant_position = position + size
        if last_descendant_position >= len(slots) - 1:
            return slots[-1] + 1
        return slots[last_descendant_position] + 1

    def _apply_size_delta(self, slot: int, delta: int) -> None:
        size, level, kind, name_id, value = self.pages.get(slot)
        self.pages.set(slot, size=size + delta, level=level, kind=kind,
                       name_id=name_id, value=value)

    def _splice_nodes(self, insert_slot: int, new_nodes: list[_Node]) -> None:
        """Write ``new_nodes`` at ``insert_slot``, shifting only inside the page.

        The live tuples of the page from ``insert_slot`` onwards (the "tail")
        are re-laid-out after the new nodes.  Whatever does not fit in the
        page spills into freshly appended logical pages spliced right after
        it in the page map.
        """
        pages = self.pages
        page = insert_slot >> pages.page_bits
        if page >= pages.page_count:
            page = pages.append_page()
            self._uids.extend([None] * pages.page_size)
            self.stats.pages_appended += 1
            insert_slot = page << pages.page_bits
        page_start = page << pages.page_bits
        page_end = page_start + pages.page_size

        tail: list[_Node] = []
        for slot in range(insert_slot, page_end):
            if not pages.is_unused(slot):
                tail.append(self._read_node(slot))
                pages.mark_unused(slot)
                self._set_uid(slot, None)

        pending = new_nodes + tail
        touched_pages = {page}

        # fill the current page first
        slot = insert_slot
        while pending and slot < page_end:
            self._write_node(slot, pending.pop(0))
            slot += 1

        # spill the rest into new logical pages spliced right after this one
        # (`page` is the logical page number, so the splice position is page + 1)
        splice_at = page + 1
        while pending:
            new_logical = pages.append_page(at_logical_position=splice_at)
            self._uids.extend([None] * pages.page_size)
            self.stats.pages_appended += 1
            start = new_logical << pages.page_bits
            touched_pages.add(new_logical)
            slot = start
            while pending and slot < start + pages.page_size:
                self._write_node(slot, pending.pop(0))
                slot += 1
            splice_at += 1

        self.stats.pages_touched += len(touched_pages)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_container(self, name: str = "(updated)") -> DocumentContainer:
        """Materialise the dense ``pre|size|level`` view as a fresh container."""
        container = DocumentContainer(name, order_key=0)
        if self.names is not None:
            container.names = self.names
        for slot in self.used_slots():
            size, level, kind, name_id, value = self.pages.get(slot)
            pre = container.add_node(NodeKind(kind), level, name_id=name_id,
                                     value=value, frag=0, size=size)
            uid = self._uid_at(slot)
            for attr_name_id, attr_value in self.attributes.get(uid, []):
                container.add_attribute(pre, attr_name_id, attr_value)
        return container
