"""Comparison baselines: a conventional tree-walking XQuery interpreter."""

from .interpreter import TreeWalkingInterpreter, run_baseline

__all__ = ["TreeWalkingInterpreter", "run_baseline"]
