"""Dependency-free concurrency primitives for the serving layer.

This module sits below everything else (it imports only the standard
library), so the document store, the storage layer and the server package
can all share one :class:`ReadWriteLock` implementation without import
cycles.  It is re-exported from :mod:`repro.storage.locking` next to the
paper's delta-ledger locking discussion.

:class:`EpochTracker` is the reclamation protocol of the process-parallel
serving layer: shared-memory segment sets are published as numbered
*epochs* (generations), readers pin the epoch they were dispatched
against, and a retired epoch's resources (its closer callback — segment
unlinking) run only once the last pinned reader drains.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator


class ReadWriteLock:
    """A classic readers-writer lock with writer preference.

    Any number of readers may hold the lock simultaneously; writers get
    exclusive access.  Pending writers block *new* readers, so a steady
    query stream cannot starve a document load/drop/update-commit.  The
    lock is not reentrant — the document store acquires it only around
    short dictionary operations and never while calling back into itself.

        >>> lock = ReadWriteLock()
        >>> with lock.read_locked():
        ...     ...   # shared
        >>> with lock.write_locked():
        ...     ...   # exclusive
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class EpochTracker:
    """Refcounted epochs with deferred resource reclamation.

    The process-serving publication protocol: every published shared-memory
    generation is opened as an epoch with a *closer* (the callback that
    unlinks the segments only that generation references).  Each dispatched
    reader :meth:`enter`\\ s the epoch current at submit time and
    :meth:`exit`\\ s it when its future completes.  Publishing the next
    generation :meth:`retire`\\ s the previous one; the retired epoch's
    closer runs exactly once, as soon as its reader count drains to zero
    (immediately, when nothing is in flight).

    Closers run *outside* the tracker's lock, so a closer may take other
    locks (the server's publication lock) without lock-order inversion.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # epoch -> [readers, retired, closer]
        self._epochs: dict[int, list] = {}

    def open(self, epoch: int, closer: "Callable[[], None] | None" = None) -> None:
        """Register a new epoch (the now-current generation)."""
        with self._lock:
            if epoch in self._epochs:
                raise ValueError(f"epoch {epoch} is already open")
            self._epochs[epoch] = [0, False, closer]

    def enter(self, epoch: int) -> None:
        """Pin an epoch for one reader (must be open)."""
        with self._lock:
            try:
                self._epochs[epoch][0] += 1
            except KeyError:
                raise ValueError(f"epoch {epoch} is not open") from None

    def exit(self, epoch: int) -> None:
        """Release one reader's pin; reclaims a drained retired epoch."""
        closer = None
        with self._lock:
            entry = self._epochs.get(epoch)
            if entry is None:       # already reclaimed (double exit is a bug,
                return              # but never worth crashing a done-callback)
            entry[0] -= 1
            if entry[1] and entry[0] <= 0:
                closer = entry[2]
                del self._epochs[epoch]
        if closer is not None:
            closer()

    def retire(self, epoch: int) -> None:
        """Mark an epoch stale; its closer runs when readers drain."""
        closer = None
        with self._lock:
            entry = self._epochs.get(epoch)
            if entry is None:
                return
            entry[1] = True
            if entry[0] <= 0:
                closer = entry[2]
                del self._epochs[epoch]
        if closer is not None:
            closer()

    def retire_all(self) -> None:
        """Retire every open epoch (server shutdown); drained ones reclaim."""
        with self._lock:
            epochs = list(self._epochs)
        for epoch in epochs:
            self.retire(epoch)

    def readers(self, epoch: int) -> int:
        """The current reader count of an epoch (0 when unknown)."""
        with self._lock:
            entry = self._epochs.get(epoch)
            return entry[0] if entry is not None else 0

    def live_epochs(self) -> list[int]:
        """Epochs not yet reclaimed (diagnostics/tests)."""
        with self._lock:
            return sorted(self._epochs)
