"""Prepared-plan cache — repeated-query throughput.

The north-star workload is heavy *repeated* traffic: the same XMark query
texts arriving over and over.  With the plan cache every repetition skips
parse → plan → rewrite and goes straight to execution; with the cache
disabled (capacity 0) the whole front-end runs each time.  Expected shape:
the cached configuration wins by the full compile-time share of the query,
most visibly on the short selective queries (Q1).
"""

import pytest

from repro import MonetXQuery
from repro.xmark import XMARK_QUERIES, generate_document

from .conftest import BASE_SCALE, SEED


REPEATS = 20


@pytest.mark.parametrize("mode", ["cached", "uncached"])
@pytest.mark.parametrize("query", [1, 5, 8])
def test_plan_cache_repeated_queries(benchmark, mode, query):
    engine = MonetXQuery(plan_cache_size=64 if mode == "cached" else 0)
    engine.load_document_text(generate_document(BASE_SCALE, SEED),
                              name="auction.xml")
    text = XMARK_QUERIES[query]

    def run():
        total = 0
        for _ in range(REPEATS):
            engine.reset_transient()
            total += len(engine.query(text))
        return total

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "plan-cache"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["repeats"] = REPEATS
    benchmark.extra_info["result_size"] = result
    if mode == "cached":
        assert engine.plan_cache_stats.hits == REPEATS - 1
