"""Plan-to-Python codegen vs. the interpreter — cached-plan re-execution.

The codegen win lives where per-node dispatch dominates: small prepared
plans served over and over from the plan cache, every execution paying the
interpreter's ``getattr`` dispatch, ``PlanNode`` param unpacking and
repeated static decisions.  Two workloads isolate it:

* **expression mix** — dispatch-bound arithmetic / comparison / logic
  plans over constants: the compiled closures inline every literal and
  resolve every operator at prepare time, so re-execution is closure
  composition over per-iteration dicts.  This is the acceptance workload:
  the mix must re-execute >= 1.5x faster compiled than interpreted,
* **serving mix** — small path / predicate / FLWOR queries of the shape a
  plan-cache-heavy server sees: table kernels dominate here, so the floor
  only guards against codegen *losing* (the speedup is recorded for the
  trajectory, not asserted large).

Compiled and interpreted results are asserted bit-identical — and the
compiled run is asserted to actually take the codegen path — before any
timing.  Results land in ``benchmarks/results/BENCH_bench_codegen.json``.
"""

from __future__ import annotations

import time

from repro import EngineOptions, MonetXQuery
from repro.relational.explain import capture
from repro.xmark import generate_document

from .conftest import BASE_SCALE, SEED, write_bench_json

REPEATS = 9

#: dispatch-bound plans: many operators, (almost) no document data
EXPRESSION_MIX = {
    "arith_deep": ("((1 + 2) * 3 - 4) + (5 * 6 - 7) + ((8 + 9) * 2) "
                   "- (10 * 11 - 12) + ((13 + 14) * 15)"),
    "logic": ("1 = 1 and 2 = 2 and (3 < 4 or 5 > 6) and 7 != 8 "
              "and (9 >= 9 or 10 <= 1)"),
    "cmp_mix": "(1 lt 2) = (3 lt 4) and (5 + 6 gt 7) = ((8 - 1) ge 7)",
    "cond_arith": ("if (1 + 1 = 2) then 3 * 3 "
                   "else if (4 = 5) then 6 else 7 + 8"),
    "seq_arith": "(1 + 1, 2 * 2, 3 - 1, 4 * 4, 5 + 5, 6 - 2, 7 * 2)",
    "unary": "-(1 + 2) + -(3 * 4) - -(5 - 6)",
}

#: kernel-bound plans: what a plan cache actually serves all day
SERVING_MIX = {
    "tiny_count": "count(/site/people/person)",
    "positional": "/site/people/person[2]/name/text()",
    "flwor_where": ("for $i in 1 to 25 "
                    "where $i mod 3 = 0 or $i mod 5 = 1 "
                    "return $i * 2 + 1"),
    "quantified": "some $i in (1 to 12) satisfies $i * $i = 49",
}

_RESULTS: dict[str, dict] = {}
_ENGINE: MonetXQuery | None = None


def engine() -> MonetXQuery:
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = MonetXQuery()
        _ENGINE.load_document_text(generate_document(BASE_SCALE, SEED),
                                   name="auction.xml")
    return _ENGINE


def best_of(prepared, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        prepared.run()
        best = min(best, time.perf_counter() - started)
    return best


def measure(group: str, mix: dict[str, str]) -> float:
    """Best-of re-execution time of every query in a mix, compiled vs.
    interpreted; returns the aggregate (sum-of-best over sum-of-best)
    speedup and records per-query numbers."""
    mxq = engine()
    compiled_total = interpreted_total = 0.0
    for name, query in mix.items():
        compiled = mxq.prepare(query, options=EngineOptions(codegen=True))
        interpreted = mxq.prepare(query,
                                  options=EngineOptions(codegen=False))

        # correctness first: codegen may change how a plan runs, never its
        # bytes — and the compiled run must actually take the codegen path
        assert compiled.run().serialize() == interpreted.run().serialize(), \
            f"codegen diverged on {query!r}"
        with capture() as trace:
            compiled.run()
        assert trace.count("plan.codegen") == 1, \
            f"workload {name!r} did not execute compiled"

        compiled_seconds = best_of(compiled)
        interpreted_seconds = best_of(interpreted)
        compiled_total += compiled_seconds
        interpreted_total += interpreted_seconds
        _RESULTS[f"{group}:{name}"] = {
            "query": query,
            "compiled_s": compiled_seconds,
            "interpreted_s": interpreted_seconds,
            "speedup": interpreted_seconds / compiled_seconds
            if compiled_seconds else float("inf"),
        }
    speedup = interpreted_total / compiled_total if compiled_total \
        else float("inf")
    _RESULTS[f"{group}:aggregate"] = {
        "compiled_s": compiled_total,
        "interpreted_s": interpreted_total,
        "speedup": speedup,
    }
    write_bench_json("bench_codegen", {"scale_used": BASE_SCALE,
                                       "workloads": _RESULTS})
    return speedup


def test_expression_mix_speedup():
    """The acceptance floor: dispatch-bound cached plans must re-execute
    >= 1.5x faster through their compiled closures."""
    speedup = measure("expression", EXPRESSION_MIX)
    assert speedup >= 1.5, f"expression-mix speedup only {speedup:.2f}x"


def test_serving_mix_does_not_regress():
    """Kernel-bound plans: the staircase joins and table operators dominate
    and are shared with the interpreter, so codegen is near-neutral here —
    the floor (with slack for timer noise on shared CI machines) only
    guards against the compiled path losing outright."""
    speedup = measure("serving", SERVING_MIX)
    assert speedup >= 0.8, f"serving mix regressed: {speedup:.2f}x"
