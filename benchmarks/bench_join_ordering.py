"""Cost-based join ordering — multi-join FLWORs with skewed cardinalities.

The query joins one driving loop (closed auctions) against two independent
``for`` clauses with very different sizes: the person list (large) and the
European item list (small).  The legacy first-syntactic-match rule
(``cost_based_joins=False``) turns only the *first* candidate into a value
join and evaluates the second clause as a lifted Cartesian product filtered
by the ``where`` clause; the cost-based optimizer recognizes *both* joins,
orders them smallest-build-side-first from the shred-time tag statistics
and picks hash build sides.  Expected shape: "cost-based" beats
"first-match" by a factor that grows with the document (the Cartesian
intermediate is quadratic), and both return identical results.
"""

import pytest

from .conftest import BASE_SCALE, build_engine


TWO_JOIN_QUERY = """
for $t in /site/closed_auctions/closed_auction
for $p in /site/people/person
for $i in /site/regions/europe/item
where $p/@id = $t/buyer/@person and $i/@id = $t/itemref/@item
return <sale person="{$p/name/text()}" item="{$i/name/text()}"/>
"""


@pytest.fixture(scope="module")
def ordering_engine():
    return build_engine(BASE_SCALE)


@pytest.mark.parametrize("mode", ["cost-based", "first-match"])
def test_join_ordering_two_independent_joins(benchmark, ordering_engine, mode):
    options = ordering_engine.options.replace(
        cost_based_joins=(mode == "cost-based"))

    def run():
        ordering_engine.reset_transient()
        return len(ordering_engine.query(TWO_JOIN_QUERY, options=options))

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "join-ordering"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["result_size"] = result

    if mode == "cost-based":
        # both joins must be recognized, with estimates and build sides
        dump = ordering_engine.explain(TWO_JOIN_QUERY, options=options)
        assert dump.count("join-recognized") == 2
        assert "est[build~" in dump
    # the two configurations must agree on the result
    ordering_engine.reset_transient()
    fast = ordering_engine.query(
        TWO_JOIN_QUERY,
        options=ordering_engine.options.replace(cost_based_joins=True))
    ordering_engine.reset_transient()
    slow = ordering_engine.query(
        TWO_JOIN_QUERY,
        options=ordering_engine.options.replace(cost_based_joins=False))
    assert fast.serialize() == slow.serialize()
