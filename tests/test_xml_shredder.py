"""Shredding and serialization: the pre|size|level encoding is an isomorphism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.xml import DocumentStore, serialize_subtree, shred_document
from repro.xml.document import NodeKind


FIGURE4_XML = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>"


class TestFigure4Encoding:
    """The running example of the paper (Figure 4)."""

    def test_pre_size_level(self, store):
        doc = shred_document(FIGURE4_XML, "fig4.xml", store)
        # index 0 is the document node added by the shredder
        assert list(doc.size[1:]) == [9, 3, 2, 0, 0, 4, 0, 2, 0, 0]
        assert list(doc.level[1:]) == [1, 2, 3, 4, 4, 2, 3, 3, 4, 4]

    def test_post_order_recoverable(self, store):
        doc = shred_document(FIGURE4_XML, "fig4.xml", store)
        post = [doc.size[pre] + pre - doc.level[pre] for pre in range(doc.node_count)]
        # post-order ranks must be a permutation of the pre-order ranks
        assert sorted(post) == list(range(doc.node_count))

    def test_children_iteration_uses_size_skipping(self, store):
        doc = shred_document(FIGURE4_XML, "fig4.xml", store)
        a = 1
        names = [doc.element_name(child) for child in doc.children_pre(a)]
        assert names == ["b", "f"]

    def test_parent_of_every_node(self, store):
        doc = shred_document(FIGURE4_XML, "fig4.xml", store)
        for pre in range(1, doc.node_count):
            parent = doc.parent_pre(pre)
            assert parent is not None
            assert parent < pre <= parent + doc.size[parent]


class TestShredding:
    def test_roundtrip_small_document(self, store):
        xml = '<a><b x="1">hi</b><c/><!--note--><d>bye</d></a>'
        doc = shred_document(xml, "t.xml", store)
        assert serialize_subtree(doc, 0) == xml

    def test_whitespace_only_text_dropped_by_default(self, store):
        doc = shred_document("<a>\n  <b/>\n</a>", "t.xml", store)
        kinds = [k for k in doc.kind]
        assert NodeKind.TEXT not in kinds

    def test_whitespace_kept_on_request(self, store):
        doc = store.new_container("keep.xml")
        from repro.xml.shredder import shred_string
        shred_string("<a> <b/> </a>", doc, keep_whitespace=True)
        assert NodeKind.TEXT in list(doc.kind)

    def test_attributes_in_separate_table(self, store):
        doc = shred_document('<a x="1" y="2"><b z="3"/></a>', "t.xml", store)
        assert doc.attribute_count == 3
        assert doc.attributes_of(1) != []

    def test_name_index_candidates_sorted(self, store):
        doc = shred_document("<a><b/><c><b/></c><b/></a>", "t.xml", store)
        candidates = doc.candidates_by_name("b")
        assert candidates == sorted(candidates)
        assert len(candidates) == 3

    def test_string_value_concatenates_descendant_text(self, store):
        doc = shred_document("<a><b>one </b><c>two</c></a>", "t.xml", store)
        assert doc.string_value(1) == "one two"

    def test_duplicate_document_name_rejected(self, store):
        shred_document("<a/>", "dup.xml", store)
        with pytest.raises(Exception):
            shred_document("<a/>", "dup.xml", store)

    def test_loaded_documents_table(self, store):
        shred_document("<a><b/></a>", "one.xml", store)
        shred_document("<c/>", "two.xml", store)
        table = store.loaded_documents_table()
        assert set(table.col("doc")) == {"one.xml", "two.xml"}


# ---------------------------------------------------------------------------- #
# property-based: shred(serialize(t)) is an isomorphism on random trees
# ---------------------------------------------------------------------------- #
@st.composite
def random_xml(draw, depth=0):
    name = draw(st.sampled_from("abcde"))
    attributes = ""
    if draw(st.booleans()):
        attributes = f' x="{draw(st.integers(0, 9))}"'
    if depth >= 3 or draw(st.integers(0, 2)) == 0:
        return f"<{name}{attributes}/>"
    children = draw(st.lists(random_xml(depth=depth + 1), max_size=3))
    text = draw(st.sampled_from(["", "t", "hello"]))
    if not text and not children:
        # empty elements always serialize in the short form
        return f"<{name}{attributes}/>"
    return f"<{name}{attributes}>{text}{''.join(children)}</{name}>"


@given(random_xml())
@settings(max_examples=60, deadline=None)
def test_shred_serialize_roundtrip(xml):
    store = DocumentStore()
    doc = shred_document(xml, "h.xml", store)
    assert serialize_subtree(doc, 0) == xml


@given(random_xml())
@settings(max_examples=60, deadline=None)
def test_structural_invariants(xml):
    store = DocumentStore()
    doc = shred_document(xml, "h.xml", store)
    total = doc.node_count
    # document node spans the whole document
    assert doc.size[0] == total - 1
    for pre in range(total):
        size = doc.size[pre]
        assert 0 <= size <= total - pre - 1
        # every node inside the subtree has a strictly larger level
        for descendant in range(pre + 1, pre + size + 1):
            assert doc.level[descendant] > doc.level[pre]
        # the node right after the subtree (if any) is not deeper
        if pre + size + 1 < total:
            assert doc.level[pre + size + 1] <= doc.level[pre] + 1
