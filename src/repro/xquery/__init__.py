"""Pathfinder-style XQuery front-end: parser, loop-lifting compiler, engine."""

from .ast import Module
from .compiler import LoopLiftingCompiler
from .engine import (EngineOptions, MonetXQuery, PlanCacheStats,
                     PreparedQuery, QueryResult)
from .parser import parse, parse_expression
from .planner import ModulePlan, plan_expression, plan_module
from .updates import XMLUpdater

__all__ = [
    "EngineOptions",
    "LoopLiftingCompiler",
    "Module",
    "ModulePlan",
    "MonetXQuery",
    "PlanCacheStats",
    "PreparedQuery",
    "QueryResult",
    "XMLUpdater",
    "parse",
    "parse_expression",
    "plan_expression",
    "plan_module",
]
