"""Operator trace and physical-algorithm counters.

MonetDB/XQuery emits physical relational algebra (MIL) whose operator
sequence can be inspected.  Because our engine executes operators eagerly,
the equivalent observability hook is a trace: every relational operator
reports which physical algorithm it chose (positional join vs. hash join,
skipped sort vs. full sort, streaming vs. sorting DENSE_RANK ...).

The benchmarks for Figure 14 (sort reduction) and the unit tests for the
peephole property framework use these counters to assert *which* algorithm
ran, not only that the result is correct.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TraceEntry:
    """One executed physical operator."""

    operator: str
    algorithm: str
    rows_in: int
    rows_out: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        detail = f" {self.detail}" if self.detail else ""
        return (f"{self.operator:<14} {self.algorithm:<22} "
                f"in={self.rows_in:<8} out={self.rows_out:<8}{detail}")


@dataclass
class Trace:
    """A recording of executed operators plus algorithm counters."""

    entries: list[TraceEntry] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def record(self, operator: str, algorithm: str, rows_in: int,
               rows_out: int, detail: str = "") -> None:
        self.entries.append(TraceEntry(operator, algorithm, rows_in, rows_out, detail))
        self.counters[algorithm] = self.counters.get(algorithm, 0) + 1

    def count(self, algorithm: str) -> int:
        return self.counters.get(algorithm, 0)

    def operators(self) -> list[str]:
        return [entry.operator for entry in self.entries]

    def render(self) -> str:
        """Pretty-print the trace (one operator per line)."""
        return "\n".join(str(entry) for entry in self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self.counters.clear()


class _TraceState(threading.local):
    def __init__(self) -> None:
        self.active: list[Trace] = []


_STATE = _TraceState()


def record(operator: str, algorithm: str, rows_in: int, rows_out: int,
           detail: str = "") -> None:
    """Record an executed operator on all active traces (cheap no-op otherwise)."""
    for trace in _STATE.active:
        trace.record(operator, algorithm, rows_in, rows_out, detail)


@contextmanager
def capture() -> Iterator[Trace]:
    """Capture the physical operators executed inside the ``with`` block.

    >>> with capture() as trace:
    ...     ...  # run operators / queries
    >>> trace.count("sort.skipped")
    """
    trace = Trace()
    _STATE.active.append(trace)
    try:
        yield trace
    finally:
        _STATE.active.remove(trace)


def tracing_active() -> bool:
    """True when at least one trace is currently capturing."""
    return bool(_STATE.active)
