"""The logical-plan rewrite optimizer.

Pathfinder rewrites its relational DAG before emitting physical algebra;
this module is the equivalent pass over the logical plans built by
:mod:`repro.xquery.planner`.  Three rewrite families run here:

* **join recognition** (Section 4.1, the ``indep`` property) — relocated
  from the ad-hoc runtime check the compiler used to perform: a ``for``
  clause whose binding sequence is *loop-invariant* (its free variables
  are disjoint from the enclosing bindings) paired with an existential
  comparison in the ``where`` clause is annotated as a value join.  The
  executor then evaluates the binding sequence once and theta-joins it
  against the outer loop instead of building a lifted Cartesian product,
* **projection pushdown / dead-column pruning** — a required-columns
  analysis over the ``iter|pos|item`` encoding: contexts that ignore
  sequence order and positions (aggregates such as ``count``, existential
  comparisons, ``where`` conditions, quantifiers) propagate a reduced
  column requirement downward, letting the executor skip the sorts and
  ``rownum`` renumberings that only exist to maintain ``pos``,
* **common-subexpression sharing** — plans are hash-consed DAGs, so
  repeated subexpressions are already *structurally* shared; this pass
  marks the shared, side-effect-free nodes so the executor can memoise
  their result per (loop, environment) and execute them once.

All analyses are side tables keyed by ``PlanNode.id``; only join
recognition rebuilds plan nodes (adding the ``join`` annotation), which is
why it runs first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from .plan import PlanBuilder, PlanNode, count_references, render_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..xquery.planner import ModulePlan


FULL_COLUMNS = frozenset({"iter", "pos", "item"})
NO_POS = frozenset({"iter", "item"})
ITER_ONLY = frozenset({"iter"})

#: pseudo-variables threaded through the environment rather than bound by
#: user code: the context item and the dynamic position()/last() registers
PSEUDO_VARIABLES = frozenset({".", "fs:position", "fs:last"})

#: builtins whose result ignores the order and positions of the argument
#: sequence entirely (pure per-iteration folds)
_ORDER_FREE_AGGREGATES = frozenset({
    "count", "exists", "empty", "sum", "avg", "min", "max", "distinct-values",
})

#: builtins that only inspect the *first* item of each iteration — safe
#: under pruning because the executor's skips preserve within-iteration
#: scan order
_FIRST_ITEM_FUNCTIONS = frozenset({
    "string", "number", "data", "boolean", "not", "string-length",
    "contains", "starts-with", "ends-with", "upper-case", "lower-case",
    "normalize-space", "name", "local-name", "root", "floor", "ceiling",
    "round", "abs",
})

#: node kinds too cheap to be worth memoising even when shared
_TRIVIAL_KINDS = frozenset({
    "const", "empty", "var", "context", "root", "for", "let", "orderspec",
    "avt",
})


def _strip_fn(name: str) -> str:
    return name[3:] if name.startswith("fn:") else name


@dataclass
class RewriteReport:
    """Which rewrite rules fired, with human-readable details."""

    entries: list[tuple[str, str]] = field(default_factory=list)

    def fire(self, rule: str, detail: str) -> None:
        self.entries.append((rule, detail))

    def fired(self, rule: str) -> list[str]:
        return [detail for name, detail in self.entries if name == rule]

    def render(self) -> str:
        if not self.entries:
            return "rewrites: none fired"
        lines = ["rewrites:"]
        lines.extend(f"  {rule}: {detail}" for rule, detail in self.entries)
        return "\n".join(lines)


class FreeVariables:
    """Binding-aware free-variable sets per plan node (memoised on demand).

    The sets include the pseudo-variables of :data:`PSEUDO_VARIABLES` so
    that the executor's CSE memoisation can fingerprint exactly the
    environment entries a subplan depends on.
    """

    def __init__(self, user_functions: Iterable[str] = ()):
        self._memo: dict[int, frozenset[str]] = {}
        self._user_functions = {_strip_fn(name) for name in user_functions}

    def __call__(self, node: PlanNode) -> frozenset[str]:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        result = self._compute(node)
        self._memo[node.id] = result
        return result

    def _compute(self, node: PlanNode) -> frozenset[str]:
        kind = node.kind
        if kind == "var":
            return frozenset({node.p("name")})
        if kind in ("context", "root"):
            return frozenset({"."})
        if kind == "call":
            name = _strip_fn(node.p("name"))
            free: set[str] = set()
            for child in node.children:
                free |= self(child)
            if name not in self._user_functions:
                if name == "position" and not node.children:
                    free.add("fs:position")
                elif name == "last" and not node.children:
                    free.add("fs:last")
                elif name in ("string", "data", "number", "name",
                              "local-name") and not node.children:
                    free.add(".")   # implicit context-item argument
            return frozenset(free)
        if kind == "flwor":
            nclauses = node.p("nclauses")
            free: set[str] = set()
            bound: set[str] = set()
            for clause in node.children[:nclauses]:
                free |= self(clause.children[0]) - bound
                bound.add(clause.p("var"))
                if clause.kind == "for" and clause.p("posvar"):
                    bound.add(clause.p("posvar"))
            for child in node.children[nclauses:]:
                free |= self(child) - bound
            return frozenset(free)
        if kind == "quantified":
            variables = node.p("variables")
            free = set()
            bound = set()
            for variable, sequence in zip(variables, node.children[:-1]):
                free |= self(sequence) - bound
                bound.add(variable)
            free |= self(node.children[-1]) - bound
            return frozenset(free)
        if kind == "orderspec":
            return self(node.children[0])
        free = set()
        for child in node.children:
            free |= self(child)
        return frozenset(free)


class _PurityAnalysis:
    """Side-effect analysis: node constructors create fresh node identities
    every time they run, so subtrees containing them must never be shared
    at execution time."""

    def __init__(self, functions: dict[str, "Any"]):
        self._functions = {_strip_fn(name): planned
                           for name, planned in functions.items()}
        self._memo: dict[int, bool] = {}
        self._in_progress: set[str] = set()

    def impure(self, node: PlanNode) -> bool:
        cached = self._memo.get(node.id)
        if cached is not None:
            return cached
        result = self._compute(node)
        self._memo[node.id] = result
        return result

    def _compute(self, node: PlanNode) -> bool:
        if node.kind in ("elem", "text"):
            return True
        if node.kind == "call":
            name = _strip_fn(node.p("name"))
            planned = self._functions.get(name)
            if planned is not None:
                if name in self._in_progress:    # recursive: be conservative
                    return True
                self._in_progress.add(name)
                try:
                    if self.impure(planned.body):
                        return True
                finally:
                    self._in_progress.discard(name)
        return any(self.impure(child) for child in node.children)


@dataclass
class OptimizedModulePlan:
    """The rewritten plans of a module plus all executor-facing analyses."""

    body: PlanNode
    globals: list[tuple[str, PlanNode]]
    functions: dict[str, Any]               # name -> PlannedFunction
    cols: dict[int, frozenset[str]]
    shared: frozenset[int]
    impure: frozenset[int]
    free: FreeVariables
    report: RewriteReport

    def required_columns(self, node: PlanNode) -> frozenset[str]:
        return self.cols.get(node.id, FULL_COLUMNS)

    def is_shared(self, node: PlanNode) -> bool:
        return node.id in self.shared

    def is_pure(self, node: PlanNode) -> bool:
        return node.id not in self.impure

    def roots(self) -> list[PlanNode]:
        roots = [self.body]
        roots.extend(plan for _, plan in self.globals)
        roots.extend(function.body for function in self.functions.values())
        return roots

    def render(self) -> str:
        """The full plan dump: body, globals, functions, fired rewrites."""
        def annotate(node: PlanNode) -> str:
            notes = []
            required = self.cols.get(node.id)
            if required is not None and required != FULL_COLUMNS:
                notes.append(
                    "cols=[" + ",".join(
                        name for name in ("iter", "pos", "item")
                        if name in required) + "]")
            if node.id in self.shared:
                notes.append("(shared)")
            if node.kind == "flwor" and node.p("join") is not None:
                clause_index, conjunct_index, v_side = node.p("join")
                notes.append(
                    f"join-recognized[clause={clause_index},"
                    f"conjunct={conjunct_index},side={v_side}]")
            return " ".join(notes)

        sections = []
        for name, plan in self.globals:
            sections.append(f"declare variable ${name} :=")
            sections.append(render_plan(plan, shared=self.shared,
                                        annotate=annotate, indent="  "))
        for function in self.functions.values():
            sections.append(
                f"declare function {function.name}"
                f"({', '.join('$' + p for p in function.parameters)}) :=")
            sections.append(render_plan(function.body, shared=self.shared,
                                        annotate=annotate, indent="  "))
        sections.append(render_plan(self.body, shared=self.shared,
                                    annotate=annotate))
        sections.append(self.report.render())
        return "\n".join(sections)


def optimize(module_plan: "ModulePlan", options: Any = None) -> OptimizedModulePlan:
    """Run the rewrite pipeline over a module's logical plans.

    ``options`` is the engine's :class:`~repro.xquery.engine.EngineOptions`
    (or any object with ``join_recognition``, ``projection_pushdown`` and
    ``subplan_sharing`` attributes); ``None`` enables every rewrite.
    """
    join_recognition = getattr(options, "join_recognition", True)
    projection_pushdown = getattr(options, "projection_pushdown", True)
    subplan_sharing = getattr(options, "subplan_sharing", True)

    report = RewriteReport()
    free = FreeVariables(module_plan.functions)

    # 1. join recognition (rebuilds flwor nodes, so it runs first)
    body = module_plan.body
    globals_ = list(module_plan.globals)
    functions = dict(module_plan.functions)
    if join_recognition:
        rule = _JoinRecognition(module_plan.builder, free,
                                module_plan.global_names, report)
        body = rule.rewrite(body, frozenset())
        globals_ = [(name, rule.rewrite(plan, frozenset()))
                    for name, plan in globals_]
        rebuilt_functions = {}
        for name, planned in functions.items():
            new_body = rule.rewrite(planned.body, frozenset(planned.parameters))
            if new_body is not planned.body:
                planned = type(planned)(planned.name, planned.parameters,
                                        new_body)
            rebuilt_functions[name] = planned
        functions = rebuilt_functions
        # free-variable sets of rebuilt nodes are recomputed lazily
        free = FreeVariables(functions)

    roots = [body] + [plan for _, plan in globals_] \
        + [planned.body for planned in functions.values()]

    # 2. projection pushdown / dead-column pruning (required-columns pass)
    cols: dict[int, frozenset[str]] = {}
    if projection_pushdown:
        cols = _required_columns(roots, functions)
        pruned = sum(1 for required in cols.values()
                     if required != FULL_COLUMNS)
        if pruned:
            report.fire("projection-pushdown",
                        f"{pruned} operators need no pos column")

    # 3. common-subplan sharing (mark hash-consed nodes safe to memoise)
    purity = _PurityAnalysis(functions)
    impure = frozenset(node.id for root in roots for node in root.walk()
                       if purity.impure(node))
    shared: frozenset[int] = frozenset()
    if subplan_sharing:
        references = count_references(roots)
        shared = frozenset(
            node.id for root in roots for node in root.walk()
            if references.get(node.id, 0) > 1
            and node.kind not in _TRIVIAL_KINDS
            and node.id not in impure)
        if shared:
            report.fire("common-subexpressions",
                        f"{len(shared)} shared subplans will execute once")

    return OptimizedModulePlan(body=body, globals=globals_,
                               functions=functions, cols=cols,
                               shared=shared, impure=impure, free=free,
                               report=report)


# --------------------------------------------------------------------------- #
# join recognition
# --------------------------------------------------------------------------- #
class _JoinRecognition:
    """Annotate FLWOR nodes whose for-clause + where-conjunct pair forms a
    loop-invariant value join (the paper's ``indep``-driven rewrite)."""

    def __init__(self, builder: PlanBuilder, free: FreeVariables,
                 global_names: frozenset[str], report: RewriteReport):
        self.builder = builder
        self.free = free
        self.global_names = global_names
        self.report = report
        self._memo: dict[tuple[int, frozenset[str]], PlanNode] = {}

    def rewrite(self, node: PlanNode, bound: frozenset[str]) -> PlanNode:
        key = (node.id, bound & self.free(node))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._rewrite(node, bound)
        self._memo[key] = result
        return result

    def _rebuild(self, node: PlanNode, children: tuple[PlanNode, ...],
                 **extra: Any) -> PlanNode:
        if not extra and children == node.children:
            return node
        params = dict(node.params)
        params.update(extra)
        return self.builder.node(node.kind, children, **params)

    def _rewrite(self, node: PlanNode, bound: frozenset[str]) -> PlanNode:
        if node.kind == "flwor":
            return self._rewrite_flwor(node, bound)
        if node.kind == "quantified":
            variables = node.p("variables")
            children: list[PlanNode] = []
            inner = set(bound)
            for variable, sequence in zip(variables, node.children[:-1]):
                children.append(self.rewrite(sequence, frozenset(inner)))
                inner.add(variable)
            children.append(self.rewrite(node.children[-1], frozenset(inner)))
            return self._rebuild(node, tuple(children))
        children = tuple(self.rewrite(child, bound) for child in node.children)
        return self._rebuild(node, children)

    def _rewrite_flwor(self, node: PlanNode, bound: frozenset[str]) -> PlanNode:
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        norder = node.p("norder")
        clauses = list(node.children[:nclauses])
        rest = list(node.children[nclauses:])

        # rewrite clause binding sequences with the growing binding set,
        # remembering the bindings visible *before* each clause
        bound_before: list[frozenset[str]] = []
        inner = set(bound)
        new_clauses: list[PlanNode] = []
        for clause in clauses:
            bound_before.append(frozenset(inner))
            new_clauses.append(self._rebuild(
                clause, (self.rewrite(clause.children[0], frozenset(inner)),)))
            inner.add(clause.p("var"))
            if clause.kind == "for" and clause.p("posvar"):
                inner.add(clause.p("posvar"))
        full_bound = frozenset(inner)
        new_rest = [self.rewrite(child, full_bound) for child in rest]

        join = node.p("join")
        if join is None and has_where:
            where = new_rest[0]
            join = self._match_join(new_clauses, bound_before, where)
        if join is not None and node.p("join") is None:
            clause = new_clauses[join[0]]
            self.report.fire(
                "join-recognition",
                f"for ${clause.p('var')} evaluated as a value join "
                f"(clause {join[0]}, where conjunct {join[1]})")
            return self._rebuild(node, tuple(new_clauses + new_rest),
                                 join=join)
        return self._rebuild(node, tuple(new_clauses + new_rest))

    def _match_join(self, clauses: list[PlanNode],
                    bound_before: list[frozenset[str]],
                    where: PlanNode) -> tuple[int, int, int] | None:
        """First (clause, conjunct, v-side) triple forming a value join."""
        conjuncts = list(where.children) if where.kind == "and" else [where]
        for clause_index, clause in enumerate(clauses):
            if clause.kind != "for" or clause.p("posvar") is not None:
                continue
            variable = clause.p("var")
            outer = bound_before[clause_index]
            sequence_free = self.free(clause.children[0])
            # the binding sequence must be loop-invariant: no enclosing
            # bindings, no dynamic position()/last() registers (the context
            # document root is re-checked dynamically by the executor)
            if sequence_free & (outer | {"fs:position", "fs:last"}):
                continue
            allowed_other = outer | self.global_names | {"."}
            for conjunct_index, conjunct in enumerate(conjuncts):
                if conjunct.kind != "cmp-general":
                    continue
                left_free = self.free(conjunct.children[0])
                right_free = self.free(conjunct.children[1])
                if (variable in left_free and variable not in right_free
                        and left_free - {variable, "."} <= self.global_names
                        and right_free <= allowed_other):
                    return (clause_index, conjunct_index, 0)
                if (variable in right_free and variable not in left_free
                        and right_free - {variable, "."} <= self.global_names
                        and left_free <= allowed_other):
                    return (clause_index, conjunct_index, 1)
        return None


# --------------------------------------------------------------------------- #
# projection pushdown (required-columns analysis)
# --------------------------------------------------------------------------- #
def _required_columns(roots: list[PlanNode],
                      functions: dict[str, Any]) -> dict[int, frozenset[str]]:
    """Propagate required ``iter|pos|item`` columns from the roots down.

    Every root must deliver the full encoding; order- and position-free
    contexts relax the requirement for their inputs.  The result maps node
    ids to the union of the requirements imposed by all consumers.
    """
    user_functions = {_strip_fn(name) for name in functions}
    required: dict[int, frozenset[str]] = {}
    worklist: list[tuple[PlanNode, frozenset[str]]] = [
        (root, FULL_COLUMNS) for root in roots]

    while worklist:
        node, req = worklist.pop()
        merged = required.get(node.id, frozenset()) | req
        if merged == required.get(node.id):
            continue
        required[node.id] = merged
        for child, child_req in _child_requirements(node, merged,
                                                    user_functions):
            worklist.append((child, child_req))
    return required


def _child_requirements(node: PlanNode, req: frozenset[str],
                        user_functions: set[str]
                        ) -> list[tuple[PlanNode, frozenset[str]]]:
    kind = node.kind
    children = node.children
    if kind == "call":
        name = _strip_fn(node.p("name"))
        if name in user_functions:
            return [(child, FULL_COLUMNS) for child in children]
        if name in _ORDER_FREE_AGGREGATES:
            child_req = ITER_ONLY if name in ("count", "exists", "empty") \
                else NO_POS
            return [(child, child_req) for child in children]
        if name in _FIRST_ITEM_FUNCTIONS:
            return [(child, NO_POS) for child in children]
        return [(child, FULL_COLUMNS) for child in children]
    if kind in ("cmp-general", "cmp-value", "arith", "unary", "range",
                "and", "or"):
        return [(child, NO_POS) for child in children]
    if kind == "if":
        condition, then_branch, else_branch = children
        return [(condition, NO_POS), (then_branch, req), (else_branch, req)]
    if kind == "seq":
        child_req = FULL_COLUMNS if "pos" in req else NO_POS
        return [(child, child_req) for child in children]
    if kind == "flwor":
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        norder = node.p("norder")
        out: list[tuple[PlanNode, frozenset[str]]] = []
        for clause in children[:nclauses]:
            if clause.kind == "for" and clause.p("posvar") is None:
                out.append((clause.children[0], NO_POS))
            else:
                out.append((clause.children[0], FULL_COLUMNS))
        index = nclauses
        if has_where:
            out.append((children[index], NO_POS))
            index += 1
        for spec in children[index:index + norder]:
            out.append((spec.children[0], NO_POS))
        return_child = children[-1]
        if norder > 0 or "pos" in req:
            out.append((return_child, FULL_COLUMNS))
        else:
            out.append((return_child, NO_POS))
        return out
    if kind == "quantified":
        return [(child, NO_POS) for child in children]
    if kind == "step":
        # location steps read only (iter, item) of their context; predicate
        # verdicts are per-inner-iteration EBV / numeric values
        return [(children[0], NO_POS)] + [(predicate, NO_POS)
                                          for predicate in children[1:]]
    if kind == "filter":
        # positional predicates address the base by its pos column
        return [(children[0], FULL_COLUMNS)] + [(predicate, NO_POS)
                                                for predicate in children[1:]]
    if kind in ("elem", "avt", "text"):
        return [(child, NO_POS) for child in children]
    return [(child, FULL_COLUMNS) for child in children]
