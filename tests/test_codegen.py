"""Plan-to-Python codegen: compiled closures vs. the interpreter.

Every covered operator kind must execute bit-identically through its
specialized closure; uncovered subtrees (node constructors, user
functions) must fall back per node with a reported reason; and the
compiled program must share the plan cache's lifecycle (store-version
invalidation, options keying).
"""

from __future__ import annotations

import pytest

from repro import EngineOptions, MonetXQuery
from repro.relational import capture
from repro.xquery.codegen import CompiledProgram, compile_plan

from conftest import SMALL_XML


#: one query per covered operator kind (some exercise several at once)
KIND_QUERIES = {
    "const": "42",
    "seq": "(1, 2, 3)",
    "range": "1 to 4",
    "arith": "2 + 3 * 4",
    "unary": "-(1 + 2)",
    "cmp-value": "1 lt 2",
    "cmp-general": "(1, 2) = (2, 3)",
    "and-or": "1 = 1 and (2 = 3 or 4 = 4)",
    "if": 'if (count(//person) > 1) then "many" else "few"',
    "step": "/site/people/person/name",
    "step-predicate": '//person[@id = "person1"]/name/text()',
    "positional": "/site/people/person[2]/name",
    "last": "/site/people/person[last()]/name",
    "filter": "(1 to 9)[. mod 3 = 0]",
    "call": "count(//person)",
    "context-builtin": "string(/site/people/person[1]/name)",
    "flwor": ("for $p in /site/people/person "
              "where $p/profile/@income >= 30000 "
              "return $p/name/text()"),
    "flwor-join": ("for $p in /site/people/person "
                   "for $t in /site/closed_auctions/closed_auction "
                   "where $t/buyer/@person = $p/@id "
                   "return $t/price/text()"),
    "flwor-order": ("for $p in /site/people/person "
                    "order by $p/name/text() descending "
                    "return $p/name/text()"),
    "let": ("for $p in /site/people/person "
            "let $n := count($p/profile/interest) return $n"),
    "quantified": ("for $a in /site/open_auctions/open_auction "
                   "where some $b in $a/bidder "
                   "satisfies $b/increase/text() >= 5 "
                   "return $a/@id"),
    "var-global": "declare variable $n := count(//person); $n + 1",
}


@pytest.fixture
def engine() -> MonetXQuery:
    mxq = MonetXQuery()
    mxq.load_document_text(SMALL_XML, name="auction.xml")
    return mxq


class TestPerKindBitIdentity:
    @pytest.mark.parametrize("kind", sorted(KIND_QUERIES))
    def test_compiled_matches_interpreted(self, engine, kind):
        query = KIND_QUERIES[kind]
        with capture() as trace:
            compiled = engine.query(
                query, options=EngineOptions(codegen=True))
        interpreted = engine.query(
            query, options=EngineOptions(codegen=False))
        assert compiled.serialize() == interpreted.serialize(), query
        # the compiled path must actually have been taken
        assert trace.count("plan.codegen") == 1

    def test_interpreter_run_emits_no_codegen_trace(self, engine):
        with capture() as trace:
            engine.query("count(//person)",
                         options=EngineOptions(codegen=False))
        assert trace.count("plan.codegen") == 0


class TestFallbacks:
    def test_constructor_subtree_falls_back(self, engine):
        prepared = engine.prepare(
            "for $p in /site/people/person "
            "return <n>{count($p/profile/interest)}</n>")
        assert prepared.compiled is not None
        assert "node constructor" in prepared.compiled.fallbacks.values()
        # covered operators around the constructor still compile
        assert prepared.compiled.compiled_count > 0
        compiled = prepared.run().serialize()
        interpreted = engine.query(
            prepared.text, options=EngineOptions(codegen=False)).serialize()
        assert compiled == interpreted

    def test_user_function_falls_back_but_body_compiles(self, engine):
        query = ("declare function local:rich($p) "
                 "{ $p/profile/@income >= 40000 }; "
                 "for $p in /site/people/person "
                 "where local:rich($p) return $p/name/text()")
        prepared = engine.prepare(query)
        assert "user function" in prepared.compiled.fallbacks.values()
        # the function *body*'s operators are covered: they run through
        # compiled closures when the interpreter evaluates the call
        assert prepared.compiled.compiled_count > 0
        assert prepared.run().strings() == ["Alice"]

    def test_fallback_reasons_in_explain(self, engine):
        rendered = engine.explain(
            "for $p in /site/people/person return <n>{$p/name}</n>")
        assert "(interpreted: node constructor)" in rendered
        assert "(codegen)" in rendered

    def test_coverage_report_always_fires(self, engine):
        # coverage is computed unconditionally so plan dumps agree
        for codegen in (True, False):
            prepared = engine.prepare(
                "count(//person)", options=EngineOptions(codegen=codegen))
            assert prepared.plan.report.fired("codegen")

    def test_fallback_report_entries(self, engine):
        prepared = engine.prepare("<r>{count(//person)}</r>")
        entries = prepared.plan.report.fired("codegen-fallback")
        assert any("node constructor" in entry for entry in entries)


class TestPlanCacheIntegration:
    def test_compiled_program_cached_on_prepared_query(self, engine):
        first = engine.prepare("count(//person)")
        second = engine.prepare("count(//person)")
        assert first is second
        assert isinstance(first.compiled, CompiledProgram)
        assert second.compiled is first.compiled

    def test_store_version_bump_invalidates(self, engine):
        before = engine.prepare("count(//person)")
        engine.load_document_text("<extra/>", name="extra.xml",
                                  default_context=False)
        after = engine.prepare("count(//person)")
        assert after is not before
        assert after.compiled is not before.compiled
        assert after.run().items == [3]

    def test_codegen_off_prepares_without_compiled_program(self, engine):
        prepared = engine.prepare("count(//person)",
                                  options=EngineOptions(codegen=False))
        assert prepared.compiled is None
        assert prepared.run().items == [3]

    def test_options_keying_separates_compiled_and_interpreted(self, engine):
        compiled = engine.prepare("count(//person)",
                                  options=EngineOptions(codegen=True))
        interpreted = engine.prepare("count(//person)",
                                     options=EngineOptions(codegen=False))
        assert compiled is not interpreted

    def test_stats_counters(self, engine):
        engine.prepare("count(//person)")
        engine.prepare("count(//person)")        # cache hit: no recount
        engine.prepare("<r>{count(//person)}</r>")
        stats = engine.plan_cache_stats_snapshot()
        assert stats.compiled == 2
        assert stats.codegen_fallbacks >= 1      # the element constructor
        cleared = engine.plan_cache_stats
        cleared.clear()
        assert cleared.compiled == cleared.codegen_fallbacks == 0

    def test_codegen_off_counts_nothing(self):
        engine = MonetXQuery(EngineOptions(codegen=False))
        engine.load_document_text(SMALL_XML, name="auction.xml")
        engine.prepare("count(//person)")
        stats = engine.plan_cache_stats_snapshot()
        assert stats.compiled == 0
        assert stats.codegen_fallbacks == 0


class TestPlanRenderParity:
    def test_plan_render_identical_with_and_without_codegen(self, engine):
        """The codegen switch changes execution only: the optimized plan
        (including the coverage annotations) renders byte-identically."""
        queries = [
            "count(//person)",
            "for $p in /site/people/person return <n>{$p/name}</n>",
            KIND_QUERIES["flwor-join"],
        ]
        for query in queries:
            on = engine.prepare(query, options=EngineOptions(codegen=True))
            off = engine.prepare(query, options=EngineOptions(codegen=False))
            assert on.explain() == off.explain(), query


class TestPositionalFusedChains:
    """Satellite: ``[k]`` / ``[last()]`` predicates inside fused chains."""

    POSITIONAL_QUERIES = [
        "/site/people/person[1]/name",
        "/site/people/person[2]/name/text()",
        "/site/people/person[last()]/name",
        "count(/site/open_auctions/open_auction[1]/bidder)",
        "//open_auction[last()]/itemref",
        "/site/closed_auctions/closed_auction[3]/price/text()",
        "/site/people/person[7]/name",          # out of range: empty
    ]

    @pytest.mark.parametrize("query", POSITIONAL_QUERIES)
    def test_positional_chains_fuse_and_agree(self, engine, query):
        with capture() as trace:
            fused = engine.query(query)
        assert trace.count("step.chain-positional") >= 1, query
        baseline = engine.query(
            query, options=EngineOptions(step_fusion=False))
        assert fused.serialize() == baseline.serialize(), query

    def test_positional_chain_under_interpreter_too(self, engine):
        """The chain runner is shared: the interpreter (codegen=False)
        takes the same positional fused path."""
        with capture() as trace:
            result = engine.query("/site/people/person[2]/name",
                                  options=EngineOptions(codegen=False))
        assert trace.count("step.chain-positional") == 1
        assert result.strings() == ["Bob"]


class TestCompileFunction:
    def test_compile_plan_covers_and_reports(self, engine):
        prepared = engine.prepare("count(//person)")
        program = compile_plan(prepared.plan, prepared.options)
        assert program.compiled_count > 0
        assert program.fallbacks == {}

    def test_compiled_program_is_shareable(self, engine):
        """One CompiledProgram serves many executions (and threads): the
        closures keep no run state, so repeated runs agree."""
        prepared = engine.prepare(KIND_QUERIES["flwor-join"])
        first = prepared.run().serialize()
        for _ in range(3):
            assert prepared.run().serialize() == first


class TestServingIntegration:
    def test_server_stats_render_counters(self):
        from repro.server import QueryServer

        with QueryServer(threads=2) as server:
            server.load_document_text(SMALL_XML, name="auction.xml")
            for _ in range(3):
                assert server.execute("count(//person)").items == [3]
            stats = server.stats()
            assert stats.plan_cache.compiled >= 1
            rendered = stats.render()
            assert "compiled=" in rendered
            assert "fallback=" in rendered

    def test_process_pool_serves_compiled_plans(self):
        from repro.server import QueryServer

        queries = [
            "count(//person)",
            KIND_QUERIES["flwor-join"],
            "/site/people/person[2]/name/text()",
        ]
        with QueryServer(threads=2) as threaded, \
                QueryServer(processes=1) as pooled:
            threaded.load_document_text(SMALL_XML, name="auction.xml")
            pooled.load_document_text(SMALL_XML, name="auction.xml")
            for query in queries:
                for _ in range(2):    # second pass: worker plan-cache hit
                    assert pooled.submit(query).result().serialize() \
                        == threaded.execute(query).serialize(), query
