"""End-to-end evaluation of XQuery expressions through the relational engine."""

import math

import pytest

from repro import MonetXQuery
from repro.errors import (XQueryRuntimeError, XQueryTypeError,
                          XQueryUnsupportedError)


def run(engine, query, **kwargs):
    return engine.query(query, **kwargs)


class TestBasics:
    def test_literal(self, engine):
        assert run(engine, "42").items == [42]

    def test_string_literal(self, engine):
        assert run(engine, '"hello"').items == ["hello"]

    def test_sequence_and_nesting(self, engine):
        assert run(engine, "(1, (2, 3), ())").items == [1, 2, 3]

    def test_arithmetic(self, engine):
        assert run(engine, "1 + 2 * 3").items == [7]
        assert run(engine, "7 idiv 2").items == [3]
        assert run(engine, "7 mod 2").items == [1]
        assert run(engine, "-(3 + 1)").items == [-4]

    def test_division_produces_float(self, engine):
        assert run(engine, "7 div 2").items == [3.5]

    def test_range_expression(self, engine):
        assert run(engine, "2 to 5").items == [2, 3, 4, 5]

    def test_value_and_general_comparison(self, engine):
        assert run(engine, "1 eq 1").items == [True]
        assert run(engine, "(1, 2, 3) = 3").items == [True]
        assert run(engine, "(1, 2) = (5, 6)").items == [False]

    def test_if_then_else(self, engine):
        assert run(engine, 'if (1 < 2) then "yes" else "no"').items == ["yes"]

    def test_and_or(self, engine):
        assert run(engine, "1 = 1 and 2 = 3").items == [False]
        assert run(engine, "1 = 1 or 2 = 3").items == [True]

    def test_empty_sequence_result(self, engine):
        assert run(engine, "()").items == []

    def test_unbound_variable_raises(self, engine):
        with pytest.raises(XQueryRuntimeError):
            run(engine, "$nope")


class TestFLWOR:
    def test_simple_for(self, engine):
        assert run(engine, "for $x in (1, 2, 3) return $x * 10").items == [10, 20, 30]

    def test_for_over_empty_sequence(self, engine):
        assert run(engine, "for $x in () return $x").items == []

    def test_let_binding(self, engine):
        assert run(engine, "let $x := (1, 2) return count($x)").items == [2]

    def test_nested_for_produces_cartesian_order(self, engine):
        result = run(engine, 'for $x in (1, 2) for $y in ("a", "b") '
                             'return concat($x, $y)')
        assert result.items == ["1a", "1b", "2a", "2b"]

    def test_where_filters_tuples(self, engine):
        assert run(engine, "for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x"
                   ).items == [2, 4]

    def test_positional_variable(self, engine):
        result = run(engine, 'for $x at $i in ("a", "b", "c") return $i')
        assert result.items == [1, 2, 3]

    def test_order_by_ascending_descending(self, engine):
        assert run(engine, "for $x in (2, 3, 1) order by $x return $x"
                   ).items == [1, 2, 3]
        assert run(engine, "for $x in (2, 3, 1) order by $x descending return $x"
                   ).items == [3, 2, 1]

    def test_order_by_string_keys(self, engine):
        result = run(engine, 'for $x in ("pear", "apple", "fig") order by $x return $x')
        assert result.items == ["apple", "fig", "pear"]

    def test_for_inside_let_counts_per_binding(self, engine):
        query = ("for $p in (1, 2, 3) "
                 "let $hits := for $q in (1, 2, 3, 4) where $q <= $p return $q "
                 "return count($hits)")
        assert run(engine, query).items == [1, 2, 3]

    def test_declared_variable(self, engine):
        assert run(engine, "declare variable $base := 5; $base * 2").items == [10]

    def test_user_function(self, engine):
        assert run(engine, "declare function local:twice($x) { 2 * $x }; "
                           "local:twice(21)").items == [42]

    def test_recursive_function_rejected(self, engine):
        with pytest.raises(XQueryUnsupportedError):
            run(engine, "declare function local:f($x) { local:f($x) }; local:f(1)")

    def test_quantified_some_every(self, engine):
        assert run(engine, "some $x in (1, 2, 3) satisfies $x > 2").items == [True]
        assert run(engine, "every $x in (1, 2, 3) satisfies $x > 2").items == [False]
        assert run(engine, "every $x in () satisfies $x > 2").items == [True]


class TestPaths:
    def test_child_and_attribute_steps(self, engine):
        result = run(engine, '/site/people/person[@id = "person1"]/name/text()')
        assert result.strings() == ["Bob"]

    def test_descendant_step(self, engine):
        assert run(engine, "count(//person)").items == [3]

    def test_wildcard_step(self, engine):
        assert run(engine, "count(/site/*)").items == [4]

    def test_positional_predicate(self, engine):
        result = run(engine, "/site/open_auctions/open_auction[1]/@id")
        assert result.atomized() == ["open0"]

    def test_last_predicate(self, engine):
        result = run(engine, "for $a in /site/open_auctions/open_auction[1] "
                             "return $a/bidder[last()]/increase/text()")
        assert result.strings() == ["7"]

    def test_boolean_predicate_with_outer_variable(self, engine):
        query = ('for $i in ("item0", "item2") '
                 'return count(/site/closed_auctions/closed_auction[itemref/@item = $i])')
        assert run(engine, query).items == [1, 1]

    def test_parent_and_ancestor_axes(self, engine):
        assert run(engine, "count(//increase/parent::bidder)").items == [2]
        assert run(engine, "count(//increase[1]/ancestor::open_auction)").items == [1]

    def test_following_sibling(self, engine):
        result = run(engine, "/site/people/person[1]/following-sibling::person/@id")
        assert result.atomized() == ["person1", "person2"]

    def test_text_node_step(self, engine):
        assert run(engine, "/site/people/person[1]/name/text()").strings() == ["Alice"]

    def test_path_results_in_document_order_without_duplicates(self, engine):
        result = run(engine, "(//person/.., //person)/name/text()")
        # parent of person is <people>; its name children are the person names
        assert result.strings() == ["Alice", "Bob", "Carol"]

    def test_step_on_atomic_raises(self, engine):
        with pytest.raises(XQueryTypeError):
            run(engine, "for $x in (1, 2) return $x/name")

    def test_doc_function(self, engine):
        assert run(engine, 'count(doc("auction.xml")/site)').items == [1]

    def test_absolute_path_without_context(self):
        empty_engine = MonetXQuery()
        with pytest.raises(XQueryRuntimeError):
            empty_engine.query("/site")


class TestConstructionQueries:
    def test_element_with_attribute_template(self, engine):
        result = run(engine, 'for $p in /site/people/person '
                             'return <p name="{$p/name/text()}"/>')
        assert result.serialize() == ('<p name="Alice"/><p name="Bob"/>'
                                      '<p name="Carol"/>')

    def test_element_content_copies_subtrees(self, engine):
        result = run(engine, "<wrap>{ /site/regions//item[1]/name }</wrap>")
        assert result.serialize() == "<wrap><name>gold watch</name></wrap>"

    def test_atomic_content_becomes_text(self, engine):
        assert run(engine, "<n>{ 1 + 1 }</n>").serialize() == "<n>2</n>"

    def test_text_constructor(self, engine):
        assert run(engine, 'text { "hello" }').serialize() == "hello"

    def test_nested_construction(self, engine):
        result = run(engine, "<a><b>{ count(//person) }</b></a>")
        assert result.serialize() == "<a><b>3</b></a>"


class TestJoinsAndComparisonQueries:
    def test_equi_join_counts(self, engine):
        query = ("for $p in /site/people/person "
                 "let $a := for $t in /site/closed_auctions/closed_auction "
                 "          where $t/buyer/@person = $p/@id return $t "
                 "return count($a)")
        assert run(engine, query).items == [2, 0, 1]

    def test_join_results_identical_with_and_without_recognition(self, engine):
        query = ("for $p in /site/people/person "
                 "let $a := for $t in /site/closed_auctions/closed_auction "
                 "          where $t/buyer/@person = $p/@id return $t "
                 "return count($a)")
        fast = run(engine, query).items
        slow = run(engine, query,
                   options=engine.options.replace(join_recognition=False)).items
        assert fast == slow

    def test_theta_join_with_existential_semantics(self, engine):
        query = ("for $p in /site/people/person "
                 "let $cheap := for $i in /site/open_auctions/open_auction/initial "
                 "              where $p/profile/@income > 100 * exactly-one($i/text()) "
                 "              return $i "
                 "return count($cheap)")
        assert run(engine, query).items == [2, 2, 0]

    def test_general_comparison_existential_on_sequences(self, engine):
        assert run(engine, "(1, 2, 3) < (0, 2)").items == [True]
        assert run(engine, "(5, 6) < (1, 2)").items == [False]
