"""Existential comparison and join evaluation strategies (Section 4.2).

XQuery's general comparisons (``= != < <= > >=``) have existential
semantics: the comparison is true as soon as *any* pair of items from the
two operand sequences satisfies the underlying value comparison.  The module
implements the two relational strategies of Figure 8:

* :func:`existential_join` with ``strategy="dedup"`` — theta-join the two
  (iteration, value) relations on the value predicate and eliminate the
  duplicate iteration pairs afterwards (the generally applicable plan of
  Figure 8a);
* ``strategy="aggregate"`` — for the order comparisons, aggregate each
  iteration group to its minimum / maximum first, so the theta-join produces
  unique iteration pairs directly (Figure 8b);
* ``strategy="auto"`` picks the aggregate plan whenever the comparison
  allows it.

:func:`existential_compare` applies the same machinery to the *intra-loop*
case (both operand sequences keyed by the same ``iter``), producing the
boolean result per iteration.
"""

from __future__ import annotations

from typing import Any

from ..relational import explain
from ..relational import operators as ops
from ..relational.column import Column
from ..relational.properties import TableProps
from ..relational.table import Table
from .types import atomize, to_number


_FLIPPED = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
_MIN_MAX_PLAN = {
    # op -> (aggregate for the left group, aggregate for the right group)
    "lt": ("min", "max"),
    "le": ("min", "max"),
    "gt": ("max", "min"),
    "ge": ("max", "min"),
}


def flip_comparison(op: str) -> str:
    """The comparison to use when the operands are swapped."""
    return _FLIPPED[op]


def _value_table(rows: list[tuple[int, Any]], group_name: str) -> Table:
    table = Table([
        Column(group_name, [row[0] for row in rows]),
        Column("value", [atomize(row[1]) for row in rows]),
    ], props=TableProps(order=(group_name,)))
    return table


def existential_join(left: list[tuple[int, Any]], right: list[tuple[int, Any]],
                     op: str, *, strategy: str = "auto",
                     numeric: bool | None = None) -> list[tuple[int, int]]:
    """Distinct ``(left_group, right_group)`` pairs satisfying the comparison.

    ``left`` and ``right`` are lists of ``(group, value)`` pairs (values are
    atomized items).  ``numeric=True`` forces numeric promotion of both
    sides; ``None`` promotes automatically when any value is numeric.
    """
    if not left or not right:
        return []
    if strategy not in ("auto", "dedup", "aggregate"):
        raise ValueError(f"unknown strategy {strategy!r}")

    left_rows = [(group, atomize(value)) for group, value in left]
    right_rows = [(group, atomize(value)) for group, value in right]

    if numeric is None:
        numeric = any(isinstance(value, (int, float)) and not isinstance(value, bool)
                      for _, value in left_rows + right_rows)
    if numeric:
        left_rows = [(group, to_number(value)) for group, value in left_rows]
        right_rows = [(group, to_number(value)) for group, value in right_rows]
        left_rows = [(group, value) for group, value in left_rows if value is not None]
        right_rows = [(group, value) for group, value in right_rows if value is not None]
    else:
        left_rows = [(group, str(value)) for group, value in left_rows]
        right_rows = [(group, str(value)) for group, value in right_rows]

    chosen = strategy
    if chosen == "auto":
        chosen = "aggregate" if op in _MIN_MAX_PLAN else "dedup"
    if chosen == "aggregate" and op not in _MIN_MAX_PLAN:
        chosen = "dedup"

    left_table = _value_table(left_rows, "iter1")
    right_table = _value_table(right_rows, "iter2")

    if chosen == "aggregate":
        left_kind, right_kind = _MIN_MAX_PLAN[op]
        left_table = ops.aggregate(left_table, "iter1",
                                   [("value", left_kind, "value")])
        right_table = ops.aggregate(right_table, "iter2",
                                    [("value", right_kind, "value")])
        right_table = ops.project(right_table, {"iter2": "iter2", "value2": "value"})
        joined = ops.theta_join(left_table, right_table, "value", "value2", op)
        pairs = sorted(zip(joined.col("iter1"), joined.col("iter2")))
        explain.record("existential", "existential.aggregate",
                       len(left_rows) + len(right_rows), len(pairs), detail=op)
        return pairs

    right_table = ops.project(right_table, {"iter2": "iter2", "value2": "value"})
    joined = ops.theta_join(left_table, right_table, "value", "value2", op)
    projected = ops.project(joined, ("iter1", "iter2"))
    projected = ops.distinct(projected, ("iter1", "iter2"))
    pairs = sorted(zip(projected.col("iter1"), projected.col("iter2")))
    explain.record("existential", "existential.dedup",
                   len(left_rows) + len(right_rows), len(pairs), detail=op)
    return pairs


def existential_compare(left: dict[int, list[Any]], right: dict[int, list[Any]],
                        op: str, *, strategy: str = "auto") -> set[int]:
    """Iterations for which the general comparison is true (intra-loop case).

    ``left`` and ``right`` map an iteration to the (atomized) items of the
    respective operand sequence in that iteration.  The relational plan
    behind this is an equi-join on ``iter`` followed by the value comparison;
    because both inputs arrive ordered on ``iter``, the join degenerates to a
    per-iteration merge.  An empty operand sequence makes the comparison
    false for that iteration.  With ``strategy`` "aggregate"/"auto" the order
    comparisons only inspect the min/max of each side (Figure 8b applied per
    iteration).
    """
    true_iterations: set[int] = set()
    use_aggregate = strategy in ("auto", "aggregate") and op in _MIN_MAX_PLAN
    for iteration, left_values in left.items():
        right_values = right.get(iteration)
        if not right_values or not left_values:
            continue
        left_atoms = [atomize(value) for value in left_values]
        right_atoms = [atomize(value) for value in right_values]
        numeric = any(isinstance(value, (int, float)) and not isinstance(value, bool)
                      for value in left_atoms + right_atoms)
        if numeric:
            left_atoms = [to_number(value) for value in left_atoms]
            right_atoms = [to_number(value) for value in right_atoms]
            left_atoms = [value for value in left_atoms if value is not None]
            right_atoms = [value for value in right_atoms if value is not None]
            if not left_atoms or not right_atoms:
                continue
        else:
            left_atoms = [str(value) for value in left_atoms]
            right_atoms = [str(value) for value in right_atoms]
        if _any_pair_matches(left_atoms, right_atoms, op,
                             use_aggregate=use_aggregate):
            true_iterations.add(iteration)
    return true_iterations


def _any_pair_matches(left_atoms: list[Any], right_atoms: list[Any], op: str, *,
                      use_aggregate: bool) -> bool:
    if op == "eq":
        return not set(left_atoms).isdisjoint(right_atoms)
    if op == "ne":
        if len(set(left_atoms)) > 1 or len(set(right_atoms)) > 1:
            return True
        return left_atoms[0] != right_atoms[0]
    if use_aggregate:
        left_kind, right_kind = _MIN_MAX_PLAN[op]
        left_value = min(left_atoms) if left_kind == "min" else max(left_atoms)
        right_value = max(right_atoms) if right_kind == "max" else min(right_atoms)
        return ops.compare_values(op, left_value, right_value)
    return any(ops.compare_values(op, left_value, right_value)
               for left_value in left_atoms for right_value in right_atoms)
