"""Table 1 / Figure 16 — XMark query evaluation: MXQ vs. comparison systems.

The original table compares MonetDB/XQuery against eXist, Galax,
BerkeleyDB-XML and X-Hive.  Those systems are unavailable; the comparison
engine here is the conventional tree-walking interpreter
(:mod:`repro.baselines`), which represents the same class of per-iteration,
nested-loop execution.  Expected shape: the relational engine wins across the
board, and by orders of magnitude on the join queries Q8–Q12 — the
normalised ratios of Figure 16 are the per-query time quotients.
"""

import pytest

from repro.baselines import TreeWalkingInterpreter
from repro.xmark import XMARK_QUERIES
from repro.xml.document import NodeRef


# the full 20-query sweep for the relational engine; the baseline runs a
# representative subset (its join queries are deliberately quadratic and the
# point is made already at this scale)
ENGINE_QUERIES = tuple(sorted(XMARK_QUERIES))
BASELINE_QUERIES = (1, 2, 3, 5, 6, 8, 10, 11, 13, 14, 17, 20)


@pytest.mark.parametrize("query", ENGINE_QUERIES)
def test_table1_monetdb_xquery(benchmark, xmark_engine, query):
    text = XMARK_QUERIES[query]

    def run():
        xmark_engine.reset_transient()
        return len(xmark_engine.query(text))

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["table"] = "table1"
    benchmark.extra_info["system"] = "MXQ"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["result_size"] = result


@pytest.mark.parametrize("query", BASELINE_QUERIES)
def test_table1_baseline_interpreter(benchmark, xmark_engine, query):
    text = XMARK_QUERIES[query]
    container = xmark_engine.store.get("auction.xml")

    def run():
        interpreter = TreeWalkingInterpreter(xmark_engine.store)
        return len(interpreter.run(text, context_item=NodeRef(container, 0)))

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["table"] = "table1"
    benchmark.extra_info["system"] = "baseline"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["result_size"] = result
