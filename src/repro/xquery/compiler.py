"""The loop-lifting XQuery compiler: logical plans executed operator-at-a-time.

The compiler follows Pathfinder's staging (Section 2.1): a parsed module is
first translated into a **logical plan DAG** (:mod:`repro.xquery.planner`),
the DAG is **rewritten** — join recognition, projection pushdown,
common-subplan sharing (:mod:`repro.relational.rewrites`) — and only then
does the executor in this module walk the optimized DAG into the eager
relational operators.  As in MonetDB's operator-at-a-time model every
physical operator materialises its result; the intermediates carry the
column properties that drive physical algorithm choice (Section 4.1).

Every expression is executed *with respect to its enclosing ``for``-loops*,
represented by a unary ``loop`` relation; its value is an ``iter|pos|item``
table.  The executor implements:

* loop-lifting of constants, variables and FLWOR expressions (scope maps,
  back-mapping, ``order by`` via per-tuple rank keys),
* conditionals via loop splitting (Figure 5),
* general comparisons with existential semantics (Section 4.2),
* XPath location steps through the loop-lifted staircase join with optional
  nametest pushdown (Section 3), including positional and boolean
  predicates via nested iteration scopes,
* **join execution** for the FLWOR blocks the rewrite optimizer annotated
  (Section 4.1, ``indep`` property): the loop-invariant binding sequence is
  evaluated once and theta-joined against the outer loop with existential
  semantics instead of a lifted Cartesian product — the rewrite that makes
  XMark Q8–Q12 scale linearly,
* **projection pushdown**: operators whose consumers ignore sequence order
  and positions skip the sorts/renumberings that only maintain ``pos``,
* **shared-subplan memoisation**: hash-consed DAG nodes marked by the CSE
  rewrite execute once per (loop, environment) and are reused afterwards,
* element/text constructors into the transient document container,
* the built-in function library and non-recursive user-defined functions.
"""

from __future__ import annotations

from typing import Any

from ..errors import (XQueryRuntimeError, XQueryTypeError,
                      XQueryUnsupportedError)
from ..relational import explain
from ..relational import operators as ops
from ..relational.column import Column
from ..relational.cardinality import StoreStatistics
from ..relational.plan import PlanNode
from ..relational.properties import TableProps
from ..relational.rewrites import (JoinEstimate, OptimizedModulePlan,
                                   flatten_conjuncts, optimize,
                                   positional_predicate_spec)
from ..relational import wcoj
from ..relational.sorting import sort
from ..relational.table import Table
from ..staircase.axes import NodeTest
from ..staircase.iterative import StaircaseStats
from ..xml.document import NodeRef
from . import ast, functions
from .constructors import construct_element, construct_text
from .joins import (existential_compare, existential_join, flip_comparison,
                    is_numeric_value)
from .planner import PlannedFunction, plan_module
from .sequences import (back_map, empty_sequence, ensure_sequence_order,
                        for_binding, from_iter_items, items_by_iteration,
                        lift_constant, lift_environment, lift_items,
                        make_loop, restrict_sequence, sequence_items,
                        singleton_per_iter, unit_loop)
from .steps import StepOptions, axis_step, axis_step_chain
from .types import (atomize, effective_boolean_value, to_number, to_string)


class LoopLiftingCompiler:
    """Plans, optimizes and executes a parsed query against an engine."""

    def __init__(self, engine):
        self.engine = engine
        self.options = engine.options
        self.user_functions: dict[str, PlannedFunction] = {}
        self.global_items: dict[str, list[Any]] = {}
        self.step_stats = StaircaseStats()
        self._call_stack: list[str] = []
        self._plan: OptimizedModulePlan | None = None
        self._memo: dict[tuple, Any] = {}
        self._memo_pins: list[Any] = []
        self._subplan_cache = getattr(engine, "subplan_cache", None)
        if not getattr(self.options, "cross_query_caching", True):
            self._subplan_cache = None
        self.step_options = StepOptions(
            loop_lifted_child=self.options.loop_lifted_child,
            loop_lifted_descendant=self.options.loop_lifted_descendant,
            loop_lifted_other=self.options.loop_lifted_other,
            nametest_pushdown=self.options.nametest_pushdown,
        )
        #: node id -> compiled closure when executing under a codegen'd
        #: plan (:mod:`repro.xquery.codegen`); ``None`` = pure interpreter
        self._codegen: dict[int, Any] | None = None

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def run(self, module: ast.Module, context_item: Any | None = None) -> list[Any]:
        """Plan, optimize and evaluate a parsed module."""
        statistics = StoreStatistics.from_store(self.engine.store)
        optimized = optimize(plan_module(module), self.options,
                             statistics=statistics)
        return self.run_optimized(optimized, context_item=context_item)

    def run_optimized(self, optimized: OptimizedModulePlan,
                      context_item: Any | None = None,
                      compiled: Any | None = None) -> list[Any]:
        """Evaluate an already optimized module plan (the plan-cache path).

        ``compiled`` is the plan's :class:`~repro.xquery.codegen.
        CompiledProgram`: its specialized closures take over execution for
        every covered operator, the interpreter serves the rest.
        """
        self._plan = optimized
        self.user_functions = dict(optimized.functions)
        self._memo = {}
        self._memo_pins = []
        if compiled is not None:
            self._codegen = compiled.by_id
            explain.record("plan", "plan.codegen", compiled.compiled_count,
                           len(compiled.fallbacks),
                           detail=f"{compiled.compiled_count} compiled "
                                  "operators")
        else:
            self._codegen = None
        loop = unit_loop()
        env: dict[str, Any] = {}
        if context_item is not None:
            env["."] = lift_constant(loop, context_item)
        for name, plan in optimized.globals:
            table = self.compile(plan, loop, env)
            self.global_items[name] = sequence_items(table, 1)
        result = self.compile(optimized.body, loop, env)
        result = ensure_sequence_order(
            result, use_properties=self.options.order_optimization)
        return sequence_items(result, 1)

    # ------------------------------------------------------------------ #
    # dispatcher (with shared-subplan memoisation)
    # ------------------------------------------------------------------ #
    def compile(self, node: PlanNode, loop, env: dict):
        """Execute one plan node under the given loop relation/environment."""
        codegen = self._codegen
        if codegen is not None:
            # the compiled closure carries its own subplan-cache / memo
            # wrappers, baked in at codegen time
            fn = codegen.get(node.id)
            if fn is not None:
                return fn(self, loop, env)
        if self._subplan_cache is not None and self._plan is not None:
            fingerprint = self._plan.cache_key(node)
            if fingerprint is not None:
                materialized = self._materialized_subplan(node, fingerprint,
                                                          loop, env)
                if materialized is not None:
                    return materialized
        key = None
        if self._plan is not None and self._plan.is_shared(node) \
                and self._plan.is_pure(node):
            key = self._memo_key(node, loop, env)
            hit = self._memo.get(key)
            if hit is not None:
                explain.record("plan", "plan.cse.reuse", hit.row_count,
                               hit.row_count, detail=node.kind)
                return hit
        method = getattr(self, f"_exec_{node.kind.replace('-', '_')}", None)
        if method is None:  # pragma: no cover - planner emits known kinds
            raise XQueryUnsupportedError(f"unsupported plan operator {node.kind}")
        result = method(node, loop, env)
        if key is not None:
            self._memo[key] = result
        return result

    def _materialized_subplan(self, node: PlanNode, fingerprint: str,
                              loop, env: dict, evaluate=None):
        """Serve a cacheable absolute-path subplan from the shared
        cross-query cache (evaluating and materializing it on a miss).

        The rewrite optimizer established statically that the subplan is a
        pure absolute path depending on at most the context item; what
        remains dynamic is pinning down *which* document root every
        iteration sees.  When all iterations share one persistent root the
        result is loop-invariant: it is computed once under a unit loop,
        cached keyed on (fingerprint, store version, container identity,
        root), and re-lifted into the current loop.  Returns ``None`` to
        fall back to ordinary evaluation (no/ambiguous/transient context).
        """
        context = env.get(".")
        if context is None or loop.row_count == 0:
            return None
        container = None
        root_pre = -1
        for item in context.col("item"):
            if not isinstance(item, NodeRef):
                return None
            if item.container.transient:
                return None
            pre = item.container.root_pre(item.pre)
            if container is None:
                container, root_pre = item.container, pre
            elif container is not item.container or root_pre != pre:
                return None
        if container is None:
            return None
        key = self._subplan_cache.make_key(
            fingerprint, self.engine.store.version, container, root_pre)
        items = self._subplan_cache.lookup(key)
        if items is None:
            base_loop = unit_loop()
            base_env = {".": lift_constant(base_loop,
                                           NodeRef(container, root_pre))}
            # dispatch directly (not via compile()) so this node cannot
            # consult the cache again; nested prefix steps still go through
            # compile() and populate their own cache slots.  Codegen'd
            # plans pass their raw (unwrapped) closure as ``evaluate`` for
            # the same reason.
            if evaluate is None:
                evaluate = getattr(self,
                                   f"_exec_{node.kind.replace('-', '_')}")
                table = evaluate(node, base_loop, base_env)
            else:
                table = evaluate(self, base_loop, base_env)
            items = tuple(sequence_items(table, 1))
            items = self._subplan_cache.insert(key, items, pin=container)
            explain.record("plan", "plan.subplan.materialize",
                           len(items), len(items), detail=node.kind)
        else:
            explain.record("plan", "plan.subplan.hit",
                           len(items), len(items), detail=node.kind)
        return lift_items(loop, items)

    def _memo_key(self, node: PlanNode, loop, env: dict) -> tuple:
        """Fingerprint of everything a subplan's value can depend on.

        The pinned tables keep the ``id()`` values stable for the lifetime
        of this execution.
        """
        self._memo_pins.append(loop)
        parts: list[Any] = [node.id, id(loop)]
        for name in sorted(self._plan.free(node)):
            table = env.get(name)
            if table is None:
                parts.append((name, None))
            else:
                self._memo_pins.append(table)
                parts.append((name, id(table)))
        return tuple(parts)

    def _needs_pos(self, node: PlanNode) -> bool:
        if self._plan is None:
            return True
        return "pos" in self._plan.required_columns(node)

    def _needs_item(self, node: PlanNode) -> bool:
        """Whether any consumer reads the ``item`` column of this node.

        ``False`` (only under the ``typed_columns`` ablation) lets the
        executor skip value materialisation entirely — pure-cardinality
        consumers such as ``count()`` read ``iter`` alone.  Nodes marked
        for the cross-query subplan cache are exempt: their materialised
        item sequence is shared with *other* queries whose consumers the
        required-columns analysis of this plan knows nothing about.
        """
        if self._plan is None or not getattr(self.options, "typed_columns", True):
            return True
        if self._subplan_cache is not None \
                and self._plan.cache_key(node) is not None:
            return True
        return "item" in self._plan.required_columns(node)

    # -- literals, variables, sequences ------------------------------------- #
    def _exec_const(self, node: PlanNode, loop, env):
        return lift_constant(loop, node.p("value"))

    def _exec_empty(self, node: PlanNode, loop, env):
        return empty_sequence()

    def _exec_var(self, node: PlanNode, loop, env):
        name = node.p("name")
        if name in env:
            return env[name]
        if name in self.global_items:
            return lift_items(loop, self.global_items[name])
        raise XQueryRuntimeError(f"unbound variable ${name}")

    def _exec_context(self, node: PlanNode, loop, env):
        if "." not in env:
            raise XQueryRuntimeError("the context item is undefined here")
        return env["."]

    def _exec_seq(self, node: PlanNode, loop, env):
        parts = [self.compile(item, loop, env) for item in node.children]
        return self._concatenate(parts, need_pos=self._needs_pos(node))

    def _concatenate(self, parts: list, *, need_pos: bool = True):
        live = [part for part in parts if part.row_count]
        if not live:
            return empty_sequence()
        if not need_pos:
            # projection pushdown: no consumer reads pos, so the branch-major
            # union already carries the right per-iteration item order — skip
            # the sort and the positional renumbering entirely.  The stale
            # per-branch pos values must not survive: a later stable
            # (iter, pos) sort would use them as keys and interleave the
            # branches, so a constant column stands in.
            merged = ops.union_all(live)
            merged = ops.project(merged, {"iter": "iter", "item": "item"})
            merged = ops.attach(merged, "pos", 1)
            merged = ops.project(merged, {"iter": "iter", "pos": "pos",
                                          "item": "item"})
            merged.props.order = ()
            explain.record("project", "project.pushdown", merged.row_count,
                           merged.row_count, detail="seq")
            return merged
        branches = [ops.attach(part, "branch", index)
                    for index, part in enumerate(live)]
        merged = ops.union_all(branches)
        merged = sort(merged, ("iter", "branch", "pos"),
                      use_properties=self.options.order_optimization)
        merged = ops.rownum(merged, "new_pos", ("branch", "pos"),
                            partition="iter",
                            use_properties=self.options.order_optimization)
        result = ops.project(merged, {"iter": "iter", "pos": "new_pos",
                                      "item": "item"})
        result.props.order = ("iter", "pos")
        return result

    def _exec_range(self, node: PlanNode, loop, env):
        start = self._singleton_values(self.compile(node.children[0], loop, env))
        end = self._singleton_values(self.compile(node.children[1], loop, env))
        pairs: list[tuple[int, Any]] = []
        for iteration in loop.col("iter"):
            low = to_number(start.get(iteration))
            high = to_number(end.get(iteration))
            if low is None or high is None:
                continue
            for value in range(int(low), int(high) + 1):
                pairs.append((iteration, value))
        return from_iter_items(pairs)

    # -- arithmetic, comparisons, logic -------------------------------------- #
    def _singleton_values(self, table) -> dict[int, Any]:
        values: dict[int, Any] = {}
        for iteration, item in zip(table.col("iter"), table.col("item")):
            values.setdefault(iteration, item)
        return values

    def _exec_arith(self, node: PlanNode, loop, env):
        left = self._singleton_values(self.compile(node.children[0], loop, env))
        right = self._singleton_values(self.compile(node.children[1], loop, env))
        op = node.p("op")
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in left or iteration not in right:
                continue
            result = ops.arithmetic(op, atomize(left[iteration]),
                                    atomize(right[iteration]))
            if result is not None:
                values[iteration] = result
        return singleton_per_iter(loop, values)

    def _exec_unary(self, node: PlanNode, loop, env):
        operand = self._singleton_values(self.compile(node.children[0], loop, env))
        negate = node.p("negate")
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in operand:
                continue
            number = to_number(operand[iteration])
            if number is None:
                continue
            values[iteration] = -number if negate else number
        return singleton_per_iter(loop, values)

    def _exec_cmp_value(self, node: PlanNode, loop, env):
        left = self._singleton_values(self.compile(node.children[0], loop, env))
        right = self._singleton_values(self.compile(node.children[1], loop, env))
        op = node.p("op")
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            if iteration not in left or iteration not in right:
                continue
            values[iteration] = ops.compare_values(
                op, atomize(left[iteration]), atomize(right[iteration]))
        return singleton_per_iter(loop, values)

    def _exec_cmp_general(self, node: PlanNode, loop, env):
        left = items_by_iteration(self.compile(node.children[0], loop, env))
        right = items_by_iteration(self.compile(node.children[1], loop, env))
        strategy = "auto" if self.options.existential_aggregates else "dedup"
        true_iterations = existential_compare(left, right, node.p("op"),
                                              strategy=strategy)
        values = {iteration: iteration in true_iterations
                  for iteration in loop.col("iter")}
        return singleton_per_iter(loop, values)

    def _ebv_by_iteration(self, node: PlanNode, loop, env) -> dict[int, bool]:
        table = self.compile(node, loop, env)
        grouped = items_by_iteration(table)
        return {iteration: effective_boolean_value(grouped.get(iteration, []))
                for iteration in loop.col("iter")}

    def _exec_and(self, node: PlanNode, loop, env):
        verdict = {iteration: True for iteration in loop.col("iter")}
        for operand in node.children:
            partial = self._ebv_by_iteration(operand, loop, env)
            for iteration in verdict:
                verdict[iteration] = verdict[iteration] and partial.get(iteration, False)
        return singleton_per_iter(loop, verdict)

    def _exec_or(self, node: PlanNode, loop, env):
        verdict = {iteration: False for iteration in loop.col("iter")}
        for operand in node.children:
            partial = self._ebv_by_iteration(operand, loop, env)
            for iteration in verdict:
                verdict[iteration] = verdict[iteration] or partial.get(iteration, False)
        return singleton_per_iter(loop, verdict)

    # -- conditionals --------------------------------------------------------- #
    def _exec_if(self, node: PlanNode, loop, env):
        condition, then_branch, else_branch = node.children
        verdict = self._ebv_by_iteration(condition, loop, env)
        then_iters = [it for it in loop.col("iter") if verdict.get(it, False)]
        else_iters = [it for it in loop.col("iter") if not verdict.get(it, False)]

        parts = []
        if then_iters:
            then_loop = make_loop(then_iters)
            then_env = {name: restrict_sequence(table, then_iters)
                        for name, table in env.items()}
            parts.append(self.compile(then_branch, then_loop, then_env))
        if else_iters:
            else_loop = make_loop(else_iters)
            else_env = {name: restrict_sequence(table, else_iters)
                        for name, table in env.items()}
            parts.append(self.compile(else_branch, else_loop, else_env))
        parts = [part for part in parts if part.row_count]
        if not parts:
            return empty_sequence()
        merged = ops.union_all(parts)
        merged = sort(merged, ("iter", "pos"),
                      use_properties=self.options.order_optimization)
        return merged

    # -- FLWOR ----------------------------------------------------------------- #
    def _exec_flwor(self, node: PlanNode, loop, env):
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        norder = node.p("norder")
        clauses = node.children[:nclauses]
        where = node.children[nclauses] if has_where else None
        spec_start = nclauses + (1 if has_where else 0)
        orderspecs = node.children[spec_start:spec_start + norder]
        return_node = node.children[-1]

        conjuncts: list[PlanNode] = []
        if where is not None:
            conjuncts = flatten_conjuncts(where)

        # worst-case-optimal multi-way join: the annotated clique, when
        # the dynamic context checks hold, evaluates as one generic join
        # and consumes every participating clause and conjunct at once
        wcoj_state = None
        wcoj_spec = node.p("wcoj")
        if wcoj_spec is not None and self.options.join_recognition \
                and getattr(self.options, "wcoj", True):
            wcoj_state = self._execute_wcoj(clauses, conjuncts, wcoj_spec,
                                            loop, env)
        if wcoj_state is not None:
            tuple_map, current_loop, current_env, consumed_conjuncts = \
                wcoj_state
        else:
            join_by_clause: dict[int, tuple[int, int, int]] = {}
            estimate_by_clause: dict[int, JoinEstimate] = {}
            if self.options.join_recognition and node.p("join") is not None:
                triples = node.p("joins") or (node.p("join"),)
                join_by_clause = {triple[0]: tuple(triple) for triple in triples}
                if self._plan is not None:
                    for estimate in self._plan.join_estimates.get(node.id, ()):
                        estimate_by_clause[estimate.clause] = estimate

            # the cost-based execution order of the clauses (join clauses float
            # smallest-build-first); the tuple order is restored afterwards
            schedule = tuple(range(nclauses))
            if join_by_clause and self.options.cost_based_joins:
                annotated = node.p("clause_order")
                if annotated is not None \
                        and sorted(annotated) == list(range(nclauses)):
                    schedule = tuple(annotated)
            reordered = schedule != tuple(range(nclauses))

            current_loop = loop
            current_env = dict(env)
            tuple_map = None                    # outer -> inner, composed
            consumed_conjuncts: set[int] = set()
            # per current iteration: which item ordinal each clause contributed
            # (only tracked when the syntactic tuple order must be restored)
            clause_keys: dict[int, dict[int, int]] | None = \
                {iteration: {} for iteration in loop.col("iter")} \
                if reordered else None

            for index in schedule:
                clause = clauses[index]
                if clause.kind == "let":
                    current_env[clause.p("var")] = self.compile(
                        clause.children[0], current_loop, current_env)
                    continue

                triple = join_by_clause.get(index)
                if triple is not None:
                    join_plan = self._execute_join(
                        clause, conjuncts[triple[1]], triple[2], current_loop,
                        current_env, estimate=estimate_by_clause.get(index))
                    if join_plan is not None:
                        scope_map, inner_loop, bindings, ranks = join_plan
                        current_env = lift_environment(current_env, scope_map)
                        current_env.update(bindings)
                        tuple_map = self._compose_maps(tuple_map, scope_map)
                        if clause_keys is not None:
                            clause_keys = self._advance_clause_keys(
                                clause_keys, index, scope_map, ranks)
                        current_loop = inner_loop
                        consumed_conjuncts.add(triple[1])
                        continue

                sequence = self.compile(clause.children[0], current_loop,
                                        current_env)
                if len(clause.children) > 1:
                    sequence = self._filter_binding(
                        sequence, clause.p("var"), clause.children[1:],
                        current_env)
                scope_map, inner_loop, variable, positions = for_binding(
                    sequence, use_properties=self.options.order_optimization)
                current_env = lift_environment(current_env, scope_map)
                current_env[clause.p("var")] = variable
                if clause.p("posvar"):
                    current_env[clause.p("posvar")] = positions
                tuple_map = self._compose_maps(tuple_map, scope_map)
                if clause_keys is not None:
                    clause_keys = self._advance_clause_keys(
                        clause_keys, index, scope_map,
                        list(positions.col("item")))
                current_loop = inner_loop

            if reordered and tuple_map is not None:
                current_loop, current_env, tuple_map = \
                    self._restore_clause_order(
                        loop, current_loop, current_env, tuple_map,
                        clause_keys, nclauses)

        remaining = [conjunct for index, conjunct in enumerate(conjuncts)
                     if index not in consumed_conjuncts]
        if remaining:
            verdict = {iteration: True
                       for iteration in current_loop.col("iter")}
            for conjunct in remaining:
                partial = self._ebv_by_iteration(conjunct, current_loop,
                                                 current_env)
                for iteration in verdict:
                    verdict[iteration] = verdict[iteration] \
                        and partial.get(iteration, False)
            surviving = [it for it in current_loop.col("iter")
                         if verdict.get(it, False)]
            current_loop = make_loop(surviving)
            current_env = {name: restrict_sequence(table, surviving)
                           for name, table in current_env.items()}

        order_keys = None
        if orderspecs:
            order_keys = self._order_by_ranks(orderspecs, current_loop,
                                              current_env)

        body = self.compile(return_node, current_loop, current_env)

        if tuple_map is None:
            if order_keys is not None:
                raise XQueryUnsupportedError(
                    "order by requires at least one for clause")
            return body
        return back_map(tuple_map, body, order_keys=order_keys,
                        use_properties=self.options.order_optimization,
                        need_pos=self._needs_pos(node) or norder > 0)

    def _advance_clause_keys(self, clause_keys: dict[int, dict[int, int]],
                             clause_index: int, scope_map,
                             ordinals: list[int]) -> dict[int, dict[int, int]]:
        """Re-key the tuple-order bookkeeping through one scope map, adding
        the item ordinal this clause contributed per new inner iteration."""
        advanced: dict[int, dict[int, int]] = {}
        for outer, inner, ordinal in zip(scope_map.col("outer"),
                                         scope_map.col("inner"), ordinals):
            entry = dict(clause_keys.get(outer, {}))
            entry[clause_index] = ordinal
            advanced[inner] = entry
        return advanced

    def _restore_clause_order(self, outer_loop, current_loop, env: dict,
                              tuple_map, clause_keys: dict[int, dict[int, int]],
                              nclauses: int):
        """Relabel the inner loop so iteration ids follow the *syntactic*
        clause nesting again after a cost-ordered clause schedule.

        The desired tuple order is (enclosing iteration, item ordinal of
        clause 0, ordinal of clause 1, ...); the loop, every environment
        table and the composed scope map are renumbered accordingly.
        """
        origin = dict(zip(tuple_map.col("inner"), tuple_map.col("outer")))
        outer_rank = {iteration: rank for rank, iteration
                      in enumerate(outer_loop.col("iter"))}

        def sort_key(iteration: int):
            entry = clause_keys.get(iteration, {})
            return (outer_rank.get(origin.get(iteration), 0),
                    *(entry.get(index, 0) for index in range(nclauses)))

        old_iters = list(current_loop.col("iter"))
        ordered = sorted(old_iters, key=sort_key)
        if ordered == old_iters:
            return current_loop, env, tuple_map
        mapping = {old: new for new, old in enumerate(ordered, start=1)}
        explain.record("join", "join.order-restore", len(old_iters),
                       len(old_iters))

        new_loop = make_loop(range(1, len(ordered) + 1))
        new_env = {name: self._relabel_sequence(table, mapping)
                   for name, table in env.items()}
        pairs = sorted((outer, mapping[inner]) for outer, inner
                       in zip(tuple_map.col("outer"), tuple_map.col("inner"))
                       if inner in mapping)
        new_map = Table([
            Column("outer", [pair[0] for pair in pairs]),
            Column("inner", [pair[1] for pair in pairs], infer=True),
        ], props=TableProps(order=("outer", "inner")))
        return new_loop, new_env, new_map

    def _relabel_sequence(self, table, mapping: dict[int, int]):
        """Apply an iteration renumbering to an ``iter|pos|item`` table."""
        rows = [(mapping[iteration], position, item)
                for iteration, position, item
                in zip(table.col("iter"), table.col("pos"), table.col("item"))
                if iteration in mapping]
        rows.sort(key=lambda row: (row[0], row[1]))
        return Table([
            Column("iter", [row[0] for row in rows]),
            Column("pos", [row[1] for row in rows]),
            Column("item", [row[2] for row in rows]),
        ], props=TableProps(order=("iter", "pos")))

    def _filter_binding(self, sequence, var: str, predicates, env: dict):
        """Apply pushed-down plan-level predicates to a for-clause binding
        sequence: per-item EBV of the moved ``where`` conjuncts, with the
        clause variable bound to the candidate item."""
        if sequence.row_count == 0 or not predicates:
            return sequence
        scope_map, sub_loop, variable, positions = for_binding(
            sequence, use_properties=self.options.order_optimization)
        sub_env = lift_environment(env, scope_map)
        sub_env[var] = variable
        active_loop, active_env = sub_loop, sub_env
        survivors = set(sub_loop.col("iter"))
        for predicate in predicates:
            if not survivors:
                break
            grouped = items_by_iteration(
                self.compile(predicate, active_loop, active_env))
            survivors = {iteration for iteration in survivors
                         if effective_boolean_value(
                             grouped.get(iteration, []))}
            if len(survivors) < active_loop.row_count:
                # later predicates only run over the still-live items
                kept = sorted(survivors)
                active_loop = make_loop(kept)
                active_env = {name: restrict_sequence(table, kept)
                              for name, table in active_env.items()}
        rows = [(outer, position, item)
                for outer, inner, position, item
                in zip(scope_map.col("outer"), scope_map.col("inner"),
                       positions.col("item"), variable.col("item"))
                if inner in survivors]
        explain.record("predicate", "predicate.pushdown",
                       sequence.row_count, len(rows), detail=f"${var}")
        return Table([
            Column("iter", [row[0] for row in rows]),
            Column("pos", [row[1] for row in rows]),
            Column("item", [row[2] for row in rows]),
        ], props=TableProps(order=("iter", "pos")))

    def _compose_maps(self, outer_map, inner_map):
        """Compose two scope maps: (outer->mid) ∘ (mid->inner) = outer->inner."""
        if outer_map is None:
            return inner_map
        renamed = ops.project(outer_map, {"outermost": "outer", "mid": "inner"})
        joined = ops.join(inner_map, renamed, "outer", "mid",
                          use_positional=self.options.positional_lookup)
        composed = ops.project(joined, {"outer": "outermost", "inner": "inner"})
        composed.props.order = ("outer", "inner")
        return composed

    def _order_by_ranks(self, specs, loop, env):
        """One rank value per iteration implementing the ``order by`` keys."""
        keys_per_spec = []
        for spec in specs:
            table = self.compile(spec.children[0], loop, env)
            keys_per_spec.append((self._singleton_values(table),
                                  spec.p("descending")))
        iterations = list(loop.col("iter"))

        # stable two-phase sort: strings cannot be negated, so descending
        # string keys are handled by sorting each spec separately (last spec
        # first) with Python's stable sort
        ordered = list(iterations)
        for index in range(len(keys_per_spec) - 1, -1, -1):
            values, descending = keys_per_spec[index]

            def spec_key(iteration: int, values=values):
                value = values.get(iteration)
                value = atomize(value) if value is not None else None
                number = to_number(value) if value is not None else None
                if number is not None:
                    return (0, number, "")
                if value is None:
                    return (1, 0, "")
                return (0, float("inf"), to_string(value))

            ordered.sort(key=spec_key, reverse=descending)
        ranks = {iteration: rank for rank, iteration in enumerate(ordered, start=1)}
        return Table([
            Column("iter", iterations),
            Column("okey", [ranks[iteration] for iteration in iterations]),
        ], props=TableProps(order=("iter",)))

    # -- join execution (Section 4.1 indep / Section 4.2) ---------------------- #
    def _empty_join_result(self, clause: PlanNode):
        """The (scope map, loop, bindings, ranks) of a join with no pairs."""
        empty_map = Table.from_dict({"outer": [], "inner": []},
                                    order=("outer", "inner"))
        return (empty_map, make_loop([]),
                {clause.p("var"): empty_sequence()}, [])

    def _execute_join(self, clause: PlanNode, conjunct: PlanNode, v_side: int,
                      current_loop, env: dict,
                      estimate: JoinEstimate | None = None):
        """Evaluate an optimizer-annotated ``for $v ... where lhs ⊖ rhs``
        clause as a value join.

        The loop-invariance of the binding sequence was established
        statically by the rewrite; what remains dynamic is the context
        document check — independence only holds when every iteration sees
        the same context root.  Returns ``None`` to fall back to the lifted
        nested-loop evaluation.  Pushed-down plan-level predicates filter
        the binding sequence before the join; a cost-model ``estimate``
        decides which input becomes the theta-join build side.
        """
        if current_loop.row_count == 0:
            # no enclosing iterations: the join yields no pairs, and the
            # (possibly context-dependent) binding sequence must not run —
            # the lifted environment carries no context rows to run it with
            return self._empty_join_result(clause)
        constant_context = None
        if "." in env:
            roots = {(id(item.container), item.container.root_pre(item.pre))
                     for item in env["."].col("item")
                     if isinstance(item, NodeRef)}
            if len(roots) > 1:
                return None
            for item in env["."].col("item"):
                if isinstance(item, NodeRef):
                    constant_context = NodeRef(item.container,
                                               item.container.root_pre(item.pre))
                    break

        v_node = conjunct.children[v_side]
        other_node = conjunct.children[1 - v_side]
        op = conjunct.p("op")
        if v_side == 0:
            op = flip_comparison(op)

        # 1. evaluate the loop-invariant binding sequence once (pushed-down
        #    predicates shrink it before the join sees it)
        base_loop = unit_loop()
        base_env: dict[str, Any] = {}
        if constant_context is not None:
            base_env["."] = lift_constant(base_loop, constant_context)
        sequence = self.compile(clause.children[0], base_loop, base_env)
        if len(clause.children) > 1:
            sequence = self._filter_binding(sequence, clause.p("var"),
                                            clause.children[1:], base_env)
        items = sequence_items(sequence, 1)
        if not items:
            # no binding items: the FLWOR contributes nothing for any outer
            # iteration — an empty scope map expresses exactly that
            return self._empty_join_result(clause)

        # 2. the side of the comparison that depends on $v, per binding item
        item_loop = make_loop(range(1, len(items) + 1))
        item_env = {clause.p("var"): Table([
            Column.dense("iter", len(items), base=1),
            Column.constant("pos", 1, len(items)),
            Column("item", list(items)),
        ], props=TableProps(order=("iter", "pos")))}
        if constant_context is not None:
            item_env["."] = lift_constant(item_loop, constant_context)
        v_values_table = self.compile(v_node, item_loop, item_env)
        v_rows = [(iteration, atomize(item))
                  for iteration, item in zip(v_values_table.col("iter"),
                                             v_values_table.col("item"))]

        # 3. the other side, per enclosing-loop iteration
        other_table = self.compile(other_node, current_loop, env)
        other_rows = [(iteration, atomize(item))
                      for iteration, item in zip(other_table.col("iter"),
                                                 other_table.col("item"))]

        # 4. existential theta-join: distinct (outer iteration, item index);
        #    the cost model's estimate picks the build side of the join —
        #    the right input of the theta-join is what the hash/index build
        #    consumes, so the smaller side is swapped there
        strategy = "auto" if self.options.existential_aggregates else "dedup"
        swap_build = (estimate is not None and estimate.build_side == "outer"
                      and self.options.cost_based_joins)
        if swap_build:
            swapped = existential_join(v_rows, other_rows,
                                       flip_comparison(op), strategy=strategy)
            pairs = [(outer, index) for index, outer in swapped]
        else:
            pairs = existential_join(other_rows, v_rows, op,
                                     strategy=strategy)

        # 5. build the scope map / inner loop / $v binding for the survivors
        pairs.sort()
        outer_column = [pair[0] for pair in pairs]
        scope_map = Table([
            Column("outer", outer_column),
            Column.dense("inner", len(pairs), base=1),
        ], props=TableProps(order=("outer", "inner")))
        inner_loop = make_loop(range(1, len(pairs) + 1))
        bound_items = [items[pair[1] - 1] for pair in pairs]
        bindings = {clause.p("var"): Table([
            Column.dense("iter", len(pairs), base=1),
            Column.constant("pos", 1, len(pairs)),
            Column("item", bound_items),
        ], props=TableProps(order=("iter", "pos")))}
        ranks = [pair[1] for pair in pairs]
        return scope_map, inner_loop, bindings, ranks

    # -- worst-case-optimal multi-way joins ------------------------------------ #
    def _execute_wcoj(self, clauses, conjuncts, spec, current_loop, env):
        """Evaluate an optimizer-annotated multi-way value-join clique as
        one generic join (worst-case optimal).

        Every clause's loop-invariant binding sequence is evaluated once;
        each ``eq`` conjunct becomes one join attribute whose two sides are
        encoded into sorted ``(key, item)`` int buffers following the
        per-pair promotion rules (genuine numeric vs. numeric cast vs.
        string).  The generic join narrows candidate item sets attribute by
        attribute, so no pairwise intermediate is ever materialised; the
        result tuples are ordered syntactically (clause 0 major) and
        replicated per enclosing iteration — bit-identical to the
        nested-loop tuple order.  Returns ``None`` to fall back to the
        pairwise join plan (context roots differ between iterations).
        """
        consumed = {triple[0] for triple in spec}
        if current_loop.row_count == 0:
            # no enclosing iterations: nothing may run (the binding
            # sequences could be context-dependent), nothing is bound
            empty_map = Table.from_dict({"outer": [], "inner": []},
                                        order=("outer", "inner"))
            lifted = lift_environment(dict(env), empty_map)
            lifted.update({clause.p("var"): empty_sequence()
                           for clause in clauses})
            return empty_map, make_loop([]), lifted, consumed

        constant_context = None
        if "." in env:
            roots = {(id(item.container), item.container.root_pre(item.pre))
                     for item in env["."].col("item")
                     if isinstance(item, NodeRef)}
            if len(roots) > 1:
                return None
            for item in env["."].col("item"):
                if isinstance(item, NodeRef):
                    constant_context = NodeRef(
                        item.container, item.container.root_pre(item.pre))
                    break

        # 1. every loop-invariant binding sequence runs exactly once
        #    (pushed-down predicates shrink it before the join sees it)
        items_per_clause: list[list[Any]] = []
        for clause in clauses:
            base_loop = unit_loop()
            base_env: dict[str, Any] = {}
            if constant_context is not None:
                base_env["."] = lift_constant(base_loop, constant_context)
            sequence = self.compile(clause.children[0], base_loop, base_env)
            if len(clause.children) > 1:
                sequence = self._filter_binding(sequence, clause.p("var"),
                                                clause.children[1:], base_env)
            items_per_clause.append(sequence_items(sequence, 1))

        # 2. one join attribute per conjunct: both sides evaluated per
        #    binding item, values typed and interned into sorted buffers
        attributes = []
        for conjunct_index, left_clause, right_clause in spec:
            conjunct = conjuncts[conjunct_index]
            attribute = wcoj.JoinAttribute(left_clause, right_clause)
            for clause_index, side in ((left_clause, 0), (right_clause, 1)):
                values = self._wcoj_side_values(
                    clauses[clause_index], conjunct.children[side],
                    items_per_clause[clause_index], constant_context)
                attribute.add_side(self._wcoj_encode(attribute, values))
            attributes.append(attribute)

        tuples = wcoj.generic_join(
            [len(items) for items in items_per_clause], attributes)
        ordered = sorted(tuples)
        explain.record("plan", "plan.wcoj",
                       sum(len(items) for items in items_per_clause),
                       len(ordered), detail=f"{len(clauses)}-way generic join")

        # 3. scope map, inner loop and bindings in syntactic tuple order
        outer_iters = sorted(current_loop.col("iter"))
        total = len(outer_iters) * len(ordered)
        scope_map = Table([
            Column("outer", [outer for outer in outer_iters
                             for _ in ordered]),
            Column.dense("inner", total, base=1),
        ], props=TableProps(order=("outer", "inner")))
        inner_loop = make_loop(range(1, total + 1))
        current_env = lift_environment(dict(env), scope_map)
        for index, clause in enumerate(clauses):
            items = items_per_clause[index]
            bound = [items[combo[index]] for _ in outer_iters
                     for combo in ordered]
            current_env[clause.p("var")] = Table([
                Column.dense("iter", total, base=1),
                Column.constant("pos", 1, total),
                Column("item", bound),
            ], props=TableProps(order=("iter", "pos")))
        return scope_map, inner_loop, current_env, consumed

    def _wcoj_side_values(self, clause, side_node, items, constant_context):
        """One comparison side evaluated per binding item: a list (one entry
        per item, in item order) of the side's atomized values."""
        if not items:
            return []
        item_loop = make_loop(range(1, len(items) + 1))
        item_env = {clause.p("var"): Table([
            Column.dense("iter", len(items), base=1),
            Column.constant("pos", 1, len(items)),
            Column("item", list(items)),
        ], props=TableProps(order=("iter", "pos")))}
        if constant_context is not None:
            item_env["."] = lift_constant(item_loop, constant_context)
        grouped = items_by_iteration(
            self.compile(side_node, item_loop, item_env))
        return [[atomize(item) for item in grouped.get(ordinal, [])]
                for ordinal in range(1, len(items) + 1)]

    def _wcoj_encode(self, attribute, values_per_item):
        """Encode one side's values as ``(key_id, item, genuine)`` rows per
        the per-pair typing rules: a genuinely numeric value joins through
        its numeric key; any other value joins through its string key and —
        when castable — additionally through its numeric *cast*, which only
        pairs with genuinely numeric partners (never cast-to-cast)."""
        rows = []
        for item_index, values in enumerate(values_per_item):
            seen = set()
            for value in values:
                if is_numeric_value(value):
                    encoded = [(("n", value), True)]
                else:
                    encoded = [(("s", str(value)), False)]
                    number = to_number(value)
                    if number is not None:
                        encoded.append((("n", number), False))
                for key, genuine in encoded:
                    if (key, genuine) in seen:
                        continue
                    seen.add((key, genuine))
                    rows.append((
                        attribute.intern(key, numeric=key[0] == "n"),
                        item_index, genuine))
        return rows

    # -- quantified expressions ------------------------------------------------ #
    def _exec_quantified(self, node: PlanNode, loop, env):
        variables = node.p("variables")
        quantifier = node.p("quantifier")
        current_loop = loop
        current_env = dict(env)
        tuple_map = None
        for variable, sequence_node in zip(variables, node.children[:-1]):
            sequence = self.compile(sequence_node, current_loop, current_env)
            scope_map, inner_loop, bound, _ = for_binding(
                sequence, use_properties=self.options.order_optimization)
            current_env = lift_environment(current_env, scope_map)
            current_env[variable] = bound
            tuple_map = self._compose_maps(tuple_map, scope_map)
            current_loop = inner_loop

        verdict = self._ebv_by_iteration(node.children[-1], current_loop,
                                         current_env)
        per_outer: dict[int, list[bool]] = {}
        if tuple_map is None:                           # no bindings: degenerate
            per_outer = {iteration: [] for iteration in loop.col("iter")}
        else:
            for outer, inner in zip(tuple_map.col("outer"), tuple_map.col("inner")):
                per_outer.setdefault(outer, []).append(verdict.get(inner, False))
        values: dict[int, bool] = {}
        for iteration in loop.col("iter"):
            outcomes = per_outer.get(iteration, [])
            if quantifier == "some":
                values[iteration] = any(outcomes)
            else:
                values[iteration] = all(outcomes)
        return singleton_per_iter(loop, values)

    # -- paths ------------------------------------------------------------------ #
    def _exec_root(self, node: PlanNode, loop, env):
        if "." not in env:
            raise XQueryRuntimeError(
                "absolute path used without a context document")
        context = env["."]
        values: dict[int, Any] = {}
        for iteration, item in zip(context.col("iter"), context.col("item")):
            if not isinstance(item, NodeRef):
                raise XQueryTypeError("the context item is not a node")
            values.setdefault(
                iteration, NodeRef(item.container,
                                   item.container.root_pre(item.pre)))
        return singleton_per_iter(loop, values)

    def _exec_step(self, node: PlanNode, loop, env):
        predicates = node.children[1:]
        # the rewrite analysis only marks chains through steps that are
        # predicate-free or carry a single positional predicate, so any
        # marked node is safe for the chain runner
        chain = self._fused_chain(node)
        if chain is not None:
            return self._exec_fused_chain(chain, loop, env)
        context = self.compile(node.children[0], loop, env)
        name = node.p("test_name")
        node_test = NodeTest(kind=node.p("test_kind"),
                             name=name if name not in (None, "*") else None)
        axis = node.p("axis")
        if not predicates:
            return axis_step(context, axis, node_test,
                             options=self.step_options, stats=self.step_stats,
                             need_item=self._needs_item(node))
        # predicates need positions relative to each context node: open a
        # nested iteration scope with one iteration per context node
        scope_map, sub_loop, dot, _ = for_binding(
            context, use_properties=self.options.order_optimization)
        produced = axis_step(dot, axis, node_test,
                             options=self.step_options, stats=self.step_stats)
        sub_env = lift_environment(env, scope_map)
        sub_env["."] = dot
        filtered = self._apply_predicates(produced, predicates, sub_loop,
                                          sub_env, reverse=axis.is_reverse)
        merged = back_map(scope_map, filtered,
                          use_properties=self.options.order_optimization)
        return self._nodes_in_document_order(merged,
                                             need_pos=self._needs_pos(node))

    def _fused_chain(self, node: PlanNode) -> list[PlanNode] | None:
        """The step nodes (head first) this node's fusable chain spans.

        The rewrite analysis annotated the maximal absorbable chain length;
        what remains dynamic is the cross-query cache: when a subplan cache
        is attached, a cache-marked interior node must stay a chain
        boundary — its materialised item sequence is shared with other
        queries, so it is evaluated standalone (consulting and populating
        its cache slot) and the chain is trimmed above it.  Returns ``None``
        when fewer than two steps survive (fall back to the per-step path).
        """
        if self._plan is None or not getattr(self.options, "step_fusion", True):
            return None
        length = self._plan.fused_chain_length(node)
        if length < 2:
            return None
        chain = [node]
        current = node
        while len(chain) < length:
            deeper = current.children[0]
            if self._subplan_cache is not None \
                    and self._plan.cache_key(deeper) is not None:
                break
            chain.append(deeper)
            current = deeper
        if len(chain) < 2:
            return None
        return chain

    def _exec_fused_chain(self, chain: list[PlanNode], loop, env):
        """Run a chain of predicate-free steps as one surrogate-free
        pipeline: the base context is compiled normally, then every
        staircase join feeds the next one through raw ``(iter, pre)`` int
        buffers and only the chain's end is assembled into an
        ``iter|pos|item`` table (boxing at most once — never when the
        required-columns analysis pruned ``item``).  Positional
        predicates (``[k]`` / ``[last()]``) run as per-context counting
        on the same raw buffers."""
        head = chain[0]
        context = self.compile(chain[-1].children[0], loop, env)
        specs = []
        for step in reversed(chain):
            name = step.p("test_name")
            pos_spec = positional_predicate_spec(step.children[1]) \
                if len(step.children) > 1 else None
            specs.append((step.p("axis"),
                          NodeTest(kind=step.p("test_kind"),
                                   name=name if name not in (None, "*")
                                   else None),
                          pos_spec))
        return axis_step_chain(context, specs, options=self.step_options,
                               stats=self.step_stats,
                               need_item=self._needs_item(head))

    def _exec_filter(self, node: PlanNode, loop, env):
        base = self.compile(node.children[0], loop, env)
        return self._apply_predicates(base, node.children[1:], loop, env)

    def _nodes_in_document_order(self, table, *, need_pos: bool = True):
        rows = sorted(
            zip(table.col("iter"), table.col("item")),
            key=lambda pair: (pair[0], pair[1].order_key()
                              if isinstance(pair[1], NodeRef) else (0, 0, 0, 0)))
        deduped: list[tuple[int, Any]] = []
        previous = None
        for pair in rows:
            if previous is not None and pair == previous:
                continue
            deduped.append(pair)
            previous = pair
        return from_iter_items(deduped, need_pos=need_pos)

    def _apply_predicates(self, sequence, predicates, loop, env, *,
                          reverse: bool = False):
        current = sequence
        for predicate in predicates:
            current = self._apply_one_predicate(current, predicate, loop, env,
                                                reverse=reverse)
        return current

    def _apply_one_predicate(self, sequence, predicate: PlanNode, loop, env, *,
                             reverse: bool = False):
        """Filter one predicate over ``sequence``.

        ``reverse=True`` (the predicate belongs to a reverse-axis step)
        makes ``position()`` count in *proximity* order — reverse document
        order — per the XPath rule that positions follow the axis
        direction.  The rows themselves stay in document order (``pos``
        ascending); the effective position of a row is
        ``count(iteration) - pos + 1``, so ``[1]`` keeps the nearest node
        and ``[last()]`` the farthest.
        """
        if sequence.row_count == 0:
            return sequence
        positions = sequence.col("pos")
        iterations = sequence.col("iter")
        if reverse:
            counts: dict[int, int] = {}
            for iteration in iterations:
                counts[iteration] = counts.get(iteration, 0) + 1
            effective = [counts[iteration] - position + 1
                         for iteration, position in zip(iterations, positions)]
        else:
            effective = positions

        # fast paths: positional literal and last()
        if predicate.kind == "const" and isinstance(predicate.p("value"), int) \
                and not isinstance(predicate.p("value"), bool):
            wanted = predicate.p("value")
            keep = [index for index, position in enumerate(effective)
                    if position == wanted]
            return self._rebuild_filtered(sequence, keep)
        if predicate.kind == "call" and predicate.p("name") == "last" \
                and not predicate.children:
            last_by_iter: dict[int, int] = {}
            for iteration, position in zip(iterations, effective):
                last_by_iter[iteration] = max(last_by_iter.get(iteration, 0), position)
            keep = [index for index, (iteration, position)
                    in enumerate(zip(iterations, effective))
                    if position == last_by_iter[iteration]]
            return self._rebuild_filtered(sequence, keep)

        # general case: a nested iteration scope with one iteration per item
        scope_map, sub_loop, dot, _ = for_binding(
            sequence, use_properties=self.options.order_optimization)
        counts = {}
        for iteration in iterations:
            counts[iteration] = counts.get(iteration, 0) + 1
        sub_env = lift_environment(env, scope_map)
        sub_env["."] = dot
        sub_env["fs:position"] = Table([
            Column("iter", list(sub_loop.col("iter")), infer=True),
            Column.constant("pos", 1, sequence.row_count),
            Column("item", list(effective)),
        ], props=TableProps(order=("iter", "pos")))
        sub_env["fs:last"] = Table([
            Column("iter", list(sub_loop.col("iter")), infer=True),
            Column.constant("pos", 1, sequence.row_count),
            Column("item", [counts[iteration] for iteration in iterations]),
        ], props=TableProps(order=("iter", "pos")))

        verdict_table = self.compile(predicate, sub_loop, sub_env)
        grouped = items_by_iteration(verdict_table)
        keep: list[int] = []
        for index, inner in enumerate(sub_loop.col("iter")):
            outcome = grouped.get(inner, [])
            if not outcome:
                continue
            first = outcome[0]
            if isinstance(first, (int, float)) and not isinstance(first, bool) \
                    and len(outcome) == 1:
                if first == effective[index]:
                    keep.append(index)
            elif effective_boolean_value(outcome):
                keep.append(index)
        return self._rebuild_filtered(sequence, keep)

    def _rebuild_filtered(self, sequence, keep: list[int]):
        kept = sequence.take(keep, keep_order=True)
        pairs = list(zip(kept.col("iter"), kept.col("item")))
        return from_iter_items(pairs)

    # -- functions --------------------------------------------------------------- #
    def _exec_call(self, node: PlanNode, loop, env):
        name = node.p("name")
        if name.startswith("fn:"):
            name = name[3:]
        if name == "position" and not node.children:
            if "fs:position" not in env:
                raise XQueryRuntimeError("position() used outside a predicate")
            return env["fs:position"]
        if name == "last" and not node.children:
            if "fs:last" not in env:
                raise XQueryRuntimeError("last() used outside a predicate")
            return env["fs:last"]

        if node.p("name") in self.user_functions or name in self.user_functions:
            planned = self.user_functions.get(node.p("name")) \
                or self.user_functions[name]
            return self._call_user_function(planned, node, loop, env)

        if name in ("string", "data", "number", "name", "local-name") \
                and not node.children:
            arguments = [self._exec_context(node, loop, env)]
        else:
            arguments = [self.compile(argument, loop, env)
                         for argument in node.children]
        implementation = functions.lookup(name)
        return implementation(self, loop, arguments)

    def _call_user_function(self, planned: PlannedFunction,
                            node: PlanNode, loop, env):
        if planned.name in self._call_stack:
            raise XQueryUnsupportedError(
                f"recursive user function {planned.name}() is not supported "
                "by the eager loop-lifting evaluator")
        if len(node.children) != len(planned.parameters):
            raise XQueryTypeError(
                f"{planned.name}() expects {len(planned.parameters)} "
                f"arguments, got {len(node.children)}")
        call_env: dict[str, Any] = {}
        for parameter, argument in zip(planned.parameters, node.children):
            call_env[parameter] = self.compile(argument, loop, env)
        self._call_stack.append(planned.name)
        try:
            return self.compile(planned.body, loop, call_env)
        finally:
            self._call_stack.pop()

    # -- constructors -------------------------------------------------------------- #
    def _exec_elem(self, node: PlanNode, loop, env):
        container = self.engine.transient
        attr_names = node.p("attr_names")
        content_spec = node.p("content_spec")
        templates = node.children[:len(attr_names)]
        content_children = node.children[len(attr_names):]

        attribute_values: list[tuple[str, dict[int, str]]] = []
        for attribute_name, template in zip(attr_names, templates):
            attribute_values.append(
                (attribute_name,
                 self._evaluate_value_template(template, loop, env)))

        content_parts: list[tuple[str, Any]] = []
        expr_index = 0
        for part in content_spec:
            if part == "e":
                content_parts.append(("expr", items_by_iteration(
                    self.compile(content_children[expr_index], loop, env))))
                expr_index += 1
            else:
                content_parts.append(("text", part[1]))

        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            attributes = [(name, per_iter.get(iteration, ""))
                          for name, per_iter in attribute_values]
            content: list[Any] = []
            for kind, payload in content_parts:
                if kind == "text":
                    content.append(payload)
                else:
                    content.extend(payload.get(iteration, []))
            values[iteration] = construct_element(container, node.p("name"),
                                                  attributes, content)
        return singleton_per_iter(loop, values)

    def _evaluate_value_template(self, template: PlanNode, loop, env
                                 ) -> dict[int, str]:
        pieces: list[tuple[str, Any]] = []
        expr_index = 0
        for part in template.p("spec"):
            if part == "e":
                pieces.append(("expr", items_by_iteration(
                    self.compile(template.children[expr_index], loop, env))))
                expr_index += 1
            else:
                pieces.append(("text", part[1]))
        values: dict[int, str] = {}
        for iteration in loop.col("iter"):
            rendered: list[str] = []
            for kind, payload in pieces:
                if kind == "text":
                    rendered.append(payload)
                else:
                    rendered.append(" ".join(to_string(item)
                                             for item in payload.get(iteration, [])))
            values[iteration] = "".join(rendered)
        return values

    def _exec_text(self, node: PlanNode, loop, env):
        grouped = items_by_iteration(self.compile(node.children[0], loop, env))
        container = self.engine.transient
        values: dict[int, Any] = {}
        for iteration in loop.col("iter"):
            items = grouped.get(iteration, [])
            text = " ".join(to_string(item) for item in items)
            values[iteration] = construct_text(container, text)
        return singleton_per_iter(loop, values)
