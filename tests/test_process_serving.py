"""Process-parallel serving: shared-memory attach, epochs, bit-identity.

The process-pool serving mode moves query execution into worker processes
that attach the shredded document columns out of shared memory.  The
contract under test:

* :class:`EpochTracker` — reader epochs pin a published generation; the
  retired generation's closer runs exactly once, when its last reader
  drains, and never under the tracker's own lock,
* export/attach round-trip — a container exported to a shared-memory
  segment and re-attached (same process or a pool worker) serves
  bit-identical query results over the XMark suite *and* the generated
  differential query corpus,
* update commits racing multi-process readers — every reader sees a
  complete committed store (paired fields always agree), never a torn mix
  of generations,
* reclamation — a closed server leaves no shared-memory segment behind,
  even when updates piled up multiple generations,
* lifecycle — ``close()`` is idempotent and safe to race with in-flight
  ``submit()`` calls in both pool modes.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import MonetXQuery
from repro.concurrency import EpochTracker
from repro.server import QueryServer, RemoteQueryResult
from repro.storage.backends import attach_segment, unlink_segment
from repro.storage.persist import export_container_shared, shared_catalog
from repro.xmark import all_queries

from conftest import SMALL_XML
from test_differential import generated_queries

PROCESSES = 2

PERSON_NAME_QUERY = ('for $p in /site/people/person[@id = "person0"] '
                     'return $p/name/text()')


# --------------------------------------------------------------------------- #
# EpochTracker
# --------------------------------------------------------------------------- #
class TestEpochTracker:
    def test_closer_runs_when_retired_epoch_drains(self):
        tracker = EpochTracker()
        closed: list[int] = []
        tracker.open(1, closer=lambda: closed.append(1))
        tracker.enter(1)
        tracker.enter(1)
        tracker.retire(1)
        assert closed == []                    # two readers still pinned
        tracker.exit(1)
        assert closed == []
        tracker.exit(1)
        assert closed == [1]                   # last reader drained
        assert tracker.live_epochs() == []

    def test_retire_with_no_readers_closes_immediately(self):
        tracker = EpochTracker()
        closed: list[int] = []
        tracker.open(7, closer=lambda: closed.append(7))
        tracker.retire(7)
        assert closed == [7]

    def test_closer_runs_exactly_once(self):
        tracker = EpochTracker()
        closed: list[int] = []
        tracker.open(1, closer=lambda: closed.append(1))
        tracker.enter(1)
        tracker.retire(1)
        tracker.retire(1)                      # double retire: harmless
        tracker.exit(1)
        tracker.exit(1)                        # late exit: ignored
        assert closed == [1]

    def test_enter_unknown_epoch_raises(self):
        tracker = EpochTracker()
        with pytest.raises(ValueError):
            tracker.enter(99)

    def test_closer_may_reenter_tracker(self):
        # closers run outside the tracker lock: a closer that retires the
        # next epoch (cascading reclamation) must not deadlock
        tracker = EpochTracker()
        closed: list[int] = []
        tracker.open(2, closer=lambda: closed.append(2))
        tracker.open(1, closer=lambda: (closed.append(1), tracker.retire(2)))
        tracker.retire(1)
        assert closed == [1, 2]

    def test_retire_all(self):
        tracker = EpochTracker()
        closed: list[int] = []
        for epoch in (1, 2, 3):
            tracker.open(epoch, closer=lambda e=epoch: closed.append(e))
        tracker.enter(2)
        tracker.retire_all()
        assert sorted(closed) == [1, 3]        # 2 still has a reader
        tracker.exit(2)
        assert sorted(closed) == [1, 2, 3]

    def test_concurrent_enter_exit_is_exact(self):
        tracker = EpochTracker()
        closed = threading.Event()
        tracker.open(1, closer=closed.set)

        def churn():
            for _ in range(500):
                tracker.enter(1)
                tracker.exit(1)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert tracker.readers(1) == 0
        assert not closed.is_set()             # never retired -> never closed
        tracker.retire(1)
        assert closed.is_set()


# --------------------------------------------------------------------------- #
# shared-memory export / attach round-trip (single process)
# --------------------------------------------------------------------------- #
class TestSharedAttachRoundTrip:
    def _attached_pair(self, text: str):
        source = MonetXQuery()
        source.load_document_text(text, name="doc.xml")
        snapshot = source.store.snapshot()
        segments, documents = [], {}
        for container in snapshot.containers:
            segment, entry = export_container_shared(container)
            segments.append(segment)
            documents[container.name] = entry
        catalog = shared_catalog(documents, store_version=snapshot.version,
                                 order_counter=snapshot.order_counter,
                                 generation=1, default_context="doc.xml")
        attached = MonetXQuery.attach_shared(catalog)
        return source, attached, segments

    def test_xmark_queries_bit_identical(self, xmark_text):
        source, attached, segments = self._attached_pair(xmark_text)
        try:
            for number, query in all_queries().items():
                expected = source.query(query)
                got = attached.query(query)
                assert got.serialize() == expected.serialize(), \
                    f"XMark Q{number} diverged over shared memory"
                assert got.strings() == expected.strings()
        finally:
            attached.store.close()
            for segment in segments:
                unlink_segment(segment)

    def test_generated_differential_corpus_bit_identical(self, xmark_text):
        source, attached, segments = self._attached_pair(xmark_text)
        try:
            for query in generated_queries():
                assert attached.query(query).serialize() \
                    == source.query(query).serialize(), query
        finally:
            attached.store.close()
            for segment in segments:
                unlink_segment(segment)

    def test_attached_store_is_readonly(self):
        source, attached, segments = self._attached_pair(SMALL_XML)
        try:
            [container] = [c for c in attached.store.containers()
                           if not c.transient]
            assert container.backend.readonly
        finally:
            attached.store.close()
            for segment in segments:
                unlink_segment(segment)

    def test_attach_unknown_segment_raises(self):
        from repro.errors import StorageError
        source = MonetXQuery()
        source.load_document_text(SMALL_XML, name="doc.xml")
        snapshot = source.store.snapshot()
        segment, entry = export_container_shared(snapshot.containers[0])
        unlink_segment(segment)
        from repro.storage.persist import attach_container_shared
        with pytest.raises(StorageError):
            attach_container_shared("doc.xml", entry)


# --------------------------------------------------------------------------- #
# process pool: thread mode and process mode are bit-identical
# --------------------------------------------------------------------------- #
class TestProcessPoolIdentity:
    def test_xmark_and_generated_queries_match_thread_mode(self, xmark_text):
        queries = list(all_queries().values()) + generated_queries()
        with QueryServer(threads=2) as threaded, \
                QueryServer(threads=2, processes=PROCESSES) as pooled:
            threaded.load_document_text(xmark_text, name="auction.xml")
            pooled.load_document_text(xmark_text, name="auction.xml")
            expected = [threaded.submit(query) for query in queries]
            remote = [pooled.submit(query) for query in queries]
            for query, thread_future, proc_future in zip(queries, expected,
                                                         remote):
                thread_result = thread_future.result()
                proc_result = proc_future.result()
                assert isinstance(proc_result, RemoteQueryResult)
                assert proc_result.serialize() == thread_result.serialize(), \
                    f"process pool diverged on {query!r}"
                assert proc_result.strings() == thread_result.strings()
                assert len(proc_result) == len(thread_result.items)
            stats = pooled.stats()
            assert stats.mode == "processes"
            assert stats.processes == PROCESSES
            assert stats.queries_served == len(queries)

    def test_worker_plan_cache_reused_across_tasks(self):
        with QueryServer(processes=1) as server:
            server.load_document_text(SMALL_XML, name="auction.xml")
            for _ in range(4):
                result = server.submit(PERSON_NAME_QUERY).result()
                assert result.strings() == ["Alice"]
            # one worker, one generation: the attachment is built once and
            # repeated texts hit its plan cache (diagnosed via the worker)
            from repro.server import procworker
            diagnostics = server._proc_pool.submit(
                procworker.worker_diagnostics).result()
            assert diagnostics["generation"] == 1
            assert diagnostics["plan_cache"] >= 2


# --------------------------------------------------------------------------- #
# update commits racing multi-process readers: never torn
# --------------------------------------------------------------------------- #
class TestProcessUpdatesRacingReaders:
    PAIRED_DOC = ("<pair><x>seed</x><y>seed</y></pair>")
    PAIRED_QUERY = ("for $p in /pair return "
                    "concat(string($p/x), '|', string($p/y))")

    def test_commits_racing_pool_readers_are_never_torn(self):
        server = QueryServer(threads=2, processes=PROCESSES)
        server.load_document_text(self.PAIRED_DOC, name="pair.xml")
        commits = 6
        committed = {"seed"}
        futures = []
        try:
            for index in range(commits):
                # keep readers in flight across every commit boundary
                futures.extend(server.submit(self.PAIRED_QUERY)
                               for _ in range(4))
                value = f"v{index}"
                with server.update("pair.xml") as updater:
                    [x] = updater.select("/pair/x/text()")
                    updater.replace_value(x, value)
                    [y] = updater.select("/pair/y/text()")
                    updater.replace_value(y, value)
                committed.add(value)
            futures.extend(server.submit(self.PAIRED_QUERY)
                           for _ in range(4))
            for future in futures:
                [observed] = future.result().strings()
                x_value, y_value = observed.split("|")
                # both halves of one committed state, never a mix
                assert x_value == y_value, f"torn read: {observed!r}"
                assert x_value in committed
            # the final dispatch must see the final commit
            [final] = server.submit(self.PAIRED_QUERY).result().strings()
            assert final == f"v{commits - 1}|v{commits - 1}"
            stats = server.stats()
            assert stats.generation >= commits
        finally:
            server.close()

    def test_superseded_generations_are_reclaimed(self):
        server = QueryServer(processes=1)
        server.load_document_text(self.PAIRED_DOC, name="pair.xml")
        try:
            server.submit("count(/pair)").result()
            for index in range(4):
                with server.update("pair.xml") as updater:
                    [x] = updater.select("/pair/x/text()")
                    updater.replace_value(x, f"gen{index}")
                server.submit("string(/pair/x)").result()
            stats = server.stats()
            assert stats.generation == 5
            # drained generations released their segments: only the live
            # generation's segment may remain linked
            assert stats.live_segments == 1
        finally:
            server.close()
        assert server._segments == {}


# --------------------------------------------------------------------------- #
# lifecycle: idempotent close, reclamation, submit-after-close
# --------------------------------------------------------------------------- #
class TestProcessLifecycle:
    def test_close_is_idempotent_and_unlinks_segments(self):
        server = QueryServer(processes=1)
        server.load_document_text(SMALL_XML, name="auction.xml")
        server.submit("count(//person)").result()
        segment_names = list(server._segments)
        assert segment_names
        for name in segment_names:             # linked while serving
            attach_segment(name).close()
        server.close()
        server.close()                         # second close: no-op
        assert server.closed
        for name in segment_names:             # unlinked after close
            with pytest.raises(FileNotFoundError):
                attach_segment(name)

    def test_close_with_futures_in_flight(self):
        server = QueryServer(processes=PROCESSES)
        server.load_document_text(SMALL_XML, name="auction.xml")
        futures = [server.submit("count(//person)") for _ in range(8)]
        server.close(wait=True)                # blocks on in-flight work
        for future in futures:
            assert future.result().serialize() == "3"
        with pytest.raises(RuntimeError, match="closed"):
            server.submit("count(//person)")

    def test_submit_after_close_raises_in_thread_mode(self):
        server = QueryServer(threads=2)
        server.load_document_text(SMALL_XML, name="auction.xml")
        server.close()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit("count(//person)")

    def test_concurrent_close_and_submit_never_hang(self):
        server = QueryServer(threads=2, processes=PROCESSES)
        server.load_document_text(SMALL_XML, name="auction.xml")
        server.submit("count(//person)").result()   # warm the pool
        results: list[str] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def submitter():
            for _ in range(10):
                try:
                    value = server.submit("count(//person)").result()
                    with lock:
                        results.append(value.serialize())
                except RuntimeError as exc:
                    assert "closed" in str(exc)
                    return
                except BaseException as exc:   # noqa: BLE001
                    with lock:
                        errors.append(exc)
                    return

        threads = [threading.Thread(target=submitter) for _ in range(3)]
        for thread in threads:
            thread.start()
        server.close(wait=True)
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "submitter hung across close()"
        assert not errors, errors
        assert all(value == "3" for value in results)
        assert server._segments == {}
