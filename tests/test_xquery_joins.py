"""Existential comparison / join strategies (Section 4.2, Figure 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import capture
from repro.xquery.joins import (existential_compare, existential_join,
                                flip_comparison)


class TestExistentialJoin:
    def test_figure8a_eq_with_duplicate_elimination(self):
        """The example of Figure 8(a): duplicates collapse to unique pairs."""
        left = [(1, 20), (2, 30), (2, 20)]
        right = [(1, 20), (1, 20), (2, 10), (2, 30)]
        pairs = existential_join(left, right, "eq", strategy="dedup")
        assert pairs == [(1, 1), (2, 1), (2, 2)]

    def test_figure8b_lt_with_minmax_aggregation(self):
        """The example of Figure 8(b): the aggregate plan gives unique pairs."""
        left = [(1, 5), (2, 20), (2, 15)]
        right = [(1, 1), (1, 10), (2, 25), (2, 30)]
        pairs = existential_join(left, right, "lt", strategy="aggregate")
        assert pairs == [(1, 1), (1, 2), (2, 2)]

    def test_aggregate_and_dedup_strategies_agree(self):
        left = [(i, value) for i in range(1, 5) for value in (i, i * 3)]
        right = [(j, value) for j in range(1, 4) for value in (j * 2, j + 1)]
        for op in ("lt", "le", "gt", "ge"):
            dedup = existential_join(left, right, op, strategy="dedup")
            aggregate = existential_join(left, right, op, strategy="aggregate")
            assert dedup == aggregate, op

    def test_explicit_aggregate_strategy_rejects_eq_and_ne(self):
        # Figure 8b's min/max plan is undefined for eq/ne: an explicitly
        # requested "aggregate" strategy must fail loudly, not silently
        # degrade to "dedup" (only "auto" may pick per comparison)
        left = [(1, "a")]
        right = [(1, "a"), (1, "a")]
        for op in ("eq", "ne"):
            with pytest.raises(ValueError, match="aggregate"):
                existential_join(left, right, op, strategy="aggregate")
            with pytest.raises(ValueError, match="aggregate"):
                existential_compare({1: ["a"]}, {1: ["a"]}, op,
                                    strategy="aggregate")
        assert existential_join(left, right, "eq", strategy="auto") == [(1, 1)]
        assert existential_join(left, right, "eq", strategy="dedup") == [(1, 1)]

    def test_string_values_compare_as_strings(self):
        pairs = existential_join([(1, "person0")], [(7, "person0"), (8, "other")], "eq")
        assert pairs == [(1, 7)]

    def test_numeric_promotion_of_untyped_values(self):
        pairs = existential_join([(1, "42")], [(1, 42.0)], "eq")
        assert pairs == [(1, 1)]

    def test_empty_inputs(self):
        assert existential_join([], [(1, 1)], "eq") == []
        assert existential_join([(1, 1)], [], "lt") == []

    def test_mixed_type_pairs_compare_per_pair(self):
        # regression: ("a", 1) = "a" — the string/string pair must survive
        # even though a numeric value is present on the left
        left = [(1, "a"), (1, 1)]
        assert existential_join(left, [(1, "a")], "eq") == [(1, 1)]
        assert existential_join(left, [(1, 1)], "eq") == [(1, 1)]
        assert existential_join(left, [(1, "b")], "eq") == []
        # the untyped side of a numeric pair is cast per pair
        assert existential_join([(1, "a"), (1, "2")], [(1, 2)], "eq") == [(1, 1)]

    def test_mixed_type_pairs_in_both_strategies(self):
        left = [(1, "b"), (1, 5)]
        right = [(1, "a"), (2, 3)]
        for strategy in ("dedup", "aggregate"):
            # string pair "b" > "a" and numeric pair 5 > 3 both qualify
            assert existential_join(left, right, "gt",
                                    strategy=strategy) == [(1, 1), (1, 2)]

    def test_uncastable_numeric_pairs_never_match(self):
        # pair ("a", 1): the untyped side does not cast — no match, no error
        assert existential_join([(1, "a")], [(1, 1)], "eq") == []
        assert existential_join([(1, "a")], [(1, 1)], "ne") == []
        assert existential_join([(1, "a")], [(1, 1)], "lt") == []

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            existential_join([(1, 1)], [(1, 1)], "eq", strategy="quantum")

    def test_records_algorithm_in_trace(self):
        with capture() as trace:
            existential_join([(1, 1)], [(1, 2)], "lt", strategy="aggregate")
            existential_join([(1, 1)], [(1, 1)], "eq")
        assert trace.count("existential.aggregate") == 1
        assert trace.count("existential.dedup") == 1


class TestExistentialCompare:
    def test_true_only_when_any_pair_matches(self):
        left = {1: [1, 2], 2: [5]}
        right = {1: [3], 2: [1]}
        assert existential_compare(left, right, "lt") == {1}

    def test_empty_operand_is_false(self):
        assert existential_compare({1: []}, {1: [1]}, "eq") == set()
        assert existential_compare({1: [1]}, {}, "eq") == set()

    def test_eq_over_strings(self):
        left = {1: ["person0"], 2: ["person1"]}
        right = {1: ["person9"], 2: ["person1"]}
        assert existential_compare(left, right, "eq") == {2}

    def test_ne_with_multiple_values(self):
        assert existential_compare({1: [1, 1]}, {1: [1]}, "ne") == set()
        assert existential_compare({1: [1, 2]}, {1: [1]}, "ne") == {1}

    def test_strategies_agree(self):
        left = {i: [i, i + 2] for i in range(5)}
        right = {i: [i + 1] for i in range(5)}
        for op in ("lt", "le", "gt", "ge", "eq", "ne"):
            assert existential_compare(left, right, op, strategy="dedup") == \
                existential_compare(left, right, op, strategy="auto"), op

    def test_mixed_type_pairs_compare_per_pair(self):
        # regression: ("a", 1) = "a" must be true — the numeric item must
        # not drag the string/string pair through a numeric cast
        assert existential_compare({1: ["a", 1]}, {1: ["a"]}, "eq") == {1}
        assert existential_compare({1: ["a", 1]}, {1: [1]}, "eq") == {1}
        assert existential_compare({1: ["a", 1]}, {1: ["b"]}, "eq") == set()
        assert existential_compare({1: ["a"]}, {1: [1]}, "eq") == set()
        # order comparison across domains: "b" > "a" (strings), 5 > 3 (numbers)
        assert existential_compare({1: ["b"], 2: [5]},
                                   {1: ["a"], 2: [3]}, "gt") == {1, 2}


class TestEngineExistentialSemantics:
    def test_mixed_sequence_general_comparison(self, engine):
        assert engine.query('("a", 1) = "a"').items == [True]
        assert engine.query('("a", 1) = 1').items == [True]
        assert engine.query('("a", 1) = "b"').items == [False]
        assert engine.query('("a", 1) = 2').items == [False]

    def test_mixed_comparison_without_documents(self):
        from repro import MonetXQuery
        assert MonetXQuery().query('("a", 1) = "a"').items == [True]


class TestFlip:
    def test_flip_comparison(self):
        assert flip_comparison("lt") == "gt"
        assert flip_comparison("ge") == "le"
        assert flip_comparison("eq") == "eq"


@given(
    st.lists(st.tuples(st.integers(1, 4), st.integers(-5, 5)), max_size=25),
    st.lists(st.tuples(st.integers(1, 4), st.integers(-5, 5)), max_size=25),
    st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
)
@settings(max_examples=80, deadline=None)
def test_existential_join_matches_bruteforce(left, right, op):
    """Both strategies equal the brute-force definition of existential joins."""
    import operator
    compare = {"eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
               "le": operator.le, "gt": operator.gt, "ge": operator.ge}[op]
    expected = sorted({(lg, rg) for lg, lv in left for rg, rv in right
                       if compare(lv, rv)})
    assert existential_join(left, right, op, strategy="dedup") == expected
    assert existential_join(left, right, op, strategy="auto") == expected
