"""Logical query plans: a hash-consed relational operator DAG.

Pathfinder separates *plan construction* from *execution*: the XQuery
front-end first builds a DAG of logical relational operators, rewrites it
(join recognition, projection pushdown, common-subplan sharing) and only
then emits the physical algebra.  This module provides the plan
representation shared by the planner (:mod:`repro.xquery.planner`), the
rewrite optimizer (:mod:`repro.relational.rewrites`) and the executor
(:mod:`repro.xquery.compiler`):

* :class:`PlanNode` — an immutable operator node (``kind``, scalar
  ``params``, child plans),
* :class:`PlanBuilder` — the interning constructor.  Structurally equal
  nodes are **hash-consed** to the same object, so common subexpressions
  (repeated path prefixes, duplicated aggregates) become shared DAG nodes
  for free — the CSE rewrite then only has to mark nodes whose reference
  count exceeds one,
* :func:`count_references` / :func:`render_plan` — DAG introspection and
  the textual plan dump used by ``MonetXQuery.explain``.

Plan nodes are *logical*: they carry no tables and are never mutated.
Rewrites produce new nodes through the builder; execution-time facts
(required columns, shared/pure sets) live in side tables keyed by
``PlanNode.id`` so that annotation never disturbs structural identity.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping


class PlanNode:
    """One logical operator in a query plan DAG.

    ``kind`` names the operator (``"step"``, ``"flwor"``, ``"const"``, ...),
    ``children`` are the input plans and ``params`` is a sorted tuple of
    ``(name, value)`` pairs of scalar attributes (axis, variable name,
    literal value, ...).  Nodes are immutable and interned: two nodes are
    the *same object* iff they are structurally equal.
    """

    __slots__ = ("kind", "children", "params", "id", "_params_dict")

    def __init__(self, kind: str, children: tuple["PlanNode", ...],
                 params: tuple[tuple[str, Any], ...], node_id: int):
        self.kind = kind
        self.children = children
        self.params = params
        self.id = node_id
        self._params_dict = dict(params)

    def p(self, name: str, default: Any = None) -> Any:
        """The value of a scalar parameter (``None``/default when absent)."""
        return self._params_dict.get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PlanNode#{self.id}({self.label()})"

    def label(self) -> str:
        """A one-line human-readable rendering of kind and parameters."""
        parts = []
        for name, value in self.params:
            if value is None or value == ():
                continue
            rendered = getattr(value, "value", value)
            parts.append(f"{name}={rendered!r}" if isinstance(value, str)
                         else f"{name}={rendered}")
        return self.kind + (f" [{', '.join(parts)}]" if parts else "")

    def walk(self) -> Iterator["PlanNode"]:
        """Every node of the DAG below (and including) this node, once."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            yield node
            stack.extend(node.children)


class PlanBuilder:
    """Interning constructor: structurally equal nodes share one object.

    All plans of one query (body, global variable initialisers, user
    function bodies) must be built through a single builder so that common
    subplans are shared across them.
    """

    def __init__(self) -> None:
        self._interned: dict[tuple, PlanNode] = {}
        self._next_id = 0

    def node(self, kind: str, children: tuple[PlanNode, ...] = (),
             **params: Any) -> PlanNode:
        """Build (or reuse) the node ``kind(children; params)``."""
        param_items = tuple(sorted(params.items()))
        key = (kind, tuple(child.id for child in children), param_items)
        try:
            return self._interned[key]
        except (KeyError, TypeError):
            # TypeError: an unhashable param (e.g. NaN containers) simply
            # skips interning — correctness is unaffected, only sharing
            pass
        node = PlanNode(kind, children, param_items, self._next_id)
        self._next_id += 1
        try:
            self._interned[key] = node
        except TypeError:  # pragma: no cover - unhashable params
            pass
        return node

    @property
    def node_count(self) -> int:
        return self._next_id


def structural_fingerprint(node: PlanNode,
                           memo: dict[int, str] | None = None) -> str:
    """A fingerprint of a plan subtree that is stable *across* builders.

    Hash-consed node ids identify subplans within one query; the
    cross-query materialized subplan cache needs an identity that two
    independently planned queries agree on (``/site/people/person`` in Q8
    and in Q10 must map to the same cache slot).  The fingerprint is a
    SHA-1 over the canonical ``(kind, params, child fingerprints)``
    rendering of the subtree, memoised per node id so DAG sharing keeps
    the walk linear.
    """
    import hashlib

    if memo is None:
        memo = {}

    cached = memo.get(node.id)
    if cached is not None:
        return cached
    child_prints = [structural_fingerprint(child, memo)
                    for child in node.children]
    payload = repr((node.kind, node.params, child_prints))
    fingerprint = hashlib.sha1(payload.encode("utf-8")).hexdigest()
    memo[node.id] = fingerprint
    return fingerprint


def count_references(roots: list[PlanNode]) -> dict[int, int]:
    """Parent-edge counts per node id across one or more plan roots.

    Each root itself counts as one reference; a node whose count exceeds
    one is a *common subplan* (the DAG analogue of Pathfinder's shared
    subexpression detection).
    """
    counts: dict[int, int] = {}
    visited: set[int] = set()

    def visit(node: PlanNode) -> None:
        counts[node.id] = counts.get(node.id, 0) + 1
        if node.id in visited:
            return
        visited.add(node.id)
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)
    return counts


def render_plan(root: PlanNode, *,
                shared: frozenset[int] | set[int] = frozenset(),
                annotate: Callable[[PlanNode], str] | None = None,
                indent: str = "") -> str:
    """Render a plan DAG as an indented tree.

    Shared nodes (members of ``shared``) are printed once with a ``@id``
    tag; later occurrences render as a back-reference line ``... = @id``.
    ``annotate`` may append extra per-node text (e.g. required columns).
    """
    lines: list[str] = []
    printed: set[int] = set()

    def visit(node: PlanNode, prefix: str, connector: str) -> None:
        tag = f"@{node.id} " if node.id in shared else ""
        note = annotate(node) if annotate is not None else ""
        extra = f"  {note}" if note else ""
        if node.id in printed and node.id in shared:
            lines.append(f"{prefix}{connector}= @{node.id} ({node.kind}, shared)")
            return
        printed.add(node.id)
        lines.append(f"{prefix}{connector}{tag}{node.label()}{extra}")
        child_prefix = prefix + ("   " if connector in ("", "└─ ") else "│  ")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            visit(child, child_prefix, "└─ " if last else "├─ ")

    visit(root, indent, "")
    return "\n".join(lines)
