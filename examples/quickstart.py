"""Quickstart: load an XML document and run XQuery against it.

Run with:  python examples/quickstart.py
"""

from repro import MonetXQuery


BOOKSTORE = """
<bookstore>
  <book year="2003"><title>XQuery from the Experts</title>
    <author>Katz</author><price>49.95</price></book>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author>Stevens</author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author>Abiteboul</author><author>Buneman</author><author>Suciu</author>
    <price>39.95</price></book>
</bookstore>
"""


def main() -> None:
    engine = MonetXQuery()
    engine.load_document_text(BOOKSTORE, name="books.xml")

    print("== titles of books cheaper than 50 ==")
    result = engine.query(
        "for $b in /bookstore/book where $b/price < 50 "
        "order by $b/price return $b/title/text()")
    for item in result.items:
        print(" -", item.string_value())

    print("\n== number of authors per book ==")
    result = engine.query(
        'for $b in /bookstore/book '
        'return <book title="{$b/title/text()}" authors="{count($b/author)}"/>')
    print(result.serialize())

    print("\n== average price ==")
    print(engine.query("avg(/bookstore/book/price)").items[0])

    print("\n== books per decade (general comparison + if/then/else) ==")
    result = engine.query(
        "for $b in /bookstore/book "
        "return if ($b/@year >= 2000) then \"2000s\" else \"1990s\"")
    print(result.items)


if __name__ == "__main__":
    main()
