"""Bridging XPath location steps to the staircase-join family.

``axis_step`` receives the relational encoding of the context node sequences
of all iterations (``iter|pos|item`` with node items), converts it into the
``(pre, iter)`` pairs the staircase joins expect, dispatches to

* the **loop-lifted** staircase join (default),
* the **iterative** staircase join (one pass per iteration — the Figure 12
  baseline, selected per axis through the engine options), or
* the **nametest pushdown** variant (candidate lists from the element-name
  index, Section 3.2),

and re-assembles an ``iter|pos|item`` table whose items are node surrogates
in document order per iteration.

The staircase joins deliver their results as paired ``(iter, pre)`` int
arrays; the assembly sorts/dedups on plain integers and boxes a
:class:`~repro.xml.document.NodeRef` only for rows that survive — and with
``need_item=False`` (the required-columns analysis proved every consumer
reads ``iter`` alone, e.g. ``count(path)``) no node surrogate is built at
all: the result table carries a typed ``iter`` column next to constant
``pos``/``item`` stand-ins.

``axis_step_chain`` is the **fused** evaluator for a whole chain of
predicate-free steps: the paired ``(iter, pre)`` arrays of each staircase
join feed the next join directly (sort/dedup on the raw int buffers via
:func:`repro.relational.sorting.sort_dedup_pairs`), so no intermediate step
ever boxes a surrogate or builds an ``iter|pos|item`` table — surrogates
appear once, at the chain's end, or never under dead-``item`` pruning.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Sequence

from ..errors import XQueryTypeError
from ..relational.column import Column, IntColumn
from ..relational.properties import TableProps
from ..relational.sorting import sort_dedup_pairs
from ..relational.table import Table
from ..relational import explain
from ..staircase.axes import Axis, NodeTest
from ..staircase.iterative import StaircaseStats
from ..staircase.loop_lifted import (iterative_step_arrays, ll_attribute,
                                     loop_lifted_step_arrays, pairs_to_arrays)
from ..staircase.pushdown import loop_lifted_step_pushdown
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from . import ast


@dataclass
class StepOptions:
    """The ablation switches that govern location-step execution."""

    loop_lifted_child: bool = True
    loop_lifted_descendant: bool = True
    loop_lifted_other: bool = True
    nametest_pushdown: bool = True


def node_test_from_ast(test: "ast.NodeTestExpr") -> NodeTest:
    """Translate an AST node test into a staircase-join node test."""
    name = test.name if test.name not in (None, "*") else None
    return NodeTest(kind=test.kind, name=name)


def _wants_loop_lifted(axis: Axis, options: StepOptions) -> bool:
    if axis is Axis.CHILD:
        return options.loop_lifted_child
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        return options.loop_lifted_descendant
    return options.loop_lifted_other


def _split_context(context: Table) -> dict[int, tuple[DocumentContainer,
                                                      list[tuple[int, int]],
                                                      list[tuple[int, int]]]]:
    """Split an ``iter|pos|item`` context per document container.

    Returns ``id(container) -> (container, tree_pairs, attr_pairs)`` where
    ``tree_pairs`` are ``(pre, iter)`` tree-node contexts and ``attr_pairs``
    are ``(attr_index, iter)`` attribute-node contexts (routed per axis by
    :func:`_produce_attr_context`); non-node items raise a type error
    (XPTY0019).
    """
    per_container: dict[int, tuple[DocumentContainer, list[tuple[int, int]],
                                   list[tuple[int, int]]]] = {}
    for iteration, item in zip(context.col("iter"), context.col("item")):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError(
                f"path step applied to a non-node item {item!r}")
        container = item.container
        entry = per_container.setdefault(id(container), (container, [], []))
        if item.attr is not None:
            entry[2].append((item.attr, iteration))
        else:
            entry[1].append((item.pre, iteration))
    return per_container


# How each axis treats an *attribute* context node: which axes to run over
# the owning element, and whether the attribute itself belongs to the
# result.  XPath defines the vertical and horizontal axes for attribute
# nodes through the owner: the owner is the attribute's parent, its
# ancestor-or-self chain are the attribute's ancestors, and in document
# order the attribute sits after the owner but before the owner's children
# — so following(attr) is descendant(owner) ∪ following(owner) while
# preceding(attr) excludes the whole ancestor chain and collapses to
# preceding(owner).  Sibling axes are empty for attributes, as are
# child / descendant / attribute.
_ATTR_OWNER_AXES: dict[Axis, tuple[Axis, ...]] = {
    Axis.PARENT: (Axis.SELF,),
    Axis.ANCESTOR: (Axis.ANCESTOR_OR_SELF,),
    Axis.ANCESTOR_OR_SELF: (Axis.ANCESTOR_OR_SELF,),
    Axis.FOLLOWING: (Axis.DESCENDANT, Axis.FOLLOWING),
    Axis.PRECEDING: (Axis.PRECEDING,),
}
_ATTR_SELF_AXES = (Axis.SELF, Axis.ANCESTOR_OR_SELF)


def _produce_step(container: DocumentContainer, pairs: list[tuple[int, int]],
                  axis: Axis, node_test: NodeTest, options: StepOptions,
                  stats: StaircaseStats | None
                  ) -> tuple[array, array, bool]:
    """One staircase-join dispatch over a normalized per-container context.

    ``pairs`` must already be sorted on ``[pre, iter]`` and duplicate free.
    Returns ``(iters, ranks, is_attr)`` where ``ranks`` are pre ranks for
    tree-node axes and attribute-table row indexes for the attribute axis.
    """
    if axis is Axis.ATTRIBUTE:
        name = node_test.name if node_test.has_name else None
        iters, attrs = pairs_to_arrays(ll_attribute(container, pairs, name))
        explain.record("step", "step.attribute", len(pairs), len(iters))
        return iters, attrs, True

    if _wants_loop_lifted(axis, options):
        if options.nametest_pushdown:
            pushed = loop_lifted_step_pushdown(container, pairs, axis,
                                               node_test, stats=stats,
                                               normalized=True)
            if pushed is not None:
                iters, pres = pairs_to_arrays(pushed)
                explain.record("step", "step.pushdown", len(pairs),
                               len(iters), detail=axis.value)
                return iters, pres, False
        iters, pres = loop_lifted_step_arrays(container, pairs, axis,
                                              node_test, stats=stats,
                                              normalized=True)
        explain.record("step", "step.loop-lifted", len(pairs),
                       len(iters), detail=axis.value)
        return iters, pres, False

    iters, pres = iterative_step_arrays(container, pairs, axis, node_test,
                                        stats=stats)
    explain.record("step", "step.iterative", len(pairs),
                   len(iters), detail=axis.value)
    return iters, pres, False


def _produce_attr_context(container: DocumentContainer,
                          attr_pairs: list[tuple[int, int]], axis: Axis,
                          node_test: NodeTest, options: StepOptions,
                          stats: StaircaseStats | None
                          ) -> list[tuple[array, array, bool]]:
    """Evaluate one step over attribute-node contexts of one container.

    ``attr_pairs`` must be sorted ``(attr_index, iter)`` and duplicate
    free.  Per :data:`_ATTR_OWNER_AXES` the step is routed through the
    owning elements (and the attribute itself joins the result for the
    self-including axes when the node test accepts attribute nodes) —
    axes undefined for attributes yield nothing.
    """
    batches: list[tuple[array, array, bool]] = []
    if not attr_pairs:
        return batches
    if axis in _ATTR_SELF_AXES and node_test.kind in ("attribute", "node"):
        iters = array("q", (iteration for _, iteration in attr_pairs))
        ranks = array("q", (attr_index for attr_index, _ in attr_pairs))
        explain.record("step", "step.attr-context", len(attr_pairs),
                       len(iters), detail=axis.value)
        batches.append((iters, ranks, True))
    owner_axes = _ATTR_OWNER_AXES.get(axis, ())
    if owner_axes:
        owner_column = container.attr_owner
        owners = sorted({(owner_column[attr_index], iteration)
                         for attr_index, iteration in attr_pairs})
        for owner_axis in owner_axes:
            batches.append(_produce_step(container, owners, owner_axis,
                                         node_test, options, stats))
    return batches


def _produce_all(container: DocumentContainer,
                 tree_pairs: list[tuple[int, int]],
                 attr_pairs: list[tuple[int, int]], axis: Axis,
                 node_test: NodeTest, options: StepOptions,
                 stats: StaircaseStats | None
                 ) -> tuple[list[tuple[array, array, bool]], int]:
    """One step over the mixed tree/attribute contexts of one container.

    Normalizes both context kinds, dispatches tree contexts to the
    staircase joins and attribute contexts to the routing table, and
    returns the result batches plus the normalized context count.  Batches
    may overlap pairwise (e.g. ancestors reached from both a tree and an
    attribute context) — the assembly and the chain threading dedup.
    """
    batches: list[tuple[array, array, bool]] = []
    contexts_in = 0
    if tree_pairs:
        pairs = sorted(set(tree_pairs))
        contexts_in += len(pairs)
        batches.append(_produce_step(container, pairs, axis, node_test,
                                     options, stats))
    if attr_pairs:
        pairs = sorted(set(attr_pairs))
        contexts_in += len(pairs)
        batches.extend(_produce_attr_context(container, pairs, axis,
                                             node_test, options, stats))
    return batches, contexts_in


def _assemble_result(produced: list[tuple[DocumentContainer, array, array, bool]],
                     contexts_in: int, need_item: bool, detail: str) -> Table:
    """Merge per-container ``(iter, rank)`` arrays into the result table.

    Containers are merged in document order per iteration, duplicate free.
    Rows are compared as plain int tuples — (iter, container order key,
    owner pre, attr flag, attr index) mirrors ``NodeRef.order_key()``
    exactly, so the sort/dedup never touches a boxed node surrogate.
    """
    containers = [entry[0] for entry in produced]
    rows: list[tuple[int, int, int, int, int, int]] = []
    for cidx, (container, iters, ranks, is_attr) in enumerate(produced):
        okey = container.order_key
        if is_attr:
            owners = container.attr_owner
            rows.extend((iteration, okey, owners[rank], 1, rank, cidx)
                        for iteration, rank in zip(iters, ranks))
        else:
            rows.extend((iteration, okey, rank, 0, 0, cidx)
                        for iteration, rank in zip(iters, ranks))
    rows.sort()
    deduped: list[tuple[int, int, int, int, int, int]] = []
    previous = None
    for row in rows:
        key = row[:5]
        if previous is not None and key == previous:
            continue
        deduped.append(row)
        previous = key

    iters_out = array("q", (row[0] for row in deduped))

    if not need_item:
        # dead-item rewrite: per-iteration cardinalities survive, node
        # surrogates are never built and — since consumers read iter
        # alone — a constant pos column stands in (no per-row numbering)
        explain.record("step", "step.item-pruned", contexts_in,
                       len(iters_out), detail=detail)
        table = Table([IntColumn("iter", iters_out),
                       Column.constant("pos", 1, len(iters_out)),
                       Column.constant("item", None, len(iters_out))],
                      props=TableProps(order=("iter",)))
        return table

    positions = array("q")
    counter = 0
    last_iter: int | None = None
    for iteration in iters_out:
        if iteration != last_iter:
            counter = 0
            last_iter = iteration
        counter += 1
        positions.append(counter)

    items: list[NodeRef] = []
    for _, _, pre, flag, rank, cidx in deduped:
        container = containers[cidx]
        items.append(container.attribute(rank) if flag
                     else NodeRef(container, pre))
    explain.record("step", "step.materialize", contexts_in,
                   len(items), detail=detail)

    table = Table([IntColumn("iter", iters_out),
                   IntColumn("pos", positions),
                   Column("item", items)],
                  props=TableProps(order=("iter", "pos")))
    return table


def axis_step(context: Table, axis: Axis, node_test: NodeTest, *,
              options: StepOptions | None = None,
              stats: StaircaseStats | None = None,
              need_item: bool = True) -> Table:
    """Evaluate one location step for every iteration of the context.

    ``context`` is an ``iter|pos|item`` table whose items are
    :class:`~repro.xml.document.NodeRef` values; non-node items raise a type
    error (XPTY0019).  The result is an ``iter|pos|item`` table with the step
    results per iteration in document order, duplicate free, ``pos``
    renumbered 1..n per iteration.

    ``need_item=False`` applies the dead-``item`` rewrite: callers proved no
    consumer ever reads the node surrogates (only per-iteration
    cardinalities matter), so the per-row ``NodeRef`` boxing is skipped and
    ``item`` is a constant stand-in column.
    """
    if options is None:
        options = StepOptions()

    per_container = _split_context(context)
    produced: list[tuple[DocumentContainer, array, array, bool]] = []
    contexts_in = 0
    for container, tree_pairs, attr_pairs in per_container.values():
        batches, count = _produce_all(container, tree_pairs, attr_pairs,
                                      axis, node_test, options, stats)
        contexts_in += count
        produced.extend((container,) + batch for batch in batches)

    return _assemble_result(produced, contexts_in, need_item, axis.value)


def _step_spec(step: tuple) -> tuple | None:
    """The positional spec of a chain step tuple (pairs carry none)."""
    return step[2] if len(step) > 2 else None


def _collapse_descendant_steps(steps: Sequence[tuple]) -> list[tuple]:
    """Collapse ``descendant-or-self::node()/child::T`` pairs into
    ``descendant::T`` inside a fused chain.

    The classic XPath equivalence holds on node *sets* — a child of some
    descendant-or-self of ``s`` is exactly a descendant of ``s`` — and the
    intermediate contexts of a fused chain are per-iteration sets by
    construction, so collapsing never changes the chain's result.  It does
    change the work profile radically: the ``//x`` parse shape no longer
    enumerates the whole subtree as an intermediate context, it becomes a
    single (usually name-index-backed) descendant join.

    Steps carrying a positional spec never collapse: ``//b[1]`` counts
    children per *each* descendant-or-self context node, which the merged
    descendant join cannot express.
    """
    collapsed: list[tuple] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        axis, node_test = step[0], step[1]
        if (axis is Axis.DESCENDANT_OR_SELF and node_test.kind == "node"
                and not node_test.has_name and _step_spec(step) is None
                and index + 1 < len(steps)
                and steps[index + 1][0] is Axis.CHILD
                and _step_spec(steps[index + 1]) is None):
            collapsed.append((Axis.DESCENDANT,) + tuple(steps[index + 1][1:]))
            index += 2
            continue
        collapsed.append(step)
        index += 1
    return collapsed


def _positional_step(container: DocumentContainer,
                     tree_pairs: list[tuple[int, int]],
                     attr_pairs: list[tuple[int, int]], axis: Axis,
                     node_test: NodeTest, spec: tuple,
                     options: StepOptions, stats: StaircaseStats | None
                     ) -> list[tuple[array, array, bool]]:
    """One chain step with a positional predicate (``[k]`` / ``[last()]``).

    Positional predicates count per *context node*, but the raw ``(iter,
    pre)`` buffers only carry iterations — several context nodes of one
    iteration share an iter value.  So the context is renumbered to one
    fresh dense iteration per context node (the ordinal doubles as an index
    back into the original iterations), the staircase join runs as usual,
    and the counting loop walks its output in per-context *axis* order —
    document order for forward axes, reverse document (proximity) order
    for reverse axes, per the XPath rule that ``position()`` counts along
    the axis direction — keeping the ``k``-th (or last) row of each
    context.  Still surrogate-free: the count runs on the raw int buffers,
    nothing is boxed.
    """
    tree_pairs = sorted(set(tree_pairs))
    attr_pairs = sorted(set(attr_pairs))
    original_iters: list[int] = []
    tree_contexts: list[tuple[int, int]] = []
    attr_contexts: list[tuple[int, int]] = []
    for pre, iteration in tree_pairs:
        original_iters.append(iteration)
        tree_contexts.append((pre, len(original_iters)))
    for attr_index, iteration in attr_pairs:
        original_iters.append(iteration)
        attr_contexts.append((attr_index, len(original_iters)))
    batches, _ = _produce_all(container, tree_contexts, attr_contexts,
                              axis, node_test, options, stats)
    # flatten with document-order keys mirroring NodeRef.order_key so
    # mixed attribute/tree batches interleave correctly
    rows: list[tuple[int, tuple[int, int, int], int, int]] = []
    for batch_index, (iters, ranks, is_attr) in enumerate(batches):
        owners = container.attr_owner if is_attr else None
        for row_index, (ordinal, rank) in enumerate(zip(iters, ranks)):
            key = (owners[rank], 1, rank) if is_attr else (rank, 0, 0)
            rows.append((ordinal, key, batch_index, row_index))
    rows.sort()
    keep_per_batch: dict[int, list[tuple[int, int]]] = {}
    index = 0
    total = len(rows)
    while index < total:
        stop = index
        ordinal = rows[index][0]
        while stop < total and rows[stop][0] == ordinal:
            stop += 1
        group = rows[index:stop]
        if axis.is_reverse:
            group.reverse()             # proximity order for reverse axes
        chosen = None
        if spec[0] == "index":
            if spec[1] <= len(group):
                chosen = group[spec[1] - 1]
        else:  # ("last",)
            chosen = group[-1]
        if chosen is not None:
            _, _, batch_index, row_index = chosen
            keep_per_batch.setdefault(batch_index, []).append(
                (ordinal, row_index))
        index = stop
    out_batches: list[tuple[array, array, bool]] = []
    kept = 0
    for batch_index, (iters, ranks, is_attr) in enumerate(batches):
        selected = keep_per_batch.get(batch_index)
        if not selected:
            continue
        kept += len(selected)
        out_iters = array("q", (original_iters[ordinal - 1]
                                for ordinal, _ in selected))
        out_ranks = array("q", (ranks[row_index]
                                for _, row_index in selected))
        out_batches.append((out_iters, out_ranks, is_attr))
    detail = f"{axis.value}[{spec[1]}]" if spec[0] == "index" \
        else f"{axis.value}[last()]"
    explain.record("step", "step.chain-positional",
                   len(original_iters), kept, detail=detail)
    return out_batches


def axis_step_chain(context: Table,
                    steps: Sequence[tuple], *,
                    options: StepOptions | None = None,
                    stats: StaircaseStats | None = None,
                    need_item: bool = True) -> Table:
    """Evaluate a fused chain of location steps.

    ``steps`` lists the chain bottom-most first — ``(axis, node_test)``
    pairs or ``(axis, node_test, positional_spec)`` triples where the spec
    is ``None``, ``("index", k)`` for a ``[k]`` predicate or ``("last",)``
    for ``[last()]``.  Per container, each staircase join's paired
    ``(iter, pre)`` int arrays are threaded straight into the next join —
    the between-steps sort/dedup runs on the raw buffers — so no
    intermediate step builds an ``iter|pos|item`` table or boxes a
    ``NodeRef``.  Positional predicates run as per-context counting on
    those same buffers (:func:`_positional_step`).  Only the chain's final
    result is assembled (and boxed at most once; never under
    ``need_item=False``), which is what makes whole path pipelines
    surrogate-free.

    Bit-identical to evaluating the steps one ``axis_step`` at a time: the
    intermediate context *sets* are the same (the per-step path dedups on
    the identical ``(iter, container, pre)`` int keys), only their
    materialisation is skipped.  Only the last step may use the attribute
    axis — attribute rows cannot feed a further tree-node step.
    """
    if options is None:
        options = StepOptions()
    if len(steps) < 2:
        raise ValueError("axis_step_chain needs at least two steps")
    normalized = [(step[0], step[1], step[2] if len(step) > 2 else None)
                  for step in steps]
    if any(axis is Axis.ATTRIBUTE for axis, _, _ in normalized[:-1]):
        raise ValueError("the attribute axis can only end a fused chain")
    normalized = _collapse_descendant_steps(normalized)

    per_container = _split_context(context)
    produced: list[tuple[DocumentContainer, array, array, bool]] = []
    contexts_in = 0
    for container, tree_pairs, attr_pairs in per_container.values():
        batches: list[tuple[array, array, bool]] = []
        for index, (axis, node_test, spec) in enumerate(normalized):
            if index:
                # thread the previous step's batches into the next context:
                # sort/dedup (iter, rank) -> [rank, iter] on the raw
                # buffers, keeping attribute rows (a mid-chain self step
                # can preserve them) separate from tree rows
                tree_iters = array("q")
                tree_ranks = array("q")
                attr_rows: set[tuple[int, int]] = set()
                for iters, ranks, is_attr in batches:
                    if is_attr:
                        attr_rows.update(zip(ranks, iters))
                    else:
                        tree_iters.extend(iters)
                        tree_ranks.extend(ranks)
                tree_pairs = sort_dedup_pairs(tree_ranks, tree_iters)
                attr_pairs = sorted(attr_rows)
            if spec is None:
                batches, count = _produce_all(container, tree_pairs,
                                              attr_pairs, axis, node_test,
                                              options, stats)
            else:
                batches = _positional_step(container, tree_pairs, attr_pairs,
                                           axis, node_test, spec, options,
                                           stats)
                count = len(set(tree_pairs)) + len(set(attr_pairs))
            if index == 0:
                contexts_in += count
        produced.extend((container,) + batch for batch in batches)

    detail = ">".join(axis.value for axis, _, _ in normalized)
    total_out = sum(len(entry[1]) for entry in produced)
    explain.record("step", "step.chain-fused", contexts_in, total_out,
                   detail=detail)
    return _assemble_result(produced, contexts_in, need_item, detail)
