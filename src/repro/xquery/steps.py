"""Bridging XPath location steps to the staircase-join family.

``axis_step`` receives the relational encoding of the context node sequences
of all iterations (``iter|pos|item`` with node items), converts it into the
``(pre, iter)`` pairs the staircase joins expect, dispatches to

* the **loop-lifted** staircase join (default),
* the **iterative** staircase join (one pass per iteration — the Figure 12
  baseline, selected per axis through the engine options), or
* the **nametest pushdown** variant (candidate lists from the element-name
  index, Section 3.2),

and re-assembles an ``iter|pos|item`` table whose items are node surrogates
in document order per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import XQueryTypeError
from ..relational.column import Column
from ..relational.properties import TableProps
from ..relational.table import Table
from ..relational import explain
from ..staircase.axes import Axis, NodeTest
from ..staircase.iterative import StaircaseStats
from ..staircase.loop_lifted import iterative_step, ll_attribute, loop_lifted_step
from ..staircase.pushdown import loop_lifted_step_pushdown
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from . import ast


@dataclass
class StepOptions:
    """The ablation switches that govern location-step execution."""

    loop_lifted_child: bool = True
    loop_lifted_descendant: bool = True
    loop_lifted_other: bool = True
    nametest_pushdown: bool = True


def node_test_from_ast(test: "ast.NodeTestExpr") -> NodeTest:
    """Translate an AST node test into a staircase-join node test."""
    name = test.name if test.name not in (None, "*") else None
    return NodeTest(kind=test.kind, name=name)


def _wants_loop_lifted(axis: Axis, options: StepOptions) -> bool:
    if axis is Axis.CHILD:
        return options.loop_lifted_child
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        return options.loop_lifted_descendant
    return options.loop_lifted_other


def axis_step(context: Table, axis: Axis, node_test: NodeTest, *,
              options: StepOptions | None = None,
              stats: StaircaseStats | None = None) -> Table:
    """Evaluate one location step for every iteration of the context.

    ``context`` is an ``iter|pos|item`` table whose items are
    :class:`~repro.xml.document.NodeRef` values; non-node items raise a type
    error (XPTY0019).  The result is an ``iter|pos|item`` table with the step
    results per iteration in document order, duplicate free, ``pos``
    renumbered 1..n per iteration.
    """
    if options is None:
        options = StepOptions()

    # split the context per document container; remember attribute owners
    per_container: dict[int, tuple[DocumentContainer, list[tuple[int, int]]]] = {}
    for iteration, item in zip(context.col("iter"), context.col("item")):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError(
                f"path step applied to a non-node item {item!r}")
        container = item.container
        if item.attr is not None:
            # attribute nodes only participate in self / parent steps
            if axis is Axis.PARENT:
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            elif axis is Axis.SELF and node_test.kind in ("attribute", "node"):
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            continue
        pairs = per_container.setdefault(id(container), (container, []))[1]
        pairs.append((item.pre, iteration))

    results: list[tuple[int, NodeRef]] = []
    for container, pairs in per_container.values():
        pairs = sorted(set(pairs))
        if axis is Axis.ATTRIBUTE:
            name = node_test.name if node_test.has_name else None
            for iteration, attr_index in ll_attribute(container, pairs, name):
                results.append((iteration, container.attribute(attr_index)))
            explain.record("step", "step.attribute", len(pairs), len(results))
            continue

        if _wants_loop_lifted(axis, options):
            produced = None
            if options.nametest_pushdown:
                produced = loop_lifted_step_pushdown(container, pairs, axis,
                                                     node_test, stats=stats)
                if produced is not None:
                    explain.record("step", "step.pushdown", len(pairs),
                                   len(produced), detail=axis.value)
            if produced is None:
                produced = loop_lifted_step(container, pairs, axis, node_test,
                                            stats=stats)
                explain.record("step", "step.loop-lifted", len(pairs),
                               len(produced), detail=axis.value)
        else:
            produced = iterative_step(container, pairs, axis, node_test,
                                      stats=stats)
            explain.record("step", "step.iterative", len(pairs), len(produced),
                           detail=axis.value)
        for iteration, pre in produced:
            results.append((iteration, container.node(pre)))

    # document order per iteration, duplicate free, positions renumbered
    results.sort(key=lambda pair: (pair[0], pair[1].order_key()))
    deduped: list[tuple[int, NodeRef]] = []
    previous: tuple[int, NodeRef] | None = None
    for pair in results:
        if previous is not None and pair[0] == previous[0] and pair[1] == previous[1]:
            continue
        deduped.append(pair)
        previous = pair

    iters = [pair[0] for pair in deduped]
    items = [pair[1] for pair in deduped]
    positions: list[int] = []
    counter = 0
    last_iter: int | None = None
    for iteration in iters:
        if iteration != last_iter:
            counter = 0
            last_iter = iteration
        counter += 1
        positions.append(counter)

    table = Table([Column("iter", iters), Column("pos", positions),
                   Column("item", items)],
                  props=TableProps(order=("iter", "pos")))
    return table
