"""Page-wise updatable storage for the ``pre|size|level`` encoding (Section 5.2)."""

from .locking import DeltaRecord, SizeDeltaLedger, TransactionManager
from .pages import UNUSED, PagedStructure, PageMapEntry
from .updatable import UpdatableDocument, UpdateStats

__all__ = [
    "DeltaRecord",
    "PageMapEntry",
    "PagedStructure",
    "SizeDeltaLedger",
    "TransactionManager",
    "UNUSED",
    "UpdatableDocument",
    "UpdateStats",
]
