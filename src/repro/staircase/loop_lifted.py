"""Loop-lifted staircase join — Section 3 of the paper.

The loop-lifted staircase join evaluates an XPath location step for *all*
context-node sequences of *all* iterations of the enclosing ``for``-loops in
a single sequential pass over the document encoding.  Its input is the
relational encoding of the context: ``(pre, iter)`` pairs sorted on
``[pre, iter]`` (document order, iterations clustered per context node); its
output is a list of ``(iter, pre)`` result pairs such that

* within one iteration, result nodes are duplicate free and in document
  order, and
* result nodes that belong to multiple iterations occur in iteration order
  (the inner ``FOR iter FROM fstIter TO lstIter`` loop of Figure 6).

The module provides the stack-based ``child`` algorithm of Figure 6, a
matching single-scan ``descendant`` algorithm, and loop-lifted versions of
the remaining axes.  ``loop_lifted_step`` dispatches on the axis and applies
an optional node test as a post-filter (see :mod:`repro.staircase.pushdown`
for the pushed-down variant).

The *iterative* execution mode used as the Figure 12 baseline simply calls
the plain staircase join once per iteration — see
:func:`iterative_step` below.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass

from ..errors import StaircaseJoinError
from ..xml.document import DocumentContainer, NodeKind
from .axes import Axis, NodeTest
from .iterative import StaircaseStats, attribute_step, staircase_join


ContextPairs = list[tuple[int, int]]      # (pre, iter), sorted on [pre, iter]
ResultPairs = list[tuple[int, int]]       # (iter, pre)


def normalize_context(pairs: ContextPairs) -> ContextPairs:
    """Sort the context on ``[pre, iter]`` and drop duplicate pairs."""
    return sorted(set(pairs))


def pairs_to_arrays(pairs: ResultPairs) -> "tuple[array, array]":
    """Convert ``(iter, pre)`` tuple pairs into paired ``array('q')`` columns."""
    iters = array("q", (pair[0] for pair in pairs))
    pres = array("q", (pair[1] for pair in pairs))
    return iters, pres


# --------------------------------------------------------------------------- #
# child axis — the detailed algorithm of Figure 6
# --------------------------------------------------------------------------- #
def ll_child_arrays(container: DocumentContainer, context: ContextPairs, *,
                    stats: StaircaseStats | None = None,
                    normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted staircase join for the ``child`` axis (Figure 6),
    producing the result as paired ``(iter, pre)`` int arrays.

    A stack of *active* context nodes is maintained; each entry records the
    end of its partition (``eos``), the next child still to be produced
    (``nxt_child``) and the iterations in which the context node is active.
    Children are produced by skipping over their subtrees; when the scan
    reaches the next context node the current context is suspended (pushed
    deeper) and resumed after the inner context's partition is finished.

    ``normalized=True`` promises the context is already sorted on
    ``[pre, iter]`` and duplicate free (the step assembly and the fused
    chain pipeline normalize once per step) — the redundant sort/dedup
    pass is skipped.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    out_iters = array("q")
    out_pres = array("q")
    size = container.size

    # group consecutive context entries that share the same pre value
    groups: list[tuple[int, list[int]]] = []       # (pre, [iters])
    for pre, iteration in context:
        if groups and groups[-1][0] == pre:
            groups[-1][1].append(iteration)
        else:
            groups.append((pre, [iteration]))

    # stack entries: [eos, nxt_child, iters]
    active: list[list] = []

    def inner_loop_child(limit: int) -> None:
        """Produce children of the top context up to pre rank ``limit``."""
        entry = active[-1]
        next_child = entry[1]
        iters = entry[2]
        while next_child <= limit:
            stats.touch()
            out_iters.extend(iters)
            out_pres.extend([next_child] * len(iters))
            next_child += size[next_child] + 1
        entry[1] = next_child

    index = 0
    while index < len(groups):
        pre, iters = groups[index]
        stats.touch()
        if not active:
            active.append([pre + size[pre], pre + 1, iters])       # push_ctx
            index += 1
        elif active[-1][0] >= pre:
            # next context node is a descendant of the current context node:
            # produce the current context's children up to it, then push
            inner_loop_child(pre)
            active.append([pre + size[pre], pre + 1, iters])
            index += 1
        else:
            # next context is outside the current partition: finish it
            inner_loop_child(active[-1][0])
            active.pop()
    while active:
        inner_loop_child(active[-1][0])
        active.pop()

    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_child(container: DocumentContainer, context: ContextPairs, *,
             stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`ll_child_arrays`."""
    iters, pres = ll_child_arrays(container, context, stats=stats)
    return list(zip(iters, pres))


# --------------------------------------------------------------------------- #
# descendant / descendant-or-self — single scan with an active-iteration stack
# --------------------------------------------------------------------------- #
def ll_descendant_arrays(container: DocumentContainer, context: ContextPairs, *,
                         or_self: bool = False,
                         stats: StaircaseStats | None = None,
                         normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted descendant(-or-self) step as paired ``(iter, pre)`` arrays.

    The document region spanned by the context is scanned once; a stack of
    ``(eos, iteration)`` entries tracks which iterations are currently
    *active* (their context subtree covers the scan position).  Pruning
    happens per iteration: a context node whose iteration is already active
    is ignored (it would only generate duplicates within that iteration).

    The common single-active-context run (one outermost context per document
    region — every absolute path) is emitted as one dense ``pre`` window
    appended with two C-level ``extend`` calls instead of a per-node loop.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    out_iters = array("q")
    out_pres = array("q")
    size = container.size

    active: list[tuple[int, int]] = []      # (eos, iteration); one entry per iter
    index = 0
    total = len(context)
    position = context[0][0] if context else 0

    while index < total or active:
        if not active:
            # skipping: jump straight to the next context node
            position = context[index][0]
        # retire partitions that ended before the current position
        if active:
            active = [(end, iteration) for end, iteration in active
                      if end >= position]
        if len(active) == 1:
            # fast path: a single active context and no upcoming context
            # node before its end means the rest of its partition is one
            # contiguous descendant window — emit it wholesale
            end, iteration = active[0]
            next_context = context[index][0] if index < total else end + 1
            window_end = min(end, next_context - 1)
            if window_end >= position:
                span = range(position, window_end + 1)
                stats.touch(len(span))
                out_pres.extend(span)
                out_iters.extend([iteration] * len(span))
                position = window_end + 1
                if position > end:
                    active = []
                if index >= total and not active:
                    break
                continue
        # the current node is a descendant of every still-active context
        emitted = [iteration for _, iteration in active]
        if emitted:
            stats.touch()
        # activate context nodes located at the current position
        while index < total and context[index][0] == position:
            pre, iteration = context[index]
            index += 1
            stats.touch()
            if any(active_iter == iteration for _, active_iter in active):
                # pruning: this iteration is already covered by an outer
                # context node — the node above was (or will be) emitted for
                # it anyway
                stats.contexts_pruned += 1
                continue
            # keep the active list iteration-ordered so rows sharing a pre
            # rank come out iteration-ascending (the shared (pre, iter)
            # output contract of every array producer)
            bisect.insort(active, (pre + size[pre], iteration),
                          key=lambda entry: entry[1])
            if or_self:
                emitted.append(iteration)
        if emitted:
            if or_self:
                emitted.sort()
            out_iters.extend(emitted)
            out_pres.extend([position] * len(emitted))
        position += 1

    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_descendant(container: DocumentContainer, context: ContextPairs, *,
                  or_self: bool = False,
                  stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`ll_descendant_arrays`."""
    iters, pres = ll_descendant_arrays(container, context, or_self=or_self,
                                       stats=stats)
    return list(zip(iters, pres))


# --------------------------------------------------------------------------- #
# remaining axes — window arithmetic on the (pre, size, level) columns
# --------------------------------------------------------------------------- #
def ll_self_arrays(container: DocumentContainer, context: ContextPairs, *,
                   stats: StaircaseStats | None = None,
                   normalized: bool = False) -> "tuple[array, array]":
    """The self axis is the identity on the normalized context."""
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    out_iters = array("q", (iteration for _, iteration in context))
    out_pres = array("q", (pre for pre, _ in context))
    stats.results += len(out_pres)
    return out_iters, out_pres


def ancestor_stack_scan(container: DocumentContainer, context: ContextPairs):
    """One forward skip-scan over a normalized context, yielding
    ``(pre, iterations, stack)`` per distinct context pre rank.

    ``stack`` is the open-ancestor chain of ``pre`` as ``(ancestor_pre,
    ancestor_end)`` entries, outermost first — derived in a single pass by
    advancing a global cursor: subtrees that end before the next context
    node are skipped wholesale (``v += size[v] + 1``), nodes whose subtree
    covers it are pushed (they are exactly its ancestors).  Total cost is
    O(context + distinct ancestors touched), independent of the pre gaps
    the per-node ``parent_pre`` walk would re-scan.

    The yielded stack is reused across yields — callers must not hold on
    to it after advancing the generator.
    """
    size = container.size
    stack: list[tuple[int, int]] = []
    cursor = 0
    index = 0
    total = len(context)
    while index < total:
        pre = context[index][0]
        iterations = []
        while index < total and context[index][0] == pre:
            iterations.append(context[index][1])
            index += 1
        while stack and stack[-1][1] < pre:
            stack.pop()
        while cursor < pre:
            end = cursor + size[cursor]
            if end < pre:
                cursor = end + 1
            else:
                stack.append((cursor, end))
                cursor += 1
        yield pre, iterations, stack


def ll_parent_arrays(container: DocumentContainer, context: ContextPairs, *,
                     stats: StaircaseStats | None = None,
                     normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted parent step via the ancestor-stack scan (the parent of
    each context node is the top of its open-ancestor stack)."""
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    pairs: set[tuple[int, int]] = set()
    for pre, iterations, stack in ancestor_stack_scan(container, context):
        stats.touch()
        if not stack:
            continue                    # document root: no parent
        parent = stack[-1][0]
        for iteration in iterations:
            pairs.add((parent, iteration))
    ordered = sorted(pairs)
    out_iters = array("q", (iteration for _, iteration in ordered))
    out_pres = array("q", (pre for pre, _ in ordered))
    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_ancestor_arrays(container: DocumentContainer, context: ContextPairs, *,
                       or_self: bool = False,
                       stats: StaircaseStats | None = None,
                       normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted ancestor(-or-self) step via the ancestor-stack scan.

    The open-ancestor stack at each context node *is* its ancestor chain;
    walking it innermost-first allows path-sharing pruning per iteration —
    once an (ancestor, iteration) pair is known, all its own ancestors were
    recorded alongside it.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    seen: set[tuple[int, int]] = set()
    for pre, iterations, stack in ancestor_stack_scan(container, context):
        stats.touch()
        for iteration in iterations:
            if or_self:
                seen.add((pre, iteration))
            for ancestor, _ in reversed(stack):
                key = (ancestor, iteration)
                if key in seen:
                    break               # pruning: chain already emitted
                seen.add(key)
    ordered = sorted(seen)
    out_iters = array("q", (iteration for _, iteration in ordered))
    out_pres = array("q", (pre for pre, _ in ordered))
    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_following_arrays(container: DocumentContainer, context: ContextPairs, *,
                        stats: StaircaseStats | None = None,
                        normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted following step as one dense window per iteration.

    ``following(c) = pre(v) > pre(c) + size(c)``, so the union over an
    iteration's context set is the single window starting after the
    *earliest* context subtree end.  Iterations are activated in bound
    order during one sweep, keeping the output sorted ``(pre, iter)``
    without a final sort; the single-iteration case is two C-level extends.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    bound: dict[int, int] = {}          # iteration -> min subtree end
    for pre, iteration in context:
        end = pre + size[pre]
        if iteration not in bound or end < bound[iteration]:
            bound[iteration] = end
    out_iters = array("q")
    out_pres = array("q")
    total = container.node_count
    if len(bound) == 1:
        iteration, end = next(iter(bound.items()))
        span = range(end + 1, total)
        stats.touch(len(span))
        out_pres.extend(span)
        out_iters.extend([iteration] * len(span))
    elif bound:
        starts = sorted((end + 1, iteration)
                        for iteration, end in bound.items())
        active: list[int] = []
        index = 0
        count = len(starts)
        while index < count:
            segment_start = starts[index][0]
            while index < count and starts[index][0] == segment_start:
                active.append(starts[index][1])
                index += 1
            active.sort()
            segment_end = starts[index][0] - 1 if index < count else total - 1
            for pre in range(segment_start, min(segment_end, total - 1) + 1):
                stats.touch()
                out_iters.extend(active)
                out_pres.extend([pre] * len(active))
    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_preceding_arrays(container: DocumentContainer, context: ContextPairs, *,
                        stats: StaircaseStats | None = None,
                        normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted preceding step as a shrinking subtree-block scan.

    ``preceding(c) = pre(v) + size(v) < pre(c)``: per iteration the union
    is governed by the *latest* context pre ``b``.  Scanning from the
    document start, a node whose subtree ends before ``b`` contributes its
    whole subtree as one dense block (every node inside also ends before
    ``b``) and the scan jumps past it; otherwise the node is an ancestor
    of ``b`` and the scan steps inside.  Only the O(depth) ancestors of
    ``b`` are stepped over one by one — the scan is proportional to the
    output, not the document.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    bound: dict[int, int] = {}          # iteration -> max context pre
    for pre, iteration in context:
        if iteration not in bound or pre > bound[iteration]:
            bound[iteration] = pre

    out_iters = array("q")
    out_pres = array("q")
    if len(bound) == 1:
        iteration, limit = next(iter(bound.items()))
        pre = 0
        while pre < limit:
            stats.touch()
            end = pre + size[pre]
            if end < limit:
                span = range(pre, end + 1)
                out_pres.extend(span)
                out_iters.extend([iteration] * len(span))
                pre = end + 1
            else:
                pre += 1                # ancestor of the bound: not preceding
    elif bound:
        pairs: ResultPairs = []         # (pre, iteration) for the final sort
        for iteration, limit in bound.items():
            pre = 0
            while pre < limit:
                stats.touch()
                end = pre + size[pre]
                if end < limit:
                    pairs.extend((node, iteration)
                                 for node in range(pre, end + 1))
                    pre = end + 1
                else:
                    pre += 1
        pairs.sort()
        out_iters.extend(iteration for _, iteration in pairs)
        out_pres.extend(pre for pre, _ in pairs)
    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_siblings_arrays(container: DocumentContainer, context: ContextPairs, *,
                       following: bool,
                       stats: StaircaseStats | None = None,
                       normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted sibling steps with per-(parent, iteration) shrinking.

    Parents come from the one-pass ancestor-stack scan (no per-node
    ``parent_pre`` walks).  Context nodes sharing a parent within one
    iteration collapse to a single representative — the *earliest* for
    following-sibling (its following siblings cover every later context's)
    and the *latest* for preceding-sibling — so each sibling run is hopped
    exactly once per group, and distinct groups are disjoint by
    construction (every node has one parent): no dedup pass is needed.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    # (parent, parent_end, iteration) -> representative context pre;
    # the scan is pre-ascending, so first-wins = min, last-wins = max
    groups: dict[tuple[int, int, int], int] = {}
    for pre, iterations, stack in ancestor_stack_scan(container, context):
        stats.touch()
        if not stack:
            continue                    # document root: no siblings
        parent, parent_end = stack[-1]
        for iteration in iterations:
            key = (parent, parent_end, iteration)
            if following:
                groups.setdefault(key, pre)
            else:
                groups[key] = pre
    pairs: ResultPairs = []             # (pre, iteration)
    for (parent, parent_end, iteration), pre in groups.items():
        if following:
            sibling = pre + size[pre] + 1
            while sibling <= parent_end:
                stats.touch()
                pairs.append((sibling, iteration))
                sibling += size[sibling] + 1
        else:
            sibling = parent + 1
            while sibling < pre:
                stats.touch()
                pairs.append((sibling, iteration))
                sibling += size[sibling] + 1
    pairs.sort()
    out_iters = array("q", (iteration for _, iteration in pairs))
    out_pres = array("q", (pre for pre, _ in pairs))
    stats.results += len(out_pres)
    return out_iters, out_pres


# tuple-pair facades kept for the tests and exploratory use -------------------
def ll_self(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    iters, pres = ll_self_arrays(container, context)
    return list(zip(iters, pres))


def ll_parent(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    iters, pres = ll_parent_arrays(container, context)
    return list(zip(iters, pres))


def ll_ancestor(container: DocumentContainer, context: ContextPairs, *,
                or_self: bool = False) -> ResultPairs:
    iters, pres = ll_ancestor_arrays(container, context, or_self=or_self)
    return list(zip(iters, pres))


def ll_following(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    iters, pres = ll_following_arrays(container, context)
    return list(zip(iters, pres))


def ll_preceding(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    iters, pres = ll_preceding_arrays(container, context)
    return list(zip(iters, pres))


def ll_siblings(container: DocumentContainer, context: ContextPairs, *,
                following: bool) -> ResultPairs:
    iters, pres = ll_siblings_arrays(container, context, following=following)
    return list(zip(iters, pres))


def ll_attribute(container: DocumentContainer, context: ContextPairs,
                 name: str | None = None) -> list[tuple[int, int]]:
    """Loop-lifted attribute step: returns ``(iter, attribute_row)`` pairs."""
    wanted = None
    if name is not None and name != "*":
        wanted = container.names.lookup(name)
        if wanted is None:
            return []
    result: list[tuple[int, int]] = []
    for pre, iteration in normalize_context(context):
        for attr_index in container.attributes_of(pre):
            if wanted is None or container.attr_name[attr_index] == wanted:
                result.append((iteration, attr_index))
    return result


# --------------------------------------------------------------------------- #
# dispatching entry points
# --------------------------------------------------------------------------- #
def loop_lifted_step_arrays(container: DocumentContainer, context: ContextPairs,
                            axis: Axis, node_test: NodeTest | None = None, *,
                            stats: StaircaseStats | None = None,
                            normalized: bool = False) -> "tuple[array, array]":
    """Evaluate one location step for all iterations in a single pass,
    returning the result as paired ``(iter, pre)`` ``array('q')`` columns.

    Every tree axis runs natively on arrays — the window-arithmetic
    kernels above share the output contract (rows sorted ``(pre, iter)``,
    duplicate free, document order per iteration).  This is the producer
    the typed executor consumes — step results feed the relational layer
    without ever round-tripping through lists of Python tuples.
    ``normalized=True`` promises the context is already sorted on
    ``[pre, iter]`` and duplicate free.
    """
    if axis is Axis.ATTRIBUTE:
        raise StaircaseJoinError("attribute axis is handled by ll_attribute()")
    if axis is Axis.CHILD:
        iters, pres = ll_child_arrays(container, context, stats=stats,
                                      normalized=normalized)
    elif axis is Axis.DESCENDANT:
        iters, pres = ll_descendant_arrays(container, context, stats=stats,
                                           normalized=normalized)
    elif axis is Axis.DESCENDANT_OR_SELF:
        iters, pres = ll_descendant_arrays(container, context, or_self=True,
                                           stats=stats, normalized=normalized)
    elif axis is Axis.SELF:
        iters, pres = ll_self_arrays(container, context, stats=stats,
                                     normalized=normalized)
    elif axis is Axis.PARENT:
        iters, pres = ll_parent_arrays(container, context, stats=stats,
                                       normalized=normalized)
    elif axis is Axis.ANCESTOR:
        iters, pres = ll_ancestor_arrays(container, context, stats=stats,
                                         normalized=normalized)
    elif axis is Axis.ANCESTOR_OR_SELF:
        iters, pres = ll_ancestor_arrays(container, context, or_self=True,
                                         stats=stats, normalized=normalized)
    elif axis is Axis.FOLLOWING:
        iters, pres = ll_following_arrays(container, context, stats=stats,
                                          normalized=normalized)
    elif axis is Axis.PRECEDING:
        iters, pres = ll_preceding_arrays(container, context, stats=stats,
                                          normalized=normalized)
    elif axis is Axis.FOLLOWING_SIBLING:
        iters, pres = ll_siblings_arrays(container, context, following=True,
                                         stats=stats, normalized=normalized)
    elif axis is Axis.PRECEDING_SIBLING:
        iters, pres = ll_siblings_arrays(container, context, following=False,
                                         stats=stats, normalized=normalized)
    else:  # pragma: no cover - the Axis enum is exhausted above
        raise StaircaseJoinError(f"unsupported axis {axis}")

    if node_test is not None and node_test != NodeTest(kind="node"):
        matches = node_test.matches_tree_node
        kept_iters = array("q")
        kept_pres = array("q")
        for iteration, pre in zip(iters, pres):
            if matches(container, pre):
                kept_iters.append(iteration)
                kept_pres.append(pre)
        return kept_iters, kept_pres
    return iters, pres


def loop_lifted_step(container: DocumentContainer, context: ContextPairs,
                     axis: Axis, node_test: NodeTest | None = None, *,
                     stats: StaircaseStats | None = None) -> ResultPairs:
    """Evaluate one location step for all iterations in a single pass
    (tuple-pair facade over :func:`loop_lifted_step_arrays`)."""
    iters, pres = loop_lifted_step_arrays(container, context, axis, node_test,
                                          stats=stats)
    return list(zip(iters, pres))


def iterative_step_arrays(container: DocumentContainer, context: ContextPairs,
                          axis: Axis, node_test: NodeTest | None = None, *,
                          stats: StaircaseStats | None = None
                          ) -> "tuple[array, array]":
    """Figure 12 baseline: one plain staircase join per iteration, with the
    result delivered as paired ``(iter, pre)`` int arrays.

    The context pairs are grouped by iteration and the plain (single context
    set) staircase join is invoked once per group — i.e. one sequential pass
    over the document per iteration, which is exactly the overhead the
    loop-lifted algorithm removes.
    """
    if axis is Axis.ATTRIBUTE:
        raise StaircaseJoinError("attribute axis is handled by ll_attribute()")
    by_iteration: dict[int, list[int]] = {}
    for pre, iteration in context:
        by_iteration.setdefault(iteration, []).append(pre)
    out_iters = array("q")
    out_pres = array("q")
    for iteration in sorted(by_iteration):
        nodes = staircase_join(container, by_iteration[iteration], axis,
                               node_test, stats=stats)
        out_iters.extend([iteration] * len(nodes))
        out_pres.extend(nodes)
    return out_iters, out_pres


def iterative_step(container: DocumentContainer, context: ContextPairs,
                   axis: Axis, node_test: NodeTest | None = None, *,
                   stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`iterative_step_arrays`."""
    iters, pres = iterative_step_arrays(container, context, axis, node_test,
                                        stats=stats)
    return list(zip(iters, pres))
