"""Worst-case-optimal multi-way joins: recognition, execution, ablation.

The adversarial shape is the classic triangle: R(x, y) ⋈ S(y, z) ⋈ T(z, x)
where every R–S pair agrees on ``y`` (a single shared value), so any
pairwise plan materialises a Θ(n²) intermediate before the third conjunct
cuts it down — while the true result is linear (T pairs ``z`` and ``x``
one-to-one).  The generic join must produce bit-identical results with a
worst-case-optimal intermediate.
"""

import pytest

from repro import MonetXQuery
from repro.relational import capture


TRIANGLE_N = 12

TRIANGLE_QUERY = (
    "for $r in /db/r for $s in /db/s for $t in /db/t "
    "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
    "return <m>{$r/x/text()}</m>")


def triangle_document(n: int) -> str:
    rows = []
    rows.extend(f"<r><x>{i}</x><y>0</y></r>" for i in range(n))
    rows.extend(f"<s><y>0</y><z>{j}</z></s>" for j in range(n))
    rows.extend(f"<t><z>{j}</z><x>{j}</x></t>" for j in range(n))
    return "<db>" + "".join(rows) + "</db>"


@pytest.fixture(scope="module")
def triangle_engine() -> MonetXQuery:
    engine = MonetXQuery()
    engine.load_document_text(triangle_document(TRIANGLE_N), name="tri.xml")
    return engine


class TestTriangleRegression:
    def test_results_bit_identical_and_wcoj_traced(self, triangle_engine):
        with capture() as generic_trace:
            generic = triangle_engine.query(TRIANGLE_QUERY).serialize()
        with capture() as pairwise_trace:
            pairwise = triangle_engine.query(
                TRIANGLE_QUERY,
                options=triangle_engine.options.replace(wcoj=False)
            ).serialize()
        assert generic == pairwise
        assert generic.count("<m>") == TRIANGLE_N       # linear output
        assert generic_trace.count("plan.wcoj") == 1
        assert pairwise_trace.count("plan.wcoj") == 0

    def test_pairwise_intermediate_quadratic_wcoj_linear(self,
                                                         triangle_engine):
        n = TRIANGLE_N
        with capture() as generic_trace:
            triangle_engine.query(TRIANGLE_QUERY)
        with capture() as pairwise_trace:
            triangle_engine.query(
                TRIANGLE_QUERY,
                options=triangle_engine.options.replace(wcoj=False))
        wcoj_entries = [entry for entry in generic_trace.entries
                        if entry.algorithm == "plan.wcoj"]
        assert [entry.rows_out for entry in wcoj_entries] == [n]
        # the pairwise plan's first join pairs every R row with every S row
        pairwise_peak = max(entry.rows_out
                            for entry in pairwise_trace.entries
                            if entry.algorithm.startswith("existential."))
        assert pairwise_peak >= n * n

    def test_explain_surfaces_the_strategy(self, triangle_engine):
        plan = triangle_engine.explain(TRIANGLE_QUERY)
        assert "(wcoj)" in plan
        assert "wcoj-recognition" in plan

    def test_wcoj_off_restores_the_pairwise_plan(self, triangle_engine):
        plan = triangle_engine.explain(
            TRIANGLE_QUERY,
            options=triangle_engine.options.replace(wcoj=False))
        assert "wcoj" not in plan
        assert "join-recognized" in plan        # the PR 2 pairwise schedule


class TestRecognitionRule:
    """Shapes that must NOT take the generic-join path."""

    def explain(self, engine, query, **changes):
        options = engine.options.replace(**changes) if changes else None
        return engine.explain(query, options=options)

    def test_two_way_joins_stay_pairwise(self, triangle_engine):
        plan = self.explain(
            triangle_engine,
            "for $r in /db/r for $s in /db/s "
            "where $r/y = $s/y return $r/x/text()")
        assert "(wcoj)" not in plan
        assert "join-recognized" in plan

    def test_disconnected_clauses_stay_pairwise(self, triangle_engine):
        plan = self.explain(
            triangle_engine,
            "for $r in /db/r for $s in /db/s for $t in /db/t "
            "where $r/y = $s/y return $t/x/text()")
        assert "(wcoj)" not in plan

    def test_positional_variables_disqualify(self, triangle_engine):
        plan = self.explain(
            triangle_engine,
            "for $r at $p in /db/r for $s in /db/s for $t in /db/t "
            "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
            "return $p")
        assert "(wcoj)" not in plan

    def test_let_clauses_disqualify(self, triangle_engine):
        plan = self.explain(
            triangle_engine,
            "for $r in /db/r let $v := $r/y for $s in /db/s for $t in /db/t "
            "where $v = $s/y and $s/z = $t/z and $t/x = $r/x "
            "return $r/x/text()")
        assert "(wcoj)" not in plan

    def test_dependent_binding_sequences_disqualify(self, triangle_engine):
        plan = self.explain(
            triangle_engine,
            "for $r in /db/r for $s in $r/y for $t in /db/t "
            "where $r/y = $s and $s = $t/z and $t/x = $r/x "
            "return $r/x/text()")
        assert "(wcoj)" not in plan

    def test_non_eq_conjunct_stays_a_residual_filter(self, triangle_engine):
        # r-s-t are still connected through the two eq edges, so wcoj
        # applies — but the < conjunct must survive as a residual filter
        query = ("for $r in /db/r for $s in /db/s for $t in /db/t "
                 "where $r/y = $s/y and $s/z = $t/z and $t/x < $r/x "
                 "return $r/x/text()")
        generic = triangle_engine.query(query).serialize()
        pairwise = triangle_engine.query(
            query,
            options=triangle_engine.options.replace(wcoj=False)).serialize()
        assert generic == pairwise

    def test_non_eq_edges_do_not_connect_the_clique(self, triangle_engine):
        # only $r=$s is an eq edge; $t hangs off a < conjunct, so the
        # clique over eq edges does not span all clauses
        plan = self.explain(
            triangle_engine,
            "for $r in /db/r for $s in /db/s for $t in /db/t "
            "where $r/y = $s/y and $t/x < $r/x "
            "return $r/x/text()")
        assert "(wcoj)" not in plan

    def test_join_recognition_off_disables_wcoj_too(self, triangle_engine):
        plan = self.explain(triangle_engine, TRIANGLE_QUERY,
                            join_recognition=False)
        assert "wcoj" not in plan


class TestExecutionCorners:
    def test_nested_inside_an_outer_loop(self, triangle_engine):
        # the clique sits under an enclosing for: the generic join runs
        # once and its tuples are replicated per outer iteration
        query = ("for $o in /db/t/x "
                 "return count(for $r in /db/r for $s in /db/s "
                 "for $t in /db/t "
                 "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
                 "and $t/x = $o "
                 "return $t)")
        generic = triangle_engine.query(query).serialize()
        pairwise = triangle_engine.query(
            query,
            options=triangle_engine.options.replace(wcoj=False)).serialize()
        assert generic == pairwise

    def test_empty_outer_loop(self, triangle_engine):
        query = ("for $o in /db/missing "
                 "return count(for $r in /db/r for $s in /db/s "
                 "for $t in /db/t "
                 "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
                 "return $t)")
        assert triangle_engine.query(query).serialize() == \
            triangle_engine.query(
                query,
                options=triangle_engine.options.replace(wcoj=False)
            ).serialize() == ""

    def test_empty_relation(self, triangle_engine):
        query = ("for $r in /db/r for $s in /db/s for $t in /db/missing "
                 "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
                 "return $t")
        assert triangle_engine.query(query).serialize() == ""

    def test_order_by_over_the_clique(self, triangle_engine):
        query = ("for $r in /db/r for $s in /db/s for $t in /db/t "
                 "where $r/y = $s/y and $s/z = $t/z and $t/x = $r/x "
                 "order by $r/x/text() descending "
                 "return $r/x/text()")
        generic = triangle_engine.query(query).serialize()
        pairwise = triangle_engine.query(
            query,
            options=triangle_engine.options.replace(wcoj=False)).serialize()
        assert generic == pairwise

    def test_four_way_chain(self, triangle_engine):
        query = ("for $a in /db/r for $b in /db/s for $c in /db/t "
                 "for $d in /db/r "
                 "where $a/y = $b/y and $b/z = $c/z and $c/x = $d/x "
                 "return $d/x/text()")
        with capture() as trace:
            generic = triangle_engine.query(query).serialize()
        pairwise = triangle_engine.query(
            query,
            options=triangle_engine.options.replace(wcoj=False)).serialize()
        assert generic == pairwise
        assert trace.count("plan.wcoj") == 1

    def test_mixed_typed_keys_follow_per_pair_rules(self):
        # "01" and 1 join numerically (one genuine side); "01" and "1"
        # do not (two strings compare as strings); "1.0" matches 1 but
        # not "1" — the cast-vs-genuine cases the encoding must keep apart
        engine = MonetXQuery()
        engine.load_document_text(
            "<db>"
            "<a><k>01</k></a><a><k>1.0</k></a><a><k>x</k></a>"
            "<b><k>1</k></b><b><k>01</k></b>"
            "<c><k>1</k></c><c><k>x</k></c>"
            "</db>", name="mixed.xml")
        query = ("for $a in /db/a for $b in /db/b for $c in /db/c "
                 "where $a/k = $b/k and $b/k = $c/k and $c/k = $a/k "
                 "return <hit>{$a/k/text()}{$b/k/text()}{$c/k/text()}</hit>")
        generic = engine.query(query).serialize()
        pairwise = engine.query(
            query, options=engine.options.replace(wcoj=False)).serialize()
        assert generic == pairwise

    def test_plan_cache_keys_on_the_switch(self, triangle_engine):
        # the same query text alternating between wcoj on/off must never
        # reuse the other configuration's plan
        for _ in range(2):
            with capture() as trace_on:
                triangle_engine.query(TRIANGLE_QUERY)
            assert trace_on.count("plan.wcoj") == 1
            with capture() as trace_off:
                triangle_engine.query(
                    TRIANGLE_QUERY,
                    options=triangle_engine.options.replace(wcoj=False))
            assert trace_off.count("plan.wcoj") == 0
