"""The subplan-cache admission policy: rows × observed repeats vs. threshold.

Tiny absolute paths (``/site``: one row) must not occupy cache slots on
first sight, while large materialisations are admitted immediately and hot
tiny paths earn their slot after repeated misses.
"""

from repro.server import QueryServer, SubplanCache

from conftest import SMALL_XML


def make_key(fingerprint: str, version: int = 1, root: int = 0) -> tuple:
    return SubplanCache.make_key(fingerprint, version, object(), root)


class TestAdmissionPolicy:
    def test_large_result_admitted_on_first_miss(self):
        cache = SubplanCache(admission_threshold=2)
        key = make_key("fp-large")
        assert cache.lookup(key) is None
        cache.insert(key, ("a", "b", "c"))
        assert cache.lookup(key) == ("a", "b", "c")
        assert cache.stats.rejected == 0

    def test_tiny_result_rejected_until_hot(self):
        cache = SubplanCache(admission_threshold=2)
        key = make_key("fp-tiny")
        assert cache.lookup(key) is None           # 1st observation
        cache.insert(key, ("only",))               # 1 row × 1 repeat < 2
        assert len(cache) == 0
        assert cache.stats.rejected == 1
        assert cache.lookup(key) is None           # 2nd observation
        cache.insert(key, ("only",))               # 1 row × 2 repeats >= 2
        assert len(cache) == 1
        assert cache.lookup(key) == ("only",)

    def test_empty_results_follow_the_one_row_rule(self):
        cache = SubplanCache(admission_threshold=2)
        key = make_key("fp-empty")
        cache.lookup(key)
        cache.insert(key, ())
        assert len(cache) == 0 and cache.stats.rejected == 1
        cache.lookup(key)
        cache.insert(key, ())
        assert len(cache) == 1                     # hot empty paths cache too

    def test_zero_threshold_admits_everything(self):
        cache = SubplanCache(admission_threshold=0)
        key = make_key("fp-any")
        cache.lookup(key)
        cache.insert(key, ())
        assert len(cache) == 1
        assert cache.stats.rejected == 0

    def test_threshold_exposed_in_stats(self):
        cache = SubplanCache(admission_threshold=7)
        stats = cache.stats.snapshot()
        assert stats.admission_threshold == 7
        cache.stats.clear()
        assert cache.stats.admission_threshold == 7   # config survives clear()

    def test_observation_memory_is_bounded(self):
        cache = SubplanCache(capacity=4, admission_threshold=10)
        for index in range(100):
            cache.lookup(make_key(f"fp-{index}"))
        assert len(cache._observations) <= 16


class TestAdmissionThroughTheServer:
    def test_tiny_root_path_is_not_materialized(self):
        with QueryServer(threads=1) as server:
            server.load_document_text(SMALL_XML, name="auction.xml")
            server.execute("/site")                       # one-row path
            fingerprints_cached = len(server.subplan_cache)
            assert fingerprints_cached == 0
            assert server.subplan_cache.stats.rejected >= 1

    def test_multi_row_path_is_materialized_and_prefix_rejected(self):
        with QueryServer(threads=1) as server:
            server.load_document_text(SMALL_XML, name="auction.xml")
            server.execute("/site/people/person")         # 3 persons
            keys = server.subplan_cache.keys()
            assert keys, "the selective path must be admitted"
            # the one-row /site and /site/people prefixes were rejected
            assert server.subplan_cache.stats.rejected >= 2

    def test_hot_tiny_path_eventually_served_from_cache(self):
        with QueryServer(threads=1) as server:
            server.load_document_text(SMALL_XML, name="auction.xml")
            for _ in range(3):
                server.execute("/site")
            assert server.subplan_cache.stats.hits >= 1
