"""Run the XMark benchmark queries on a generated auction document.

This is the workload the paper's evaluation (Section 6) is built on: a
scalable auction-site document and twenty queries covering path navigation,
joins, aggregation and reconstruction.

Run with:  python examples/xmark_analytics.py [scale]
"""

import sys
import time

from repro import MonetXQuery
from repro.xmark import XMARK_QUERIES, generate_document


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"generating XMark document at scale factor {scale} ...")
    text = generate_document(scale, seed=42)
    print(f"  {len(text) / 1024:.1f} KiB of XML")

    engine = MonetXQuery()
    started = time.perf_counter()
    document = engine.load_document_text(text, name="auction.xml")
    print(f"  shredded into {document.node_count} nodes "
          f"in {time.perf_counter() - started:.2f}s")

    print("\nrunning the 20 XMark queries:")
    print(f"{'query':>6}  {'time':>9}  {'items':>6}")
    total = 0.0
    for number in sorted(XMARK_QUERIES):
        engine.reset_transient()
        started = time.perf_counter()
        result = engine.query(XMARK_QUERIES[number])
        elapsed = time.perf_counter() - started
        total += elapsed
        print(f"   Q{number:<3}  {elapsed * 1000:7.1f}ms  {len(result):>6}")
    print(f"\ntotal: {total:.2f}s")

    print("\nsample output of Q8 (number of purchased items per person):")
    engine.reset_transient()
    print(engine.query(XMARK_QUERIES[8]).serialize()[:400], "...")


if __name__ == "__main__":
    main()
