"""Document statistics and the plan-level cardinality estimator."""

import pytest

from repro import EngineOptions, MonetXQuery
from repro.relational.cardinality import (CardinalityEstimator,
                                          StoreStatistics)
from repro.relational.plan import PlanBuilder
from repro.xml import DocumentStore, shred_document
from repro.xquery import parse, plan_module
from repro.xquery.planner import plan_expression


DOC = ("<site>"
       "<people>" + "".join(f'<person id="p{i}"><name>n{i}</name></person>'
                            for i in range(5)) + "</people>"
       "<items>" + "".join(f'<item id="i{i}"/>' for i in range(2)) + "</items>"
       "</site>")


@pytest.fixture
def stats(store) -> StoreStatistics:
    shred_document(DOC, "doc.xml", store)
    return StoreStatistics.from_store(store)


class TestTagStatistics:
    def test_tag_counts_collected_at_shred_time(self, store):
        container = shred_document(DOC, "doc.xml", store)
        counts = container.tag_counts()
        assert counts["person"] == 5
        assert counts["item"] == 2
        assert counts["site"] == 1
        assert container.tag_count("person") == 5
        assert container.tag_count("nosuchtag") == 0
        assert container.element_count == sum(counts.values())

    def test_constructed_elements_update_counts(self, store):
        container = store.new_container("(t)", transient=True)
        from repro.xml.document import NodeKind
        name_id = container.names.intern("x")
        container.add_node(NodeKind.ELEMENT, 0, name_id=name_id)
        container.add_node(NodeKind.ELEMENT, 1, name_id=name_id)
        assert container.tag_count("x") == 2

    def test_loaded_documents_table_has_element_counts(self, store):
        shred_document(DOC, "doc.xml", store)
        table = store.loaded_documents_table()
        assert "elements" in table.column_names
        [elements] = table.col("elements")
        # site + people + 5 person + 5 name + items + 2 item
        assert elements == 15

    def test_tag_statistics_table(self, store):
        shred_document(DOC, "doc.xml", store)
        table = store.tag_statistics_table()
        rows = dict(zip(table.col("tag"), table.col("count")))
        assert rows["person"] == 5
        assert rows["item"] == 2

    def test_store_snapshot_aggregates_documents(self, store):
        shred_document(DOC, "a.xml", store)
        shred_document("<site><person/></site>", "b.xml", store)
        snapshot = StoreStatistics.from_store(store)
        assert snapshot.document_count == 2
        assert snapshot.tag_count("person") == 6
        assert snapshot.available


class TestEstimator:
    def test_absolute_path_estimated_from_tag_counts(self, stats):
        plan = plan_expression(parse("/site/people/person").body)
        estimator = CardinalityEstimator(stats)
        assert estimator.estimate(plan) == 5.0

    def test_relative_path_bounded_by_context(self, stats):
        builder = PlanBuilder()
        plan = plan_expression(parse("$p/name").body, builder)
        estimator = CardinalityEstimator(stats)
        # one context node, one expected match
        assert estimator.estimate(plan) <= 5.0

    def test_predicates_reduce_estimates(self, stats):
        estimator = CardinalityEstimator(stats)
        bare = plan_expression(parse("/site/people/person").body)
        filtered = plan_expression(parse('/site/people/person[@id = "p0"]').body)
        assert estimator.estimate(filtered) < estimator.estimate(bare)

    def test_sequences_add_up(self, stats):
        estimator = CardinalityEstimator(stats)
        plan = plan_expression(parse("(/site/people/person, /site/items/item)").body)
        assert estimator.estimate(plan) == 7.0

    def test_literal_range_is_exact(self, stats):
        estimator = CardinalityEstimator(stats)
        assert estimator.estimate(plan_expression(parse("1 to 10").body)) == 10.0

    def test_without_statistics_estimator_is_unavailable(self):
        estimator = CardinalityEstimator(None)
        assert not estimator.available
        # estimates still return defensible defaults instead of failing
        assert estimator.estimate(plan_expression(parse("(1, 2)").body)) == 2.0


class TestExplainSurfacesEstimates:
    JOIN_QUERY = ("for $p in /site/people/person "
                  "for $c in /site/closed_auctions/closed_auction "
                  "where $c/buyer/@person = $p/@id "
                  "return $p/name/text()")

    def test_join_estimates_in_plan_dump(self, engine):
        dump = engine.explain(self.JOIN_QUERY)
        assert "join-recognized" in dump
        assert "est[build~" in dump
        assert "build-side=" in dump

    def test_estimates_absent_without_cost_based_joins(self, engine):
        options = engine.options.replace(cost_based_joins=False)
        dump = engine.explain(self.JOIN_QUERY, options=options)
        assert "join-recognized" in dump
        assert "est[build~" not in dump

    def test_estimates_absent_without_documents(self):
        mxq = MonetXQuery()
        dump = mxq.explain(self.JOIN_QUERY)
        assert "est[build~" not in dump
