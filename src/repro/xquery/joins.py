"""Existential comparison and join evaluation strategies (Section 4.2).

XQuery's general comparisons (``= != < <= > >=``) have existential
semantics: the comparison is true as soon as *any* pair of items from the
two operand sequences satisfies the underlying value comparison.  The module
implements the two relational strategies of Figure 8:

* :func:`existential_join` with ``strategy="dedup"`` — theta-join the two
  (iteration, value) relations on the value predicate and eliminate the
  duplicate iteration pairs afterwards (the generally applicable plan of
  Figure 8a);
* ``strategy="aggregate"`` — for the order comparisons, aggregate each
  iteration group to its minimum / maximum first, so the theta-join produces
  unique iteration pairs directly (Figure 8b);
* ``strategy="auto"`` picks the aggregate plan whenever the comparison
  allows it.

**Typing.**  General comparisons promote *per pair*, as the XQuery rules for
untyped atomics demand: a pair with at least one numeric operand compares
numerically (the untyped side is cast; an uncastable value makes the pair
false), while a pair of two non-numeric values compares as strings.  The
relational plans realise this by partitioning each input into a numeric and
a string domain and joining the (at most three) cross-domain combinations
that the pair rules allow — so ``("a", 1) = "a"`` is true through the
string-domain join while ``("a", 1) = 1`` is true through the numeric one.

:func:`existential_compare` applies the same machinery to the *intra-loop*
case (both operand sequences keyed by the same ``iter``), producing the
boolean result per iteration.
"""

from __future__ import annotations

from typing import Any

from ..relational import explain
from ..relational import operators as ops
from ..relational.column import Column
from ..relational.properties import TableProps
from ..relational.table import Table
from ..relational.wcoj import eq_join_pairs
from .types import atomize, to_number


_FLIPPED = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
_MIN_MAX_PLAN = {
    # op -> (aggregate for the left group, aggregate for the right group)
    "lt": ("min", "max"),
    "le": ("min", "max"),
    "gt": ("max", "min"),
    "ge": ("max", "min"),
}


def flip_comparison(op: str) -> str:
    """The comparison to use when the operands are swapped."""
    return _FLIPPED[op]


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: the per-pair typing predicate, shared with the WCOJ attribute encoding
is_numeric_value = _is_numeric


def _partition_rows(rows: list[tuple[int, Any]]
                    ) -> tuple[list[tuple[int, Any]], list[tuple[int, Any]],
                               list[tuple[int, Any]]]:
    """Split ``(group, value)`` rows into the typed domains of a comparison.

    Returns ``(numeric, strings, castable)``: genuinely numeric rows, the
    string representations of the non-numeric rows, and the numeric casts of
    those non-numeric rows that *can* be cast (they participate in numeric
    pairs against a genuinely numeric other side).
    """
    numeric: list[tuple[int, Any]] = []
    strings: list[tuple[int, Any]] = []
    castable: list[tuple[int, Any]] = []
    for group, value in rows:
        if _is_numeric(value):
            numeric.append((group, value))
        else:
            strings.append((group, str(value)))
            number = to_number(value)
            if number is not None:
                castable.append((group, number))
    return numeric, strings, castable


def _domain_products(left_rows: list[tuple[int, Any]],
                     right_rows: list[tuple[int, Any]]
                     ) -> list[tuple[list[tuple[int, Any]],
                                     list[tuple[int, Any]]]]:
    """The per-pair typing rules as (left, right) input combinations.

    A pair compares numerically when at least one side is genuinely numeric
    (the other side cast), and as strings when neither is.  That yields at
    most three joins: numeric×(numeric∪cast), cast×numeric, string×string.
    """
    left_num, left_str, left_cast = _partition_rows(left_rows)
    right_num, right_str, right_cast = _partition_rows(right_rows)
    products = []
    if left_num and (right_num or right_cast):
        products.append((left_num, right_num + right_cast))
    if left_cast and right_num:
        products.append((left_cast, right_num))
    if left_str and right_str:
        products.append((left_str, right_str))
    return products


def _value_table(rows: list[tuple[int, Any]], group_name: str) -> Table:
    table = Table([
        Column(group_name, [row[0] for row in rows]),
        Column("value", [row[1] for row in rows]),
    ], props=TableProps(order=(group_name,)))
    return table


def existential_join(left: list[tuple[int, Any]], right: list[tuple[int, Any]],
                     op: str, *, strategy: str = "auto",
                     numeric: bool | None = None) -> list[tuple[int, int]]:
    """Distinct ``(left_group, right_group)`` pairs satisfying the comparison.

    ``left`` and ``right`` are lists of ``(group, value)`` pairs (values are
    atomized items).  Pairs are typed individually: a pair with a numeric
    operand compares numerically (uncastable partners drop out), two
    non-numeric operands compare as strings.  ``numeric=True`` forces the
    legacy all-numeric promotion of both sides.

    ``strategy="aggregate"`` is only defined for the order comparisons
    (Figure 8b needs min/max aggregates); requesting it for ``eq``/``ne``
    raises :class:`ValueError` — use ``"auto"`` to pick it opportunistically.
    """
    if strategy not in ("auto", "dedup", "aggregate"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy == "aggregate" and op not in _MIN_MAX_PLAN:
        raise ValueError(
            f"strategy 'aggregate' is undefined for the {op!r} comparison "
            "(Figure 8b applies to order comparisons only); "
            "use strategy 'auto' or 'dedup'")
    if not left or not right:
        return []

    left_rows = [(group, atomize(value)) for group, value in left]
    right_rows = [(group, atomize(value)) for group, value in right]

    if numeric:
        left_rows = [(group, to_number(value)) for group, value in left_rows]
        right_rows = [(group, to_number(value)) for group, value in right_rows]
        left_rows = [(group, value) for group, value in left_rows if value is not None]
        right_rows = [(group, value) for group, value in right_rows if value is not None]
        products = [(left_rows, right_rows)] if left_rows and right_rows else []
    else:
        products = _domain_products(left_rows, right_rows)

    chosen = strategy
    if chosen == "auto":
        chosen = "aggregate" if op in _MIN_MAX_PLAN else "dedup"

    pairs: set[tuple[int, int]] = set()
    for left_part, right_part in products:
        pairs.update(_join_one_domain(left_part, right_part, op, chosen))
    result = sorted(pairs)
    explain.record("existential", f"existential.{chosen}",
                   len(left_rows) + len(right_rows), len(result), detail=op)
    return result


def _join_one_domain(left_rows: list[tuple[int, Any]],
                     right_rows: list[tuple[int, Any]],
                     op: str, chosen: str) -> list[tuple[int, int]]:
    """One typed-domain join (all values homogeneous and comparable)."""
    if chosen == "dedup" and op == "eq":
        # the vectorized path: intern values into sorted int buffers and
        # align equal-value runs instead of dict buckets + distinct
        return eq_join_pairs(left_rows, right_rows)
    left_table = _value_table(left_rows, "iter1")
    right_table = _value_table(right_rows, "iter2")

    if chosen == "aggregate":
        left_kind, right_kind = _MIN_MAX_PLAN[op]
        left_table = ops.aggregate(left_table, "iter1",
                                   [("value", left_kind + "-value", "value")])
        right_table = ops.aggregate(right_table, "iter2",
                                    [("value", right_kind + "-value", "value")])
        right_table = ops.project(right_table, {"iter2": "iter2", "value2": "value"})
        joined = ops.theta_join(left_table, right_table, "value", "value2", op)
        return list(zip(joined.col("iter1"), joined.col("iter2")))

    right_table = ops.project(right_table, {"iter2": "iter2", "value2": "value"})
    joined = ops.theta_join(left_table, right_table, "value", "value2", op)
    projected = ops.project(joined, ("iter1", "iter2"))
    projected = ops.distinct(projected, ("iter1", "iter2"))
    return list(zip(projected.col("iter1"), projected.col("iter2")))


def existential_compare(left: dict[int, list[Any]], right: dict[int, list[Any]],
                        op: str, *, strategy: str = "auto") -> set[int]:
    """Iterations for which the general comparison is true (intra-loop case).

    ``left`` and ``right`` map an iteration to the (atomized) items of the
    respective operand sequence in that iteration.  The relational plan
    behind this is an equi-join on ``iter`` followed by the value comparison;
    because both inputs arrive ordered on ``iter``, the join degenerates to a
    per-iteration merge.  An empty operand sequence makes the comparison
    false for that iteration.  Pairs are typed individually, exactly as in
    :func:`existential_join`.  With ``strategy`` "aggregate"/"auto" the order
    comparisons only inspect the min/max of each typed domain (Figure 8b
    applied per iteration).
    """
    if strategy not in ("auto", "dedup", "aggregate"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy == "aggregate" and op not in _MIN_MAX_PLAN:
        raise ValueError(
            f"strategy 'aggregate' is undefined for the {op!r} comparison; "
            "use strategy 'auto' or 'dedup'")
    true_iterations: set[int] = set()
    use_aggregate = strategy in ("auto", "aggregate") and op in _MIN_MAX_PLAN
    for iteration, left_values in left.items():
        right_values = right.get(iteration)
        if not right_values or not left_values:
            continue
        left_rows = [(iteration, atomize(value)) for value in left_values]
        right_rows = [(iteration, atomize(value)) for value in right_values]
        for left_part, right_part in _domain_products(left_rows, right_rows):
            left_atoms = [value for _, value in left_part]
            right_atoms = [value for _, value in right_part]
            if _any_pair_matches(left_atoms, right_atoms, op,
                                 use_aggregate=use_aggregate):
                true_iterations.add(iteration)
                break
    return true_iterations


def _any_pair_matches(left_atoms: list[Any], right_atoms: list[Any], op: str, *,
                      use_aggregate: bool) -> bool:
    if op == "eq":
        return not set(left_atoms).isdisjoint(right_atoms)
    if op == "ne":
        # some pair differs iff the union holds more than one distinct value
        return len(set(left_atoms) | set(right_atoms)) > 1
    if use_aggregate:
        left_kind, right_kind = _MIN_MAX_PLAN[op]
        left_value = min(left_atoms) if left_kind == "min" else max(left_atoms)
        right_value = max(right_atoms) if right_kind == "max" else min(right_atoms)
        return ops.compare_values(op, left_value, right_value)
    return any(ops.compare_values(op, left_value, right_value)
               for left_value in left_atoms for right_value in right_atoms)
