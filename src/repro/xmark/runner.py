"""Run XMark queries against the relational engine and the baseline.

The runner is shared by the integration tests and by every benchmark: it
loads a generated document into an engine, executes a selection of the
twenty queries under a given option set, and reports per-query timings and
result sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..xquery.engine import EngineOptions, MonetXQuery
from .generator import generate_document
from .queries import XMARK_QUERIES


@dataclass
class QueryTiming:
    """Timing and result size of one query execution."""

    query: int
    seconds: float
    result_size: int


@dataclass
class XMarkRun:
    """The outcome of running a set of XMark queries."""

    scale: float
    timings: dict[int, QueryTiming] = field(default_factory=dict)

    def seconds(self, query: int) -> float:
        return self.timings[query].seconds

    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings.values())


def make_engine(scale: float = 0.001, seed: int = 42,
                options: EngineOptions | None = None) -> MonetXQuery:
    """A fresh engine with a generated XMark document loaded."""
    engine = MonetXQuery(options=options)
    engine.load_document_text(generate_document(scale, seed), name="auction.xml")
    return engine


def run_queries(engine: MonetXQuery, queries: list[int] | None = None, *,
                options: EngineOptions | None = None,
                scale: float = 0.0, repetitions: int = 1) -> XMarkRun:
    """Execute the given XMark queries (all twenty by default)."""
    numbers = queries if queries is not None else sorted(XMARK_QUERIES)
    run = XMarkRun(scale=scale)
    for number in numbers:
        best = None
        size = 0
        for _ in range(repetitions):
            engine.reset_transient()
            started = time.perf_counter()
            result = engine.query(XMARK_QUERIES[number], options=options)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
            size = len(result)
        run.timings[number] = QueryTiming(number, best or 0.0, size)
    return run
