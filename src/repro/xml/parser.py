"""A small, dependency-free, event-based XML parser.

The shredder only needs a forward pass of events (start element, end
element, text, comment, processing instruction); this parser provides that
for the well-formed XML the XMark generator and the test documents produce.
It supports attributes, the five predefined entities, decimal/hex character
references, CDATA sections, comments, processing instructions and an XML
declaration / doctype line.  It intentionally does not implement DTD
processing or external entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import XMLParseError


@dataclass
class StartElement:
    name: str
    attributes: list[tuple[str, str]]


@dataclass
class EndElement:
    name: str


@dataclass
class Text:
    content: str


@dataclass
class Comment:
    content: str


@dataclass
class ProcessingInstruction:
    target: str
    content: str


Event = StartElement | EndElement | Text | Comment | ProcessingInstruction


_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def unescape(text: str) -> str:
    """Resolve the predefined entities and character references in ``text``."""
    if "&" not in text:
        return text
    pieces: list[str] = []
    position = 0
    length = len(text)
    while position < length:
        ampersand = text.find("&", position)
        if ampersand == -1:
            pieces.append(text[position:])
            break
        pieces.append(text[position:ampersand])
        semicolon = text.find(";", ampersand + 1)
        if semicolon == -1:
            raise XMLParseError("unterminated entity reference")
        entity = text[ampersand + 1:semicolon]
        if entity.startswith("#x") or entity.startswith("#X"):
            pieces.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            pieces.append(chr(int(entity[1:])))
        elif entity in _ENTITIES:
            pieces.append(_ENTITIES[entity])
        else:
            raise XMLParseError(f"unknown entity &{entity};")
        position = semicolon + 1
    return "".join(pieces)


def escape_text(text: str) -> str:
    """Escape character data for serialization."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape an attribute value for serialization (double quotes)."""
    return escape_text(text).replace('"', "&quot;")


class XMLPullParser:
    """Iterate parse events over an XML string."""

    def __init__(self, text: str):
        self._text = text
        self._position = 0
        self._length = len(text)
        self._open: list[str] = []

    # ------------------------------------------------------------------ #
    def events(self) -> Iterator[Event]:
        """Yield parse events; raises :class:`XMLParseError` on malformed input."""
        text = self._text
        while self._position < self._length:
            lt = text.find("<", self._position)
            if lt == -1:
                trailing = text[self._position:]
                if trailing.strip():
                    raise self._error("character data after document element")
                break
            if lt > self._position:
                chunk = text[self._position:lt]
                if self._open:
                    yield Text(unescape(chunk))
                elif chunk.strip():
                    raise self._error("character data outside document element")
            self._position = lt
            if text.startswith("<!--", lt):
                yield self._parse_comment()
            elif text.startswith("<![CDATA[", lt):
                yield self._parse_cdata()
            elif text.startswith("<?", lt):
                event = self._parse_pi()
                if event is not None:
                    yield event
            elif text.startswith("<!", lt):
                self._skip_doctype()
            elif text.startswith("</", lt):
                yield self._parse_end_tag()
            else:
                yield from self._parse_start_tag()
        if self._open:
            raise self._error(f"unclosed element <{self._open[-1]}>")

    # ------------------------------------------------------------------ #
    def _error(self, message: str) -> XMLParseError:
        line = self._text.count("\n", 0, self._position) + 1
        last_newline = self._text.rfind("\n", 0, self._position)
        column = self._position - last_newline
        return XMLParseError(message, line=line, column=column)

    def _parse_comment(self) -> Comment:
        end = self._text.find("-->", self._position + 4)
        if end == -1:
            raise self._error("unterminated comment")
        content = self._text[self._position + 4:end]
        self._position = end + 3
        return Comment(content)

    def _parse_cdata(self) -> Text:
        end = self._text.find("]]>", self._position + 9)
        if end == -1:
            raise self._error("unterminated CDATA section")
        content = self._text[self._position + 9:end]
        self._position = end + 3
        return Text(content)

    def _parse_pi(self) -> ProcessingInstruction | None:
        end = self._text.find("?>", self._position + 2)
        if end == -1:
            raise self._error("unterminated processing instruction")
        body = self._text[self._position + 2:end]
        self._position = end + 2
        parts = body.split(None, 1)
        target = parts[0] if parts else ""
        content = parts[1] if len(parts) > 1 else ""
        if target.lower() == "xml":
            return None  # XML declaration, not reported as an event
        return ProcessingInstruction(target, content)

    def _skip_doctype(self) -> None:
        # naive skip that tolerates an internal subset in brackets
        depth = 0
        position = self._position + 2
        while position < self._length:
            char = self._text[position]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self._position = position + 1
                return
            position += 1
        raise self._error("unterminated DOCTYPE declaration")

    def _parse_end_tag(self) -> EndElement:
        end = self._text.find(">", self._position + 2)
        if end == -1:
            raise self._error("unterminated end tag")
        name = self._text[self._position + 2:end].strip()
        self._position = end + 1
        if not self._open or self._open[-1] != name:
            expected = self._open[-1] if self._open else "(none)"
            raise self._error(f"mismatched end tag </{name}>, expected </{expected}>")
        self._open.pop()
        return EndElement(name)

    def _parse_start_tag(self) -> Iterator[Event]:
        end = self._text.find(">", self._position)
        if end == -1:
            raise self._error("unterminated start tag")
        raw = self._text[self._position + 1:end]
        self._position = end + 1
        self_closing = raw.endswith("/")
        if self_closing:
            raw = raw[:-1]
        name, attributes = self._parse_tag_body(raw)
        yield StartElement(name, attributes)
        if self_closing:
            yield EndElement(name)
        else:
            self._open.append(name)

    def _parse_tag_body(self, raw: str) -> tuple[str, list[tuple[str, str]]]:
        raw = raw.strip()
        if not raw:
            raise self._error("empty start tag")
        # element name runs until the first whitespace character
        name_end = len(raw)
        for index, char in enumerate(raw):
            if char.isspace():
                name_end = index
                break
        name = raw[:name_end]
        attributes: list[tuple[str, str]] = []
        position = name_end
        length = len(raw)
        while position < length:
            while position < length and raw[position].isspace():
                position += 1
            if position >= length:
                break
            equals = raw.find("=", position)
            if equals == -1:
                raise self._error(f"attribute without value in <{name}>")
            attr_name = raw[position:equals].strip()
            position = equals + 1
            while position < length and raw[position].isspace():
                position += 1
            if position >= length or raw[position] not in "\"'":
                raise self._error(f"unquoted attribute value in <{name}>")
            quote = raw[position]
            closing = raw.find(quote, position + 1)
            if closing == -1:
                raise self._error(f"unterminated attribute value in <{name}>")
            value = unescape(raw[position + 1:closing])
            attributes.append((attr_name, value))
            position = closing + 1
        return name, attributes


def parse_events(text: str) -> Iterator[Event]:
    """Convenience wrapper: iterate the events of an XML string."""
    return XMLPullParser(text).events()
