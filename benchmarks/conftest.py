"""Shared benchmark fixtures.

All benchmarks run on generated XMark documents at small scale factors —
absolute times are meaningless for a pure-Python engine, the *shapes*
(relative speedups, linear vs. quadratic growth, who wins) are what each
benchmark regenerates.  Scale factors can be raised via the environment
variable ``REPRO_BENCH_SCALE`` for longer runs.
"""

from __future__ import annotations

import os

import pytest

from repro import EngineOptions, MonetXQuery
from repro.xmark import generate_document


BASE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))
SEED = 42


def build_engine(scale: float, options: EngineOptions | None = None) -> MonetXQuery:
    engine = MonetXQuery(options=options)
    engine.load_document_text(generate_document(scale, SEED), name="auction.xml")
    return engine


@pytest.fixture(scope="session")
def xmark_scale() -> float:
    return BASE_SCALE


@pytest.fixture(scope="session")
def xmark_engine() -> MonetXQuery:
    """One shared engine over the base-scale XMark document."""
    return build_engine(BASE_SCALE)


@pytest.fixture(scope="session")
def xmark_document_text() -> str:
    return generate_document(BASE_SCALE, SEED)
