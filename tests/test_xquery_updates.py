"""XML updates through the engine-level XMLUpdater (Section 5.2)."""

import pytest

from repro import MonetXQuery, XMLUpdater
from repro.errors import UpdateError


@pytest.fixture
def update_engine():
    mxq = MonetXQuery()
    mxq.load_document_text(
        "<site><people>"
        '<person id="p0"><name>Alice</name></person>'
        '<person id="p1"><name>Bob</name></person>'
        "</people><items><item id='i0'><name>watch</name></item></items></site>",
        name="doc.xml")
    return mxq


class TestXMLUpdater:
    def test_select_targets_with_xquery(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        targets = updater.select('/site/people/person[@id = "p1"]')
        assert len(targets) == 1

    def test_select_rejects_atomic_results(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        with pytest.raises(UpdateError):
            updater.select("count(//person)")

    def test_insert_last_and_commit(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select("/site/people")[0]
        updater.insert_last(target, '<person id="p2"><name>Carol</name></person>')
        updater.commit()
        assert update_engine.query("count(//person)").items == [3]
        assert update_engine.query(
            '/site/people/person[@id = "p2"]/name/text()').strings() == ["Carol"]

    def test_insert_first_position(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select("/site/people")[0]
        updater.insert_first(target, '<person id="new"/>')
        updater.commit()
        first = update_engine.query("/site/people/person[1]/@id").atomized()
        assert first == ["new"]

    def test_delete_subtree(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select('/site/people/person[@id = "p0"]')[0]
        updater.delete(target)
        updater.commit()
        assert update_engine.query("count(//person)").items == [1]
        assert update_engine.query("//person/@id").atomized() == ["p1"]

    def test_replace_text_value(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select("/site/items/item/name/text()")[0]
        updater.replace_value(target, "clock")
        updater.commit()
        assert update_engine.query("//item/name/text()").strings() == ["clock"]

    def test_set_attribute(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select("/site/items/item")[0]
        updater.set_attribute(target, "featured", "yes")
        updater.commit()
        assert update_engine.query("//item/@featured").atomized() == ["yes"]

    def test_queries_before_commit_see_old_state(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        target = updater.select("/site/people")[0]
        updater.insert_last(target, "<person id='px'/>")
        assert update_engine.query("count(//person)").items == [2]
        updater.commit()
        assert update_engine.query("count(//person)").items == [3]

    def test_multiple_updates_accumulate(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml")
        people = updater.select("/site/people")[0]
        updater.insert_last(people, "<person id='a'/>")
        updater.insert_last(people, "<person id='b'/>")
        updater.commit()
        assert update_engine.query("count(//person)").items == [4]

    def test_insert_cost_is_page_local(self, update_engine):
        updater = XMLUpdater(update_engine, "doc.xml", page_size=16)
        target = updater.select("/site/items")[0]
        stats = updater.insert_last(target, "<item id='i1'/>")
        assert stats.pages_touched <= 2
