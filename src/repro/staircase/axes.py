"""XPath axes and node tests over the ``pre|size|level`` encoding.

The pre/size/level triple makes the four major axes simple arithmetic
predicates on the pre/post plane (Section 2):

* ``descendant(c)``:  ``pre(c) < pre(v) <= pre(c) + size(c)``
* ``ancestor(c)``:    ``pre(v) < pre(c)`` and ``pre(v) + size(v) >= pre(c)``
* ``following(c)``:   ``pre(v) > pre(c) + size(c)``
* ``preceding(c)``:   ``pre(v) + size(v) < pre(c)``

plus the structural axes ``child``, ``parent``, ``*-sibling``, ``attribute``
and ``self`` that additionally involve the ``level`` column or the attribute
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..xml.document import DocumentContainer, NodeKind


class Axis(Enum):
    """The XPath axes supported by the staircase-join family."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    ATTRIBUTE = "attribute"
    SELF = "self"

    @property
    def is_forward(self) -> bool:
        return self in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                        Axis.FOLLOWING, Axis.FOLLOWING_SIBLING, Axis.ATTRIBUTE,
                        Axis.SELF)

    @property
    def is_reverse(self) -> bool:
        return not self.is_forward


@dataclass(frozen=True)
class NodeTest:
    """A node test: kind test plus optional name test.

    ``kind`` is one of ``"element"``, ``"text"``, ``"comment"``,
    ``"processing-instruction"``, ``"node"`` (any kind), ``"attribute"``.
    ``name`` is a local name or ``None`` / ``"*"`` for "any name".
    """

    kind: str = "element"
    name: str | None = None

    def matches_kind(self, node_kind: int) -> bool:
        if self.kind == "node":
            return True
        if self.kind == "element":
            return node_kind == NodeKind.ELEMENT
        if self.kind == "text":
            return node_kind == NodeKind.TEXT
        if self.kind == "comment":
            return node_kind == NodeKind.COMMENT
        if self.kind == "processing-instruction":
            return node_kind == NodeKind.PROCESSING_INSTRUCTION
        if self.kind == "attribute":
            return node_kind == NodeKind.ATTRIBUTE
        return False

    @property
    def has_name(self) -> bool:
        return self.name is not None and self.name != "*"

    def matches_tree_node(self, container: DocumentContainer, pre: int) -> bool:
        """Evaluate the node test against a tree node of the container."""
        if not self.matches_kind(container.kind[pre]):
            return False
        if not self.has_name:
            return True
        return container.element_name(pre) == self.name


ANY_NODE = NodeTest(kind="node")
ANY_ELEMENT = NodeTest(kind="element")


def axis_region(axis: Axis, container: DocumentContainer,
                pre: int) -> tuple[int, int] | None:
    """The contiguous pre range (inclusive) covered by a major axis.

    Only the axes whose result is a contiguous pre region return a range
    (descendant, descendant-or-self, following, preceding*); others return
    ``None``.  (*preceding is contiguous in pre but needs the extra
    "not an ancestor" filter.)
    """
    size = container.size[pre]
    if axis is Axis.DESCENDANT:
        return (pre + 1, pre + size) if size > 0 else None
    if axis is Axis.DESCENDANT_OR_SELF:
        return (pre, pre + size)
    if axis is Axis.FOLLOWING:
        start = pre + size + 1
        last = container.node_count - 1
        return (start, last) if start <= last else None
    if axis is Axis.PRECEDING:
        return (0, pre - 1) if pre > 0 else None
    return None
