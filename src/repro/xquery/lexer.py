"""Tokenizer for the supported XQuery subset.

XQuery has no reserved words — keywords are recognised contextually by the
parser — so the lexer only distinguishes names, numbers, string literals,
variables (``$name``) and punctuation.  Direct element constructors switch
the parser into raw-character mode; to support that the lexer exposes its
cursor so the parser can continue scanning character-wise from the position
right after a token (see :class:`repro.xquery.parser.XQueryParser`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import XQuerySyntaxError


@dataclass
class Token:
    kind: str           # "name" | "number" | "string" | "variable" | "symbol" | "eof"
    value: str | int | float
    start: int          # offset of the first character
    end: int            # offset one past the last character

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.value in symbols

    def is_name(self, *names: str) -> bool:
        return self.kind == "name" and self.value in names


#: multi-character punctuation, longest first
_MULTI_SYMBOLS = ["//", "::", ":=", "<=", ">=", "!=", "..", "||"]
_SINGLE_SYMBOLS = set("()[]{},;/=<>+-*@.|?")

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")


def is_name_start(char: str) -> bool:
    return char in _NAME_START


class Lexer:
    """A cursor-based tokenizer; the parser may also read raw characters."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0

    # ------------------------------------------------------------------ #
    # character-level helpers (also used by constructor parsing)
    # ------------------------------------------------------------------ #
    def at_end(self) -> bool:
        return self.position >= len(self.source)

    def peek_char(self, offset: int = 0) -> str:
        index = self.position + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def error(self, message: str, position: int | None = None) -> XQuerySyntaxError:
        position = self.position if position is None else position
        line = self.source.count("\n", 0, position) + 1
        column = position - self.source.rfind("\n", 0, position)
        return XQuerySyntaxError(message, line=line, column=column)

    def skip_whitespace_and_comments(self) -> None:
        source = self.source
        while self.position < len(source):
            char = source[self.position]
            if char.isspace():
                self.position += 1
            elif source.startswith("(:", self.position):
                depth = 1
                self.position += 2
                while self.position < len(source) and depth:
                    if source.startswith("(:", self.position):
                        depth += 1
                        self.position += 2
                    elif source.startswith(":)", self.position):
                        depth -= 1
                        self.position += 2
                    else:
                        self.position += 1
                if depth:
                    raise self.error("unterminated comment")
            else:
                return

    # ------------------------------------------------------------------ #
    # tokenization
    # ------------------------------------------------------------------ #
    def next_token(self) -> Token:
        self.skip_whitespace_and_comments()
        start = self.position
        source = self.source
        if self.at_end():
            return Token("eof", "", start, start)
        char = source[start]

        # string literal
        if char in "\"'":
            return self._read_string(char)

        # number literal
        if char.isdigit() or (char == "." and self.peek_char(1).isdigit()):
            return self._read_number()

        # variable reference
        if char == "$":
            self.position += 1
            name = self._read_name_chars()
            if not name:
                raise self.error("expected a variable name after '$'")
            return Token("variable", name, start, self.position)

        # name (keywords are names too)
        if char in _NAME_START:
            name = self._read_name_chars()
            return Token("name", name, start, self.position)

        # multi-character symbols
        for symbol in _MULTI_SYMBOLS:
            if source.startswith(symbol, start):
                self.position = start + len(symbol)
                return Token("symbol", symbol, start, self.position)

        if char in _SINGLE_SYMBOLS:
            self.position = start + 1
            return Token("symbol", char, start, self.position)

        raise self.error(f"unexpected character {char!r}")

    def _read_name_chars(self) -> str:
        start = self.position
        source = self.source
        while self.position < len(source) and source[self.position] in _NAME_CHARS:
            # a trailing dot belongs to the following token (e.g. "1 to 2")
            self.position += 1
        name = source[start:self.position]
        # names like "foo:bar" (prefixed QNames) — keep the prefix as part of
        # the name so fn:count etc. resolve naturally
        if self.peek_char() == ":" and self.peek_char(1) in _NAME_START \
                and not self.source.startswith("::", self.position):
            self.position += 1
            rest = self._read_name_chars()
            name = f"{name}:{rest}"
        return name

    def _read_string(self, quote: str) -> Token:
        start = self.position
        self.position += 1
        pieces: list[str] = []
        source = self.source
        while True:
            if self.at_end():
                raise self.error("unterminated string literal", start)
            char = source[self.position]
            if char == quote:
                if self.peek_char(1) == quote:        # doubled quote escape
                    pieces.append(quote)
                    self.position += 2
                    continue
                self.position += 1
                break
            pieces.append(char)
            self.position += 1
        return Token("string", "".join(pieces), start, self.position)

    def _read_number(self) -> Token:
        start = self.position
        source = self.source
        seen_dot = False
        while self.position < len(source):
            char = source[self.position]
            if char.isdigit():
                self.position += 1
            elif char == "." and not seen_dot and self.peek_char(1).isdigit():
                seen_dot = True
                self.position += 1
            else:
                break
        text = source[start:self.position]
        value: int | float = float(text) if seen_dot else int(text)
        return Token("number", value, start, self.position)
