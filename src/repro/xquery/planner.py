"""AST → logical plan translation (the front half of Pathfinder).

The planner turns a parsed XQuery module into a DAG of logical operators
(:mod:`repro.relational.plan`), *without executing anything*.  The
translation is syntax-directed — every expression kind maps to one plan
operator whose parameters capture the expression's scalar attributes and
whose children are the translated subexpressions — but the result is
relational in shape: a path expression becomes a chain of ``step``
operators threading the context relation, a FLWOR becomes a ``flwor``
operator over clause/where/order/return inputs, and so on.

Because every plan of a module (body, global variable initialisers and
user-defined function bodies) is built through one shared
:class:`~repro.relational.plan.PlanBuilder`, structurally identical
subexpressions — repeated path prefixes, duplicated aggregates — are
hash-consed into *shared* DAG nodes.  The rewrite optimizer
(:mod:`repro.relational.rewrites`) then annotates the DAG and the executor
(:mod:`repro.xquery.compiler`) walks it into the eager physical operators.

Plan operator reference (children in parentheses):

========== ============================================================
kind        meaning
========== ============================================================
const       literal item; param ``value``
empty       the empty sequence ``()``
var         variable reference; param ``name``
context     the context item ``.``
root        root of the context document (start of an absolute path)
seq         sequence concatenation (items...)
range       integer range (start, end)
arith       arithmetic; param ``op`` (left, right)
unary       unary +/-; param ``negate`` (operand)
cmp-value   value comparison; param ``op`` (left, right)
cmp-general existential general comparison; param ``op`` (left, right)
and / or    boolean connectives (operands...)
if          conditional via loop splitting (condition, then, else)
flwor       FLWOR block (clauses..., where?, orderspecs..., return)
for         for clause; params ``var``, ``posvar`` (sequence)
let         let clause; param ``var`` (value)
orderspec   one order-by key; param ``descending`` (key)
quantified  some/every; params ``quantifier``, ``variables`` (seqs..., satisfies)
step        one XPath location step; params ``axis``, ``test_kind``,
            ``test_name`` (input, predicates...)
filter      predicate application outside a path (base, predicates...)
call        function call; param ``name`` (arguments...)
elem        element constructor; params ``name``, ``attr_names``,
            ``content_spec`` (attribute templates..., content exprs...)
avt         attribute value template; param ``spec`` (exprs...)
text        text node constructor (content)
========== ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import XQueryUnsupportedError
from ..relational.plan import PlanBuilder, PlanNode
from . import ast


@dataclass
class PlannedFunction:
    """A user-defined function with its body translated to a plan."""

    name: str
    parameters: tuple[str, ...]
    body: PlanNode


@dataclass
class ModulePlan:
    """The logical plans of one parsed module (pre-optimization)."""

    body: PlanNode
    globals: list[tuple[str, PlanNode]]
    functions: dict[str, PlannedFunction]
    builder: PlanBuilder = field(repr=False, default_factory=PlanBuilder)

    @property
    def global_names(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.globals)

    def roots(self) -> list[PlanNode]:
        """All plan roots of the module (body first)."""
        roots = [self.body]
        roots.extend(plan for _, plan in self.globals)
        roots.extend(function.body for function in self.functions.values())
        return roots


def plan_module(module: ast.Module) -> ModulePlan:
    """Translate a parsed module into its logical plans."""
    builder = PlanBuilder()
    planner = _Planner(builder)
    functions = {
        name: PlannedFunction(declaration.name,
                              tuple(declaration.parameters),
                              planner.plan(declaration.body))
        for name, declaration in module.functions.items()
    }
    globals_ = [(declaration.name, planner.plan(declaration.value))
                for declaration in module.variables]
    body = planner.plan(module.body)
    return ModulePlan(body=body, globals=globals_, functions=functions,
                      builder=builder)


def plan_expression(expr: ast.Expr, builder: PlanBuilder | None = None) -> PlanNode:
    """Translate a single expression (test/tooling helper)."""
    return _Planner(builder if builder is not None else PlanBuilder()).plan(expr)


class _Planner:
    """The syntax-directed translator (one method per AST node type)."""

    def __init__(self, builder: PlanBuilder):
        self.builder = builder

    def plan(self, node: ast.Expr) -> PlanNode:
        method = getattr(self, f"_plan_{type(node).__name__}", None)
        if method is None:
            raise XQueryUnsupportedError(
                f"unsupported expression {type(node).__name__}")
        return method(node)

    # -- literals, variables, sequences ----------------------------------- #
    def _plan_Literal(self, node: ast.Literal) -> PlanNode:
        return self.builder.node("const", value=node.value)

    def _plan_EmptySequence(self, node: ast.EmptySequence) -> PlanNode:
        return self.builder.node("empty")

    def _plan_VarRef(self, node: ast.VarRef) -> PlanNode:
        return self.builder.node("var", name=node.name)

    def _plan_ContextItem(self, node: ast.ContextItem) -> PlanNode:
        return self.builder.node("context")

    def _plan_SequenceExpr(self, node: ast.SequenceExpr) -> PlanNode:
        return self.builder.node(
            "seq", tuple(self.plan(item) for item in node.items))

    def _plan_RangeExpr(self, node: ast.RangeExpr) -> PlanNode:
        return self.builder.node(
            "range", (self.plan(node.start), self.plan(node.end)))

    # -- arithmetic, comparisons, logic ------------------------------------ #
    def _plan_ArithmeticExpr(self, node: ast.ArithmeticExpr) -> PlanNode:
        return self.builder.node(
            "arith", (self.plan(node.left), self.plan(node.right)), op=node.op)

    def _plan_UnaryExpr(self, node: ast.UnaryExpr) -> PlanNode:
        return self.builder.node("unary", (self.plan(node.operand),),
                                 negate=node.negate)

    def _plan_ValueComparison(self, node: ast.ValueComparison) -> PlanNode:
        return self.builder.node(
            "cmp-value", (self.plan(node.left), self.plan(node.right)),
            op=node.op)

    def _plan_GeneralComparison(self, node: ast.GeneralComparison) -> PlanNode:
        return self.builder.node(
            "cmp-general", (self.plan(node.left), self.plan(node.right)),
            op=node.op)

    def _plan_AndExpr(self, node: ast.AndExpr) -> PlanNode:
        return self.builder.node(
            "and", tuple(self.plan(operand) for operand in node.operands))

    def _plan_OrExpr(self, node: ast.OrExpr) -> PlanNode:
        return self.builder.node(
            "or", tuple(self.plan(operand) for operand in node.operands))

    def _plan_IfExpr(self, node: ast.IfExpr) -> PlanNode:
        return self.builder.node("if", (self.plan(node.condition),
                                        self.plan(node.then_branch),
                                        self.plan(node.else_branch)))

    # -- FLWOR -------------------------------------------------------------- #
    def _plan_FLWORExpr(self, node: ast.FLWORExpr) -> PlanNode:
        children: list[PlanNode] = []
        for clause in node.clauses:
            if isinstance(clause, ast.ForClause):
                children.append(self.builder.node(
                    "for", (self.plan(clause.sequence),),
                    var=clause.variable, posvar=clause.position_variable))
            elif isinstance(clause, ast.LetClause):
                children.append(self.builder.node(
                    "let", (self.plan(clause.value),), var=clause.variable))
            else:  # pragma: no cover - parser produces only for/let
                raise XQueryUnsupportedError("unsupported FLWOR clause")
        nclauses = len(children)
        if node.where is not None:
            children.append(self.plan(node.where))
        for spec in node.order_by:
            children.append(self.builder.node(
                "orderspec", (self.plan(spec.key),),
                descending=spec.descending))
        children.append(self.plan(node.return_expr))
        return self.builder.node("flwor", tuple(children),
                                 nclauses=nclauses,
                                 has_where=node.where is not None,
                                 norder=len(node.order_by))

    def _plan_QuantifiedExpr(self, node: ast.QuantifiedExpr) -> PlanNode:
        children = tuple(self.plan(sequence)
                         for _, sequence in node.bindings)
        children += (self.plan(node.satisfies),)
        return self.builder.node(
            "quantified", children, quantifier=node.quantifier,
            variables=tuple(variable for variable, _ in node.bindings))

    # -- paths --------------------------------------------------------------- #
    def _plan_PathExpr(self, node: ast.PathExpr) -> PlanNode:
        if node.absolute:
            current = self.builder.node("root")
        elif node.start is not None:
            current = self.plan(node.start)
        else:
            current = self.builder.node("context")
        for step in node.steps:
            if not isinstance(step, ast.AxisStep):
                raise XQueryUnsupportedError(
                    "only axis steps are supported inside a path")
            predicates = tuple(self.plan(predicate)
                               for predicate in step.predicates)
            current = self.builder.node(
                "step", (current,) + predicates,
                axis=step.axis, test_kind=step.node_test.kind,
                test_name=step.node_test.name)
        return current

    def _plan_FilterExpr(self, node: ast.FilterExpr) -> PlanNode:
        children = (self.plan(node.base),) + tuple(
            self.plan(predicate) for predicate in node.predicates)
        return self.builder.node("filter", children)

    # -- functions ------------------------------------------------------------ #
    def _plan_FunctionCall(self, node: ast.FunctionCall) -> PlanNode:
        return self.builder.node(
            "call", tuple(self.plan(argument) for argument in node.arguments),
            name=node.name)

    # -- constructors ---------------------------------------------------------- #
    def _plan_ElementConstructor(self, node: ast.ElementConstructor) -> PlanNode:
        children: list[PlanNode] = []
        attr_names = []
        for attribute_name, template in node.attributes:
            attr_names.append(attribute_name)
            children.append(self._plan_AttributeValue(template))
        content_spec: list[tuple[str, str] | str] = []
        for part in node.content:
            if isinstance(part, str):
                content_spec.append(("t", part))
            else:
                content_spec.append("e")
                children.append(self.plan(part))
        return self.builder.node("elem", tuple(children), name=node.name,
                                 attr_names=tuple(attr_names),
                                 content_spec=tuple(content_spec))

    def _plan_AttributeValue(self, node: ast.AttributeValue) -> PlanNode:
        spec: list[tuple[str, str] | str] = []
        children: list[PlanNode] = []
        for part in node.parts:
            if isinstance(part, str):
                spec.append(("t", part))
            else:
                spec.append("e")
                children.append(self.plan(part))
        return self.builder.node("avt", tuple(children), spec=tuple(spec))

    def _plan_TextConstructor(self, node: ast.TextConstructor) -> PlanNode:
        return self.builder.node("text", (self.plan(node.content),))
