"""Qualified names and the per-container name pool.

Element and attribute names are dictionary-encoded: every distinct
``(namespace, local)`` pair is stored once in a :class:`NamePool` and nodes
reference it by integer id.  This mirrors the "qualified names" property
container of Figure 9 and gives the cheap integer name tests the staircase
join's nametest pushdown relies on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QName:
    """A qualified name: namespace URI (possibly empty) and local name."""

    local: str
    namespace: str = ""

    def __str__(self) -> str:
        if self.namespace:
            return f"{{{self.namespace}}}{self.local}"
        return self.local


class NamePool:
    """Interning pool assigning dense integer ids to qualified names."""

    __slots__ = ("_names", "_ids")

    def __init__(self) -> None:
        self._names: list[QName] = []
        self._ids: dict[QName, int] = {}

    def __len__(self) -> int:
        return len(self._names)

    def intern(self, local: str, namespace: str = "") -> int:
        """Return the id of the name, adding it to the pool if necessary."""
        qname = QName(local, namespace)
        name_id = self._ids.get(qname)
        if name_id is None:
            name_id = len(self._names)
            self._names.append(qname)
            self._ids[qname] = name_id
        return name_id

    def lookup(self, local: str, namespace: str = "") -> int | None:
        """Return the id of the name or ``None`` when it was never interned."""
        return self._ids.get(QName(local, namespace))

    def name(self, name_id: int) -> QName:
        return self._names[name_id]

    def local(self, name_id: int) -> str:
        return self._names[name_id].local

    def all_names(self) -> list[QName]:
        return list(self._names)
