"""Figure 14 — benefits of order-property-driven sort reduction.

The order-aware configuration skips sorts whose required ordering is already
guaranteed by the ``ord``/``grpord`` properties and uses the streaming
DENSE_RANK; the non-order-preserving configuration always sorts.  Expected
shape: a consistent speedup (the paper reports about 2× overall on XMark).
"""

import pytest

from repro.relational import capture
from repro.xmark import XMARK_QUERIES


QUERIES = (1, 2, 3, 5, 8, 10, 13, 17, 19, 20)


@pytest.mark.parametrize("mode", ["order-preserving", "non-order-preserving"])
@pytest.mark.parametrize("query", QUERIES)
def test_fig14_sort_reduction(benchmark, xmark_engine, query, mode):
    options = xmark_engine.options.replace(
        order_optimization=(mode == "order-preserving"))
    text = XMARK_QUERIES[query]

    def run():
        xmark_engine.reset_transient()
        return len(xmark_engine.query(text, options=options))

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)

    with capture() as trace:
        xmark_engine.reset_transient()
        xmark_engine.query(text, options=options)
    benchmark.extra_info["figure"] = "fig14"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["full_sorts"] = trace.count("sort.full")
    benchmark.extra_info["skipped_sorts"] = trace.count("sort.skipped")
    benchmark.extra_info["result_size"] = result
