"""Loop-lifted staircase join — Section 3 of the paper.

The loop-lifted staircase join evaluates an XPath location step for *all*
context-node sequences of *all* iterations of the enclosing ``for``-loops in
a single sequential pass over the document encoding.  Its input is the
relational encoding of the context: ``(pre, iter)`` pairs sorted on
``[pre, iter]`` (document order, iterations clustered per context node); its
output is a list of ``(iter, pre)`` result pairs such that

* within one iteration, result nodes are duplicate free and in document
  order, and
* result nodes that belong to multiple iterations occur in iteration order
  (the inner ``FOR iter FROM fstIter TO lstIter`` loop of Figure 6).

The module provides the stack-based ``child`` algorithm of Figure 6, a
matching single-scan ``descendant`` algorithm, and loop-lifted versions of
the remaining axes.  ``loop_lifted_step`` dispatches on the axis and applies
an optional node test as a post-filter (see :mod:`repro.staircase.pushdown`
for the pushed-down variant).

The *iterative* execution mode used as the Figure 12 baseline simply calls
the plain staircase join once per iteration — see
:func:`iterative_step` below.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..errors import StaircaseJoinError
from ..xml.document import DocumentContainer, NodeKind
from .axes import Axis, NodeTest
from .iterative import StaircaseStats, attribute_step, staircase_join


ContextPairs = list[tuple[int, int]]      # (pre, iter), sorted on [pre, iter]
ResultPairs = list[tuple[int, int]]       # (iter, pre)


def normalize_context(pairs: ContextPairs) -> ContextPairs:
    """Sort the context on ``[pre, iter]`` and drop duplicate pairs."""
    return sorted(set(pairs))


def pairs_to_arrays(pairs: ResultPairs) -> "tuple[array, array]":
    """Convert ``(iter, pre)`` tuple pairs into paired ``array('q')`` columns."""
    iters = array("q", (pair[0] for pair in pairs))
    pres = array("q", (pair[1] for pair in pairs))
    return iters, pres


# --------------------------------------------------------------------------- #
# child axis — the detailed algorithm of Figure 6
# --------------------------------------------------------------------------- #
def ll_child_arrays(container: DocumentContainer, context: ContextPairs, *,
                    stats: StaircaseStats | None = None,
                    normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted staircase join for the ``child`` axis (Figure 6),
    producing the result as paired ``(iter, pre)`` int arrays.

    A stack of *active* context nodes is maintained; each entry records the
    end of its partition (``eos``), the next child still to be produced
    (``nxt_child``) and the iterations in which the context node is active.
    Children are produced by skipping over their subtrees; when the scan
    reaches the next context node the current context is suspended (pushed
    deeper) and resumed after the inner context's partition is finished.

    ``normalized=True`` promises the context is already sorted on
    ``[pre, iter]`` and duplicate free (the step assembly and the fused
    chain pipeline normalize once per step) — the redundant sort/dedup
    pass is skipped.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    out_iters = array("q")
    out_pres = array("q")
    size = container.size

    # group consecutive context entries that share the same pre value
    groups: list[tuple[int, list[int]]] = []       # (pre, [iters])
    for pre, iteration in context:
        if groups and groups[-1][0] == pre:
            groups[-1][1].append(iteration)
        else:
            groups.append((pre, [iteration]))

    # stack entries: [eos, nxt_child, iters]
    active: list[list] = []

    def inner_loop_child(limit: int) -> None:
        """Produce children of the top context up to pre rank ``limit``."""
        entry = active[-1]
        next_child = entry[1]
        iters = entry[2]
        while next_child <= limit:
            stats.touch()
            out_iters.extend(iters)
            out_pres.extend([next_child] * len(iters))
            next_child += size[next_child] + 1
        entry[1] = next_child

    index = 0
    while index < len(groups):
        pre, iters = groups[index]
        stats.touch()
        if not active:
            active.append([pre + size[pre], pre + 1, iters])       # push_ctx
            index += 1
        elif active[-1][0] >= pre:
            # next context node is a descendant of the current context node:
            # produce the current context's children up to it, then push
            inner_loop_child(pre)
            active.append([pre + size[pre], pre + 1, iters])
            index += 1
        else:
            # next context is outside the current partition: finish it
            inner_loop_child(active[-1][0])
            active.pop()
    while active:
        inner_loop_child(active[-1][0])
        active.pop()

    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_child(container: DocumentContainer, context: ContextPairs, *,
             stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`ll_child_arrays`."""
    iters, pres = ll_child_arrays(container, context, stats=stats)
    return list(zip(iters, pres))


# --------------------------------------------------------------------------- #
# descendant / descendant-or-self — single scan with an active-iteration stack
# --------------------------------------------------------------------------- #
def ll_descendant_arrays(container: DocumentContainer, context: ContextPairs, *,
                         or_self: bool = False,
                         stats: StaircaseStats | None = None,
                         normalized: bool = False) -> "tuple[array, array]":
    """Loop-lifted descendant(-or-self) step as paired ``(iter, pre)`` arrays.

    The document region spanned by the context is scanned once; a stack of
    ``(eos, iteration)`` entries tracks which iterations are currently
    *active* (their context subtree covers the scan position).  Pruning
    happens per iteration: a context node whose iteration is already active
    is ignored (it would only generate duplicates within that iteration).

    The common single-active-context run (one outermost context per document
    region — every absolute path) is emitted as one dense ``pre`` window
    appended with two C-level ``extend`` calls instead of a per-node loop.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    out_iters = array("q")
    out_pres = array("q")
    size = container.size

    active: list[tuple[int, int]] = []      # (eos, iteration); one entry per iter
    index = 0
    total = len(context)
    position = context[0][0] if context else 0

    while index < total or active:
        if not active:
            # skipping: jump straight to the next context node
            position = context[index][0]
        # retire partitions that ended before the current position
        if active:
            active = [(end, iteration) for end, iteration in active
                      if end >= position]
        if len(active) == 1:
            # fast path: a single active context and no upcoming context
            # node before its end means the rest of its partition is one
            # contiguous descendant window — emit it wholesale
            end, iteration = active[0]
            next_context = context[index][0] if index < total else end + 1
            window_end = min(end, next_context - 1)
            if window_end >= position:
                span = range(position, window_end + 1)
                stats.touch(len(span))
                out_pres.extend(span)
                out_iters.extend([iteration] * len(span))
                position = window_end + 1
                if position > end:
                    active = []
                if index >= total and not active:
                    break
                continue
        # the current node is a descendant of every still-active context
        if active:
            stats.touch()
            for _, iteration in active:
                out_iters.append(iteration)
                out_pres.append(position)
        # activate context nodes located at the current position
        while index < total and context[index][0] == position:
            pre, iteration = context[index]
            index += 1
            stats.touch()
            if any(active_iter == iteration for _, active_iter in active):
                # pruning: this iteration is already covered by an outer
                # context node — the node above was (or will be) emitted for
                # it anyway
                stats.contexts_pruned += 1
                continue
            active.append((pre + size[pre], iteration))
            if or_self:
                out_iters.append(iteration)
                out_pres.append(pre)
        position += 1

    stats.results += len(out_pres)
    return out_iters, out_pres


def ll_descendant(container: DocumentContainer, context: ContextPairs, *,
                  or_self: bool = False,
                  stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`ll_descendant_arrays`."""
    iters, pres = ll_descendant_arrays(container, context, or_self=or_self,
                                       stats=stats)
    return list(zip(iters, pres))


# --------------------------------------------------------------------------- #
# remaining axes
# --------------------------------------------------------------------------- #
def ll_self(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    return [(iteration, pre) for pre, iteration in normalize_context(context)]


def ll_parent(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    result: ResultPairs = []
    seen: set[tuple[int, int]] = set()
    for pre, iteration in normalize_context(context):
        parent = container.parent_pre(pre)
        if parent is None:
            continue
        key = (iteration, parent)
        if key not in seen:
            seen.add(key)
            result.append(key)
    return result


def ll_ancestor(container: DocumentContainer, context: ContextPairs, *,
                or_self: bool = False) -> ResultPairs:
    seen: set[tuple[int, int]] = set()
    for pre, iteration in normalize_context(context):
        if or_self:
            seen.add((iteration, pre))
        current = container.parent_pre(pre)
        while current is not None:
            key = (iteration, current)
            if key in seen:
                break                   # pruning: path already emitted
            seen.add(key)
            current = container.parent_pre(current)
    return sorted(seen, key=lambda pair: (pair[1], pair[0]))


def ll_following(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    # per iteration the union of following regions starts after the earliest
    # context subtree end
    first_end: dict[int, int] = {}
    for pre, iteration in context:
        end = pre + container.size[pre]
        if iteration not in first_end or end < first_end[iteration]:
            first_end[iteration] = end
    result: ResultPairs = []
    for node in range(container.node_count):
        for iteration, end in first_end.items():
            if node > end:
                result.append((iteration, node))
    return result


def ll_preceding(container: DocumentContainer, context: ContextPairs) -> ResultPairs:
    last: dict[int, int] = {}
    for pre, iteration in context:
        if iteration not in last or pre > last[iteration]:
            last[iteration] = pre
    result: ResultPairs = []
    for node in range(container.node_count):
        node_end = node + container.size[node]
        for iteration, pre in last.items():
            if node < pre and node_end < pre:
                result.append((iteration, node))
    return result


def ll_siblings(container: DocumentContainer, context: ContextPairs, *,
                following: bool) -> ResultPairs:
    seen: set[tuple[int, int]] = set()
    for pre, iteration in normalize_context(context):
        parent = container.parent_pre(pre)
        if parent is None:
            continue
        if following:
            sibling = pre + container.size[pre] + 1
            end = parent + container.size[parent]
            while sibling <= end:
                seen.add((iteration, sibling))
                sibling += container.size[sibling] + 1
        else:
            sibling = parent + 1
            while sibling < pre:
                seen.add((iteration, sibling))
                sibling += container.size[sibling] + 1
    return sorted(seen, key=lambda pair: (pair[1], pair[0]))


def ll_attribute(container: DocumentContainer, context: ContextPairs,
                 name: str | None = None) -> list[tuple[int, int]]:
    """Loop-lifted attribute step: returns ``(iter, attribute_row)`` pairs."""
    wanted = None
    if name is not None and name != "*":
        wanted = container.names.lookup(name)
        if wanted is None:
            return []
    result: list[tuple[int, int]] = []
    for pre, iteration in normalize_context(context):
        for attr_index in container.attributes_of(pre):
            if wanted is None or container.attr_name[attr_index] == wanted:
                result.append((iteration, attr_index))
    return result


# --------------------------------------------------------------------------- #
# dispatching entry points
# --------------------------------------------------------------------------- #
def loop_lifted_step_arrays(container: DocumentContainer, context: ContextPairs,
                            axis: Axis, node_test: NodeTest | None = None, *,
                            stats: StaircaseStats | None = None,
                            normalized: bool = False) -> "tuple[array, array]":
    """Evaluate one location step for all iterations in a single pass,
    returning the result as paired ``(iter, pre)`` ``array('q')`` columns.

    The child and descendant axes run natively on arrays; the remaining
    axes convert their pair lists once.  This is the producer the typed
    executor consumes — step results feed the relational layer without
    ever round-tripping through lists of Python tuples.  ``normalized=True``
    promises the context is already sorted on ``[pre, iter]`` and duplicate
    free (it is forwarded to the scan-axis kernels; the remaining axes
    normalize internally either way).
    """
    if axis is Axis.ATTRIBUTE:
        raise StaircaseJoinError("attribute axis is handled by ll_attribute()")
    if axis is Axis.CHILD:
        iters, pres = ll_child_arrays(container, context, stats=stats,
                                      normalized=normalized)
    elif axis is Axis.DESCENDANT:
        iters, pres = ll_descendant_arrays(container, context, stats=stats,
                                           normalized=normalized)
    elif axis is Axis.DESCENDANT_OR_SELF:
        iters, pres = ll_descendant_arrays(container, context, or_self=True,
                                           stats=stats, normalized=normalized)
    else:
        iters, pres = pairs_to_arrays(
            _ll_other_axis(container, context, axis))

    if node_test is not None and node_test != NodeTest(kind="node"):
        matches = node_test.matches_tree_node
        kept_iters = array("q")
        kept_pres = array("q")
        for iteration, pre in zip(iters, pres):
            if matches(container, pre):
                kept_iters.append(iteration)
                kept_pres.append(pre)
        return kept_iters, kept_pres
    return iters, pres


def _ll_other_axis(container: DocumentContainer, context: ContextPairs,
                   axis: Axis) -> ResultPairs:
    """The pair-list algorithms for the remaining (non-scan) axes."""
    if axis is Axis.SELF:
        return ll_self(container, context)
    if axis is Axis.PARENT:
        return ll_parent(container, context)
    if axis is Axis.ANCESTOR:
        return ll_ancestor(container, context)
    if axis is Axis.ANCESTOR_OR_SELF:
        return ll_ancestor(container, context, or_self=True)
    if axis is Axis.FOLLOWING:
        return ll_following(container, context)
    if axis is Axis.PRECEDING:
        return ll_preceding(container, context)
    if axis is Axis.FOLLOWING_SIBLING:
        return ll_siblings(container, context, following=True)
    if axis is Axis.PRECEDING_SIBLING:
        return ll_siblings(container, context, following=False)
    raise StaircaseJoinError(f"unsupported axis {axis}")  # pragma: no cover


def loop_lifted_step(container: DocumentContainer, context: ContextPairs,
                     axis: Axis, node_test: NodeTest | None = None, *,
                     stats: StaircaseStats | None = None) -> ResultPairs:
    """Evaluate one location step for all iterations in a single pass
    (tuple-pair facade over :func:`loop_lifted_step_arrays`)."""
    iters, pres = loop_lifted_step_arrays(container, context, axis, node_test,
                                          stats=stats)
    return list(zip(iters, pres))


def iterative_step_arrays(container: DocumentContainer, context: ContextPairs,
                          axis: Axis, node_test: NodeTest | None = None, *,
                          stats: StaircaseStats | None = None
                          ) -> "tuple[array, array]":
    """Figure 12 baseline: one plain staircase join per iteration, with the
    result delivered as paired ``(iter, pre)`` int arrays.

    The context pairs are grouped by iteration and the plain (single context
    set) staircase join is invoked once per group — i.e. one sequential pass
    over the document per iteration, which is exactly the overhead the
    loop-lifted algorithm removes.
    """
    if axis is Axis.ATTRIBUTE:
        raise StaircaseJoinError("attribute axis is handled by ll_attribute()")
    by_iteration: dict[int, list[int]] = {}
    for pre, iteration in context:
        by_iteration.setdefault(iteration, []).append(pre)
    out_iters = array("q")
    out_pres = array("q")
    for iteration in sorted(by_iteration):
        nodes = staircase_join(container, by_iteration[iteration], axis,
                               node_test, stats=stats)
        out_iters.extend([iteration] * len(nodes))
        out_pres.extend(nodes)
    return out_iters, out_pres


def iterative_step(container: DocumentContainer, context: ContextPairs,
                   axis: Axis, node_test: NodeTest | None = None, *,
                   stats: StaircaseStats | None = None) -> ResultPairs:
    """Tuple-pair facade over :func:`iterative_step_arrays`."""
    iters, pres = iterative_step_arrays(container, context, axis, node_test,
                                        stats=stats)
    return list(zip(iters, pres))
