"""Locking primitives and the size-delta ledger.

:class:`ReadWriteLock` is the shared/exclusive lock the document store
uses to stay consistent under concurrent serving (many reader threads
running queries, occasional writers loading/dropping documents or
committing update batches).

The rest of the module is the size-delta ledger: commit-time maintenance
of ancestor ``size`` values.

Section 5.2 points out that a structural update changes the ``size`` of every
ancestor of the update point — including the document root — which would
force every updating transaction to hold a lock on the root.  The proposed
way out is to record, per transaction, a list of *(node, delta)* pairs
instead of absolute values: the lock on ``size`` can be released immediately
and the delta is applied at commit time, even if another committed
transaction has changed the value in the meantime.

:class:`SizeDeltaLedger` implements that bookkeeping plus a tiny transaction
log so tests can exercise the interleaving scenario of the paper (two
transactions updating the same ancestor's size without conflicting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..concurrency import ReadWriteLock

__all__ = ["DeltaRecord", "ReadWriteLock", "SizeDeltaLedger",
           "TransactionManager"]


@dataclass
class DeltaRecord:
    """One pending size change of one node (identified by its stable uid)."""

    node_uid: int
    delta: int


@dataclass
class SizeDeltaLedger:
    """Pending and committed size deltas, grouped per transaction."""

    pending: list[DeltaRecord] = field(default_factory=list)
    committed: list[list[DeltaRecord]] = field(default_factory=list)

    def record(self, node_uid: int, delta: int) -> None:
        """Record a size change of ``delta`` for the node ``node_uid``."""
        self.pending.append(DeltaRecord(node_uid, delta))

    def pending_delta(self, node_uid: int) -> int:
        """Net pending delta for one node (not yet committed)."""
        return sum(record.delta for record in self.pending
                   if record.node_uid == node_uid)

    def commit(self) -> list[DeltaRecord]:
        """Commit the current transaction's deltas; returns what was committed."""
        committed = list(self.pending)
        self.committed.append(committed)
        self.pending.clear()
        return committed

    def rollback(self) -> list[DeltaRecord]:
        """Discard the pending deltas (the caller undoes its table changes)."""
        discarded = list(self.pending)
        self.pending.clear()
        return discarded

    def total_committed_delta(self, node_uid: int) -> int:
        """Net committed delta of one node across all transactions."""
        return sum(record.delta
                   for transaction in self.committed
                   for record in transaction
                   if record.node_uid == node_uid)


class TransactionManager:
    """A minimal two-transaction interleaving harness used by the tests.

    It demonstrates that with delta-based size maintenance two transactions
    touching the same ancestor commit in either order and converge to the
    same final size — without ever holding a lock on the shared ancestor
    between their update and their commit.
    """

    def __init__(self, initial_sizes: dict[int, int]):
        self.sizes = dict(initial_sizes)
        self._open: dict[str, list[DeltaRecord]] = {}

    def begin(self, transaction_id: str) -> None:
        if transaction_id in self._open:
            raise ValueError(f"transaction {transaction_id!r} already open")
        self._open[transaction_id] = []

    def add_delta(self, transaction_id: str, node_uid: int, delta: int) -> None:
        self._open[transaction_id].append(DeltaRecord(node_uid, delta))

    def commit(self, transaction_id: str) -> None:
        for record in self._open.pop(transaction_id):
            self.sizes[record.node_uid] = self.sizes.get(record.node_uid, 0) + record.delta

    def rollback(self, transaction_id: str) -> None:
        self._open.pop(transaction_id)

    def size(self, node_uid: int) -> int:
        return self.sizes.get(node_uid, 0)
