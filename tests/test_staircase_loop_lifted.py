"""Loop-lifted staircase join: Figure 6/7 behaviour and equivalence with the
iterative execution (one plain staircase join per iteration)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.staircase import (Axis, NodeTest, StaircaseStats, iterative_step,
                             ll_attribute, ll_child, ll_child_pushdown,
                             ll_descendant, ll_descendant_pushdown,
                             loop_lifted_step, loop_lifted_step_pushdown)
from repro.xml import DocumentStore, shred_document


AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.PARENT,
        Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.FOLLOWING, Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING, Axis.SELF]


def make_doc(xml):
    return shred_document(xml, "doc.xml", DocumentStore())


@pytest.fixture(scope="module")
def doc():
    return make_doc("<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>")


def by_name(doc, name):
    return doc.candidates_by_name(name)[0]


class TestFigure6Child:
    def test_two_iterations_figure7_example(self, doc):
        """Iteration 1 context (a), iteration 2 context (a, f): children of a
        are produced for both iterations, children of f only for iteration 2."""
        a, f = by_name(doc, "a"), by_name(doc, "f")
        context = sorted([(a, 1), (a, 2), (f, 2)])
        result = ll_child(doc, context)
        expected = set()
        for child in doc.children_pre(a):
            expected.add((1, child))
            expected.add((2, child))
        for child in doc.children_pre(f):
            expected.add((2, child))
        assert set(result) == expected
        assert len(result) == len(set(result))

    def test_result_is_pre_major(self, doc):
        a, f = by_name(doc, "a"), by_name(doc, "f")
        result = ll_child(doc, sorted([(a, 1), (a, 2), (f, 2)]))
        pres = [pre for _, pre in result]
        assert pres == sorted(pres)

    def test_single_iteration_equals_plain_child(self, doc):
        from repro.staircase import staircase_join
        a = by_name(doc, "a")
        ll = [pre for _, pre in ll_child(doc, [(a, 1)])]
        assert ll == staircase_join(doc, [a], Axis.CHILD)

    def test_empty_context(self, doc):
        assert ll_child(doc, []) == []


class TestDescendantPruning:
    def test_nested_contexts_same_iteration_are_pruned(self, doc):
        """b and its descendant c in the same iteration must not duplicate."""
        b, c = by_name(doc, "b"), by_name(doc, "c")
        stats = StaircaseStats()
        result = ll_descendant(doc, sorted([(b, 1), (c, 1)]), stats=stats)
        assert len(result) == len(set(result))
        assert stats.contexts_pruned == 1
        assert {pre for _, pre in result} == set(doc.descendants_pre(b))

    def test_nested_contexts_different_iterations_not_pruned(self, doc):
        b, c = by_name(doc, "b"), by_name(doc, "c")
        result = ll_descendant(doc, sorted([(b, 1), (c, 2)]))
        assert (1, c) in result          # c is a descendant of b in iteration 1
        assert (2, c) not in result      # but not of itself in iteration 2

    def test_or_self_includes_context(self, doc):
        c = by_name(doc, "c")
        result = ll_descendant(doc, [(c, 1)], or_self=True)
        assert (1, c) in result


class TestEquivalenceWithIterative:
    @pytest.mark.parametrize("axis", AXES)
    def test_loop_lifted_matches_iterative(self, doc, axis):
        rng = random.Random(hash(axis.value) % 1000)
        pairs = sorted({(rng.randrange(doc.node_count), iteration)
                        for iteration in (1, 2, 3)
                        for _ in range(4)})
        lifted = set(loop_lifted_step(doc, pairs, axis))
        iterated = set(iterative_step(doc, pairs, axis))
        assert lifted == iterated

    @pytest.mark.parametrize("axis", AXES)
    def test_name_test_applied_equally(self, doc, axis):
        pairs = [(0, 1), (by_name(doc, "f"), 2)]
        test = NodeTest(kind="element", name="h")
        assert set(loop_lifted_step(doc, pairs, axis, test)) == \
            set(iterative_step(doc, pairs, axis, test))

    def test_results_unique_per_iteration(self, doc):
        pairs = sorted({(pre, it) for it in (1, 2) for pre in range(doc.node_count)})
        for axis in AXES:
            result = loop_lifted_step(doc, pairs, axis)
            assert len(result) == len(set(result)), axis


class TestPushdown:
    def test_child_pushdown_matches_postfilter(self, doc):
        a, f = by_name(doc, "a"), by_name(doc, "f")
        pairs = sorted([(a, 1), (f, 2)])
        test = NodeTest(kind="element", name="h")
        candidates = doc.candidates_by_name("h")
        pushed = set(ll_child_pushdown(doc, pairs, candidates))
        plain = set(loop_lifted_step(doc, pairs, Axis.CHILD, test))
        assert pushed == plain

    def test_descendant_pushdown_matches_postfilter(self, doc):
        pairs = [(0, 1), (by_name(doc, "b"), 2)]
        test = NodeTest(kind="element", name="e")
        candidates = doc.candidates_by_name("e")
        pushed = set(ll_descendant_pushdown(doc, pairs, candidates))
        plain = set(loop_lifted_step(doc, pairs, Axis.DESCENDANT, test))
        assert pushed == plain

    def test_pushdown_dispatch_returns_none_without_name(self, doc):
        result = loop_lifted_step_pushdown(doc, [(0, 1)], Axis.CHILD,
                                           NodeTest(kind="node"))
        assert result is None

    def test_pushdown_dispatch_returns_none_for_reverse_axes(self, doc):
        result = loop_lifted_step_pushdown(doc, [(3, 1)], Axis.ANCESTOR,
                                           NodeTest(kind="element", name="a"))
        assert result is None


class TestAttributeStep:
    def test_attributes_per_iteration(self):
        doc = make_doc('<a x="1"><b x="2"/></a>')
        pairs = sorted([(1, 1), (2, 1), (2, 2)])
        result = ll_attribute(doc, pairs, "x")
        assert len(result) == 3
        assert {iteration for iteration, _ in result} == {1, 2}


@given(st.integers(0, 100000))
@settings(max_examples=40, deadline=None)
def test_loop_lifted_equivalence_random_trees(seed):
    rng = random.Random(seed)

    def subtree(depth):
        name = rng.choice("abc")
        if depth > 3 or rng.random() < 0.4:
            return f"<{name}/>"
        children = "".join(subtree(depth + 1) for _ in range(rng.randint(1, 3)))
        return f"<{name}>{children}</{name}>"

    doc = make_doc(f"<r>{subtree(0)}{subtree(0)}</r>")
    pairs = sorted({(rng.randrange(doc.node_count), rng.randint(1, 3))
                    for _ in range(6)})
    for axis in (Axis.CHILD, Axis.DESCENDANT, Axis.ANCESTOR, Axis.FOLLOWING):
        assert set(loop_lifted_step(doc, pairs, axis)) == \
            set(iterative_step(doc, pairs, axis))
