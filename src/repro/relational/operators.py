"""Column-at-a-time relational algebra operators.

These are the physical operators the Pathfinder compiler emits ("MIL
generation"): projection/renaming, selection, equi- and theta-joins, cross
product, disjoint union, difference, duplicate elimination, the row-numbering
operator ``rownum`` (SQL:1999 ``DENSE_RANK() OVER (PARTITION BY g ORDER BY
c1..cn)``), aggregation and row-wise function application.

Every operator

* is **eager**: it materialises its result as a new :class:`Table` (exactly
  MonetDB's operator-at-a-time execution model),
* never mutates its inputs,
* propagates the column/table **properties** of Section 4.1 so that later
  operators can pick cheaper algorithms, and
* records the physical algorithm it chose on the active
  :mod:`~repro.relational.explain` trace.
"""

from __future__ import annotations

import math
import operator as _py_operator
from array import array
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import RelationalError, SchemaError
from . import explain
from .column import (Column, DenseColumn, concat_values, int_column_values,
                     make_column)
from .positional import positional_join_positions
from .properties import ColumnProps, GroupOrder, TableProps
from .sorting import refine_sort, sort, total_order_key
from .table import Table


# --------------------------------------------------------------------------- #
# projection / renaming / constant columns
# --------------------------------------------------------------------------- #
def project(table: Table, columns: Sequence[str] | Mapping[str, str]) -> Table:
    """Project (and optionally rename) columns.

    ``columns`` is either a sequence of column names to keep, or a mapping
    ``{new_name: old_name}``.  Ordering properties survive as long as all of
    their columns survive the projection.
    """
    if isinstance(columns, Mapping):
        mapping = dict(columns)
    else:
        mapping = {name: name for name in columns}

    new_columns = []
    reverse: dict[str, str] = {}
    for new_name, old_name in mapping.items():
        new_columns.append(table.column(old_name).renamed(new_name))
        # remember only the first alias of a column for property translation
        reverse.setdefault(old_name, new_name)

    props = TableProps()
    order = []
    for name in table.props.order:
        if name not in reverse:
            break
        order.append(reverse[name])
    props.order = tuple(order)
    group_orders = []
    for grpord in table.props.group_orders:
        translated = grpord.renamed(reverse)
        if translated is not None:
            group_orders.append(translated)
    props.group_orders = tuple(group_orders)

    explain.record("project", "project", table.row_count, table.row_count,
                   detail=",".join(mapping))
    return Table(new_columns, props=props)


def attach(table: Table, name: str, value: Any) -> Table:
    """Attach a constant column (the paper's ``const`` columns)."""
    if name in table.columns:
        raise SchemaError(f"column {name!r} already exists")
    new_column = Column.constant(name, value, table.row_count)
    columns = list(table.columns.values()) + [new_column]
    props = table.props.copy()
    explain.record("attach", "attach", table.row_count, table.row_count, detail=name)
    return Table(columns, props=props)


def add_column(table: Table, name: str, values: Sequence[Any], *,
               props: ColumnProps | None = None) -> Table:
    """Attach a computed column of explicit values."""
    if name in table.columns:
        raise SchemaError(f"column {name!r} already exists")
    if len(values) != table.row_count:
        raise SchemaError(
            f"column {name!r} has {len(values)} values for {table.row_count} rows")
    columns = list(table.columns.values()) + [Column(name, values, props=props)]
    return Table(columns, props=table.props.copy())


def number(table: Table, name: str, base: int = 1) -> Table:
    """Attach a dense row number column in current physical row order.

    This is the ``ρ`` step that attaches a new ``iter`` column "densely
    numbered 1..n in the order given by the pos column" — valid because our
    intermediates are materialised in ``[iter,pos]`` order.
    """
    column = Column.dense(name, table.row_count, base=base)
    columns = list(table.columns.values()) + [column]
    props = table.props.copy()
    explain.record("number", "number", table.row_count, table.row_count, detail=name)
    return Table(columns, props=props)


# --------------------------------------------------------------------------- #
# selection
# --------------------------------------------------------------------------- #
def select_mask(table: Table, mask: Sequence[bool] | str) -> Table:
    """Keep the rows whose mask entry is true (mask column name or list)."""
    values = table.col(mask) if isinstance(mask, str) else mask
    if len(values) != table.row_count:
        raise SchemaError("selection mask length does not match row count")
    positions = [index for index, keep in enumerate(values) if keep]
    explain.record("select", "select.scan", table.row_count, len(positions))
    return table.take(positions, keep_order=True)


def select_eq(table: Table, column: str, value: Any, *,
              use_positional: bool = True) -> Table:
    """Select rows with ``column == value``.

    When the column carries the ``dense`` property (and positional lookup is
    enabled) the row is located by address computation instead of scanning.
    """
    col = table.column(column)
    if use_positional and col.props.dense:
        base = col.props.dense_base
        if isinstance(value, int) and not isinstance(value, bool) \
                and 0 <= value - base < len(col):
            explain.record("select", "select.positional", table.row_count, 1,
                           detail=f"{column}={value}")
            return table.take([value - base], keep_order=True)
        explain.record("select", "select.positional", table.row_count, 0,
                       detail=f"{column}={value}")
        return table.take([], keep_order=True)
    typed = int_column_values(col)
    if typed is not None:
        # typed kernel: scan the raw 64-bit buffer with the memchr-backed
        # bytes.find primitive instead of a per-row comparison loop (the
        # misaligned-hit check rejects byte patterns straddling two
        # values).  Integer cross-type equality (True == 1 == 1.0) is
        # preserved by probing with the integral representative;
        # non-integral probes cannot match an all-int column.
        probe: int | None = None
        if isinstance(value, bool):
            probe = int(value)
        elif isinstance(value, int):
            probe = value
        elif isinstance(value, float) and value.is_integer():
            probe = int(value)
        positions = array("q")
        if probe is not None:
            if isinstance(typed, range):
                if probe in typed:
                    positions.append(typed.index(probe))
            elif -(2 ** 63) <= probe < 2 ** 63:
                buffer = typed.tobytes()
                needle = array("q", (probe,)).tobytes()
                offset = buffer.find(needle)
                while offset != -1:
                    if offset % 8 == 0:
                        positions.append(offset // 8)
                        offset = buffer.find(needle, offset + 8)
                    else:
                        offset = buffer.find(needle, offset + 1)
        explain.record("select", "select.int-scan", table.row_count,
                       len(positions), detail=f"{column}={value}")
        return table.take(positions, keep_order=True)
    positions = [index for index, item in enumerate(col.values) if item == value]
    explain.record("select", "select.scan", table.row_count, len(positions),
                   detail=f"{column}={value}")
    return table.take(positions, keep_order=True)


def select_in(table: Table, column: str, values: Iterable[Any]) -> Table:
    """Select rows whose column value is a member of ``values``."""
    wanted = set(values)
    col = table.col(column)
    positions = [index for index, item in enumerate(col) if item in wanted]
    explain.record("select", "select.in", table.row_count, len(positions),
                   detail=column)
    return table.take(positions, keep_order=True)


# --------------------------------------------------------------------------- #
# joins
# --------------------------------------------------------------------------- #
def _check_disjoint(left: Table, right: Table) -> None:
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise SchemaError(
            f"join inputs share column names {sorted(overlap)}; rename first")


def join(left: Table, right: Table, left_on: str, right_on: str, *,
         use_positional: bool = True) -> Table:
    """Equi-join ``left`` and ``right`` on ``left_on == right_on``.

    Column sets of the two inputs must be disjoint (the compiler renames
    before joining).  The physical algorithm is chosen from the properties of
    the join columns:

    * **positional join** when the right join column is dense (autoincrement
      style) and every probe value hits — the "positional lookup" fast path
      the paper advocates; the output has exactly one match per left row and
      keeps the left row order;
    * **hash join** otherwise, building on the right input and probing with
      the left input in order, so the output stays ordered on the left
      ordering columns.
    """
    _check_disjoint(left, right)
    probe_values = left.col(left_on)

    if use_positional:
        positions = positional_join_positions(probe_values, right, right_on)
        if positions is not None:
            columns = [column.take(range(left.row_count))
                       for column in left.columns.values()]
            for name, column in right.columns.items():
                columns.append(column.take(positions))
            props = TableProps(order=tuple(left.props.order),
                               group_orders=tuple(left.props.group_orders))
            result = Table(columns, props=props)
            # properties of the left columns survive 1:1
            for name, column in left.columns.items():
                result.column(name).props = column.props.copy()
            explain.record("join", "join.positional", left.row_count,
                           result.row_count, detail=f"{left_on}={right_on}")
            return result

    buckets: dict[Any, list[int]] = {}
    for index, value in enumerate(right.col(right_on)):
        buckets.setdefault(value, []).append(index)

    left_positions: list[int] = []
    right_positions: list[int] = []
    for index, value in enumerate(probe_values):
        for match in buckets.get(value, ()):
            left_positions.append(index)
            right_positions.append(match)

    columns = [column.take(left_positions) for column in left.columns.values()]
    columns += [column.take(right_positions) for column in right.columns.values()]
    props = TableProps(order=tuple(left.props.order))
    result = Table(columns, props=props)
    explain.record("join", "join.hash", left.row_count + right.row_count,
                   result.row_count, detail=f"{left_on}={right_on}")
    return result


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "eq": _py_operator.eq,
    "ne": _py_operator.ne,
    "lt": _py_operator.lt,
    "le": _py_operator.le,
    "gt": _py_operator.gt,
    "ge": _py_operator.ge,
}


def theta_join(left: Table, right: Table, left_on: str, right_on: str,
               comparison: str, *, algorithm: str = "auto",
               sample_size: int = 32) -> Table:
    """Theta-join with one of the comparisons ``eq ne lt le gt ge``.

    For ``eq`` a hash join is used.  For the other comparisons the paper's
    "choose-plan" strategy applies: a small join sample estimates the hit
    rate; a low hit rate favours the index-lookup join (sort the right input,
    binary-search the qualifying range per probe, refine-sort afterwards),
    while a high hit rate favours the nested-loop join whose output is
    naturally ordered on ``[left, right]`` row order.
    ``algorithm`` may force ``"nested-loop"`` or ``"index"``.
    """
    _check_disjoint(left, right)
    if comparison not in _COMPARATORS:
        raise RelationalError(f"unsupported theta-join comparison {comparison!r}")
    if comparison == "eq":
        return join(left, right, left_on, right_on, use_positional=False)

    compare = _COMPARATORS[comparison]
    left_values = left.col(left_on)
    right_values = right.col(right_on)

    chosen = algorithm
    if chosen == "auto":
        chosen = _choose_theta_algorithm(left_values, right_values, compare,
                                         sample_size)

    if chosen == "index":
        left_positions, right_positions = _index_lookup_join(
            left_values, right_values, comparison)
        algorithm_name = "theta.index"
    else:
        left_positions = []
        right_positions = []
        for lindex, lvalue in enumerate(left_values):
            for rindex, rvalue in enumerate(right_values):
                if _safe_compare(compare, lvalue, rvalue):
                    left_positions.append(lindex)
                    right_positions.append(rindex)
        algorithm_name = "theta.nested-loop"

    columns = [column.take(left_positions) for column in left.columns.values()]
    columns += [column.take(right_positions) for column in right.columns.values()]
    props = TableProps(order=tuple(left.props.order))
    result = Table(columns, props=props)
    explain.record("theta_join", algorithm_name,
                   left.row_count + right.row_count, result.row_count,
                   detail=f"{left_on} {comparison} {right_on}")
    return result


def _safe_compare(compare: Callable[[Any, Any], bool], left: Any, right: Any) -> bool:
    try:
        return bool(compare(left, right))
    except TypeError:
        return False


def _choose_theta_algorithm(left_values: Sequence[Any],
                            right_values: Sequence[Any],
                            compare: Callable[[Any, Any], bool],
                            sample_size: int) -> str:
    """Estimate the join hit rate on a small sample ("choose-plan")."""
    if not left_values or not right_values:
        return "index"
    lstep = max(1, len(left_values) // sample_size)
    rstep = max(1, len(right_values) // sample_size)
    lsample = left_values[::lstep][:sample_size]
    rsample = right_values[::rstep][:sample_size]
    hits = 0
    total = 0
    for lvalue in lsample:
        for rvalue in rsample:
            total += 1
            if _safe_compare(compare, lvalue, rvalue):
                hits += 1
    hit_rate = hits / total if total else 0.0
    return "nested-loop" if hit_rate > 0.25 else "index"


def _index_lookup_join(left_values: Sequence[Any], right_values: Sequence[Any],
                       comparison: str) -> tuple[list[int], list[int]]:
    """Sort the right input once, answer each probe with a range lookup."""
    order = sorted(range(len(right_values)),
                   key=lambda index: total_order_key(right_values[index]))
    sorted_keys = [total_order_key(right_values[index]) for index in order]

    import bisect

    left_positions: list[int] = []
    right_positions: list[int] = []
    for lindex, lvalue in enumerate(left_values):
        key = total_order_key(lvalue)
        if comparison == "lt":          # right values strictly greater
            start = bisect.bisect_right(sorted_keys, key)
            matches = order[start:]
        elif comparison == "le":
            start = bisect.bisect_left(sorted_keys, key)
            matches = order[start:]
        elif comparison == "gt":        # right values strictly smaller
            end = bisect.bisect_left(sorted_keys, key)
            matches = order[:end]
        elif comparison == "ge":
            end = bisect.bisect_right(sorted_keys, key)
            matches = order[:end]
        elif comparison == "ne":
            matches = [index for index in order
                       if total_order_key(right_values[index]) != key]
        else:  # pragma: no cover - eq handled by the hash join
            raise RelationalError(f"unexpected comparison {comparison!r}")
        # refine: emit matches in right row order within each probe
        for rindex in sorted(matches):
            left_positions.append(lindex)
            right_positions.append(rindex)
    return left_positions, right_positions


def cross(left: Table, right: Table) -> Table:
    """Cartesian product (left-major order)."""
    _check_disjoint(left, right)
    left_positions: list[int] = []
    right_positions: list[int] = []
    for lindex in range(left.row_count):
        for rindex in range(right.row_count):
            left_positions.append(lindex)
            right_positions.append(rindex)
    columns = [column.take(left_positions) for column in left.columns.values()]
    columns += [column.take(right_positions) for column in right.columns.values()]
    props = TableProps(order=tuple(left.props.order))
    result = Table(columns, props=props)
    explain.record("cross", "cross", left.row_count + right.row_count,
                   result.row_count)
    return result


# --------------------------------------------------------------------------- #
# set-style operators
# --------------------------------------------------------------------------- #
def union_all(tables: Sequence[Table]) -> Table:
    """Disjoint union: concatenate tables with identical column names."""
    tables = [table for table in tables]
    if not tables:
        raise RelationalError("union_all of zero tables")
    names = tables[0].column_names
    for table in tables[1:]:
        if table.column_names != names:
            raise SchemaError(
                f"union_all schema mismatch: {table.column_names} vs {names}")
    columns = []
    for name in names:
        # the merge stays typed (one array('q') concat) when every input
        # column is typed; any list input degrades the result to a list
        merged_values = concat_values([table.col(name) for table in tables])
        columns.append(make_column(name, merged_values))
    rows_in = sum(table.row_count for table in tables)
    explain.record("union", "union.append", rows_in, rows_in)
    return Table(columns)


def difference(left: Table, right: Table, columns: Sequence[str]) -> Table:
    """Anti-join: keep left rows whose ``columns`` tuple is absent in right."""
    right_keys = set(right.rows(columns))
    positions = [index for index, key in enumerate(left.rows(columns))
                 if key not in right_keys]
    explain.record("difference", "difference.hash", left.row_count + right.row_count,
                   len(positions), detail=",".join(columns))
    return left.take(positions, keep_order=True)


def distinct(table: Table, columns: Sequence[str] | None = None) -> Table:
    """Duplicate elimination on the given columns (all columns by default).

    Keeps the first occurrence of each key in input order.  When the table is
    already ordered on the key columns only adjacent rows have to be compared
    (merge-style ``δ``); otherwise a hash table is used.  Both variants
    produce the same table, only the recorded algorithm differs.
    """
    key_columns = tuple(columns) if columns is not None else table.column_names
    if table.props.ordered_on(key_columns):
        positions = []
        previous = object()
        for index, key in enumerate(table.rows(key_columns)):
            if key != previous:
                positions.append(index)
                previous = key
        explain.record("distinct", "distinct.merge", table.row_count,
                       len(positions), detail=",".join(key_columns))
    else:
        seen: set = set()
        positions = []
        for index, key in enumerate(table.rows(key_columns)):
            if key not in seen:
                seen.add(key)
                positions.append(index)
        explain.record("distinct", "distinct.hash", table.row_count,
                       len(positions), detail=",".join(key_columns))
    return table.take(positions, keep_order=True)


# --------------------------------------------------------------------------- #
# row numbering (DENSE_RANK OVER (PARTITION BY g ORDER BY c1..cn))
# --------------------------------------------------------------------------- #
def rownum(table: Table, name: str, order_by: Sequence[str], *,
           partition: str | None = None, base: int = 1,
           use_properties: bool = True) -> Table:
    """The ``ρ A:<c1..cn>/g`` operator of the paper.

    For every partition (tuple group defined by ``partition``; a single group
    when ``partition`` is None) the rows are numbered ``base, base+1, ...``
    following the ordering given by ``order_by``.  The physical row order of
    the table is unchanged; only the numbering column is added.

    Two algorithms exist:

    * **streaming** (hash-based): a counter per active partition value,
      incremented in scan order.  Valid when the ``grpord(order_by,
      partition)`` property holds, i.e. rows of one partition already appear
      in ``order_by`` order (they need not be clustered).
    * **sorting**: the generic algorithm; computes the rank via an argsort on
      ``[partition, order_by]``.
    """
    if name in table.columns:
        raise SchemaError(f"column {name!r} already exists")
    order_by = tuple(order_by)
    row_count = table.row_count

    streaming_ok = False
    if use_properties:
        if partition is None:
            streaming_ok = table.props.ordered_on(order_by)
        else:
            streaming_ok = table.props.group_ordered_on(order_by, partition)

    if streaming_ok and partition is None:
        # single partition numbered in physical order: the result is by
        # definition base, base+1, ... — emit a virtual dense column
        # without touching a single row
        explain.record("rownum", "rownum.streaming", row_count, row_count,
                       detail=f"{name}:<{','.join(order_by)}>/- (dense)")
        column = DenseColumn(name, row_count, base=base)
        columns = list(table.columns.values()) + [column]
        return Table(columns, props=table.props.copy())

    values: list[int] = [0] * row_count
    if streaming_ok:
        counters: dict[Any, int] = {}
        group_col = table.col(partition) if partition is not None else None
        for index in range(row_count):
            group = group_col[index] if group_col is not None else None
            next_value = counters.get(group, base)
            values[index] = next_value
            counters[group] = next_value + 1
        algorithm = "rownum.streaming"
    else:
        sort_cols = ([partition] if partition is not None else []) + list(order_by)
        cols = [table.col(column) for column in sort_cols]

        def sort_key(index: int) -> tuple:
            return tuple(total_order_key(col[index]) for col in cols)

        order = sorted(range(row_count), key=sort_key)
        group_col = table.col(partition) if partition is not None else None
        counters = {}
        for index in order:
            group = group_col[index] if group_col is not None else None
            next_value = counters.get(group, base)
            values[index] = next_value
            counters[group] = next_value + 1
        algorithm = "rownum.sorting"

    explain.record("rownum", algorithm, row_count, row_count,
                   detail=f"{name}:<{','.join(order_by)}>/{partition or '-'}")
    props = ColumnProps()
    if partition is None:
        # a single partition numbered in (implicit) order: values are a
        # permutation of base..base+n-1 and therefore a key
        props.key = True
    result = add_column(table, name, values, props=props)
    if partition is not None:
        result.add_group_order((name,), partition)
    return result


# --------------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------------- #
_AGGREGATES = {"count", "sum", "min", "max", "avg", "first", "last",
               "min-value", "max-value"}


def aggregate(table: Table, group_by: str | None,
              specs: Sequence[tuple[str, str, str | None]]) -> Table:
    """Grouped aggregation.

    ``specs`` is a sequence of ``(result_column, kind, source_column)`` where
    ``kind`` is one of ``count, sum, min, max, avg, first, last`` (``count``
    ignores the source column).  The output contains one row per group,
    sorted ascending on the group value, with the group column first.  With
    ``group_by=None`` a single global row is produced.

    Grouping is "for free" (merge) when the input is ordered on the group
    column — the situation the paper exploits for the min/max rewrite of
    existential theta-joins — and hash-based otherwise.
    """
    for _, kind, _ in specs:
        if kind not in _AGGREGATES:
            raise RelationalError(f"unknown aggregate {kind!r}")

    groups: dict[Any, list[int]] = {}
    if group_by is None:
        groups[None] = list(range(table.row_count))
        algorithm = "aggregate.global"
    else:
        group_values = table.col(group_by)
        if table.props.ordered_on((group_by,)):
            algorithm = "aggregate.merge"
        else:
            algorithm = "aggregate.hash"
        for index, value in enumerate(group_values):
            groups.setdefault(value, []).append(index)

    group_keys = sorted(groups, key=total_order_key) if group_by is not None else [None]

    columns: list[Column] = []
    if group_by is not None:
        columns.append(Column(group_by, list(group_keys),
                              props=ColumnProps(key=True)))

    source_cols = {source: table.col(source)
                   for _, _, source in specs if source is not None}
    for result_name, kind, source in specs:
        out: list[Any] = []
        for key in group_keys:
            positions = groups[key]
            if kind == "count":
                out.append(len(positions))
                continue
            values = [source_cols[source][position] for position in positions]
            out.append(_aggregate_value(kind, values))
        columns.append(Column(result_name, out))

    props = TableProps(order=(group_by,) if group_by is not None else ())
    result = Table(columns, props=props)
    explain.record("aggregate", algorithm, table.row_count, result.row_count,
                   detail=",".join(f"{kind}" for _, kind, _ in specs))
    return result


def _aggregate_value(kind: str, values: Sequence[Any]) -> Any:
    if kind == "first":
        return values[0] if values else None
    if kind == "last":
        return values[-1] if values else None
    if kind in ("min-value", "max-value"):
        # order-preserving extremum: no numeric coercion (used by the
        # existential min/max join plan on the string-typed domain)
        if not values:
            return None
        chooser = min if kind == "min-value" else max
        return chooser(values, key=total_order_key)
    numeric = [_as_number(value) for value in values]
    numeric = [value for value in numeric if value is not None]
    if kind == "sum":
        return sum(numeric) if numeric else 0
    if not numeric:
        return None
    if kind == "min":
        return min(numeric)
    if kind == "max":
        return max(numeric)
    if kind == "avg":
        return sum(numeric) / len(numeric)
    raise RelationalError(f"unknown aggregate {kind!r}")  # pragma: no cover


def _as_number(value: Any) -> float | int | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            if any(ch in value for ch in ".eE"):
                return float(value)
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


# --------------------------------------------------------------------------- #
# row-wise function application
# --------------------------------------------------------------------------- #
def fun(table: Table, name: str, function: Callable[..., Any],
        arguments: Sequence[str | tuple[str, Any]]) -> Table:
    """Attach a column computed row-wise from other columns.

    ``arguments`` items are either column names or ``("const", value)`` pairs.
    """
    resolved: list[tuple[bool, Any]] = []
    for argument in arguments:
        if isinstance(argument, tuple) and len(argument) == 2 and argument[0] == "const":
            resolved.append((False, argument[1]))
        else:
            resolved.append((True, table.col(argument)))

    values = []
    for index in range(table.row_count):
        args = []
        for is_column, payload in resolved:
            args.append(payload[index] if is_column else payload)
        values.append(function(*args))

    explain.record("fun", "fun.map", table.row_count, table.row_count, detail=name)
    return add_column(table, name, values)


# convenience wrappers for the comparison / arithmetic kernels ---------------- #
def numeric(value: Any) -> float | int | None:
    """Public numeric coercion helper (XQuery-style untyped atomic casting)."""
    return _as_number(value)


def compare_values(op: str, left: Any, right: Any) -> bool:
    """General-comparison kernel with numeric promotion.

    When either operand is numeric, both are promoted to numbers (an
    unconvertible operand simply does not match); otherwise string comparison
    applies.  This mirrors XQuery's untyped-atomic comparison rules closely
    enough for the XMark workload.
    """
    compare = _COMPARATORS[op]
    if isinstance(left, (int, float)) and not isinstance(left, bool) or \
            isinstance(right, (int, float)) and not isinstance(right, bool):
        left_num = _as_number(left)
        right_num = _as_number(right)
        if left_num is None or right_num is None:
            return False
        return compare(left_num, right_num)
    if isinstance(left, bool) or isinstance(right, bool):
        return compare(bool(left), bool(right))
    return _safe_compare(compare, str(left), str(right))


def arithmetic(op: str, left: Any, right: Any) -> float | int | None:
    """Arithmetic kernel with numeric promotion (returns None on failure)."""
    left_num = _as_number(left)
    right_num = _as_number(right)
    if left_num is None or right_num is None:
        return None
    if op == "add":
        return left_num + right_num
    if op == "sub":
        return left_num - right_num
    if op == "mul":
        return left_num * right_num
    if op == "div":
        if right_num == 0:
            return math.nan
        return left_num / right_num
    if op == "idiv":
        if right_num == 0:
            return None
        return int(left_num // right_num)
    if op == "mod":
        if right_num == 0:
            return None
        return left_num % right_num
    raise RelationalError(f"unknown arithmetic operator {op!r}")
