"""A conventional tree-walking XQuery interpreter (comparison baseline).

The systems MonetDB/XQuery is compared against in Table 1 / Figure 16
(eXist, Galax, BerkeleyDB-XML, X-Hive, and the literature systems of Table 2)
are unavailable, so this module provides the *class* of engine they
represent: a straightforward interpreter that

* evaluates every expression per binding tuple (no loop-lifting: a path
  inside a ``for`` loop is re-evaluated for every iteration),
* navigates XPath axes node-at-a-time over the same shredded document
  containers (so storage is identical and only the execution strategy
  differs), and
* evaluates joins by nested-loop re-evaluation of the inner FLWOR, giving
  the quadratic Q8–Q12 behaviour the paper reports for the comparison
  systems.

It consumes the same AST as the relational compiler, which also makes it a
semantic cross-check oracle for the integration tests.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import XQueryRuntimeError, XQueryTypeError, XQueryUnsupportedError
from ..staircase.axes import Axis
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from ..xquery import ast
from ..xquery.parser import parse
from ..xquery.types import (atomize, effective_boolean_value, to_number,
                            to_string)


class TreeWalkingInterpreter:
    """Evaluate parsed queries by direct AST interpretation."""

    def __init__(self, store, transient: DocumentContainer | None = None):
        self.store = store
        self.transient = transient if transient is not None \
            else DocumentContainer("(transient)", order_key=1 << 30, transient=True)
        self.user_functions: dict[str, ast.FunctionDecl] = {}

    # ------------------------------------------------------------------ #
    def run(self, query: str | ast.Module, context_item: Any | None = None) -> list[Any]:
        module = parse(query) if isinstance(query, str) else query
        self.user_functions = dict(module.functions)
        env: dict[str, list[Any]] = {}
        if context_item is not None:
            env["."] = [context_item]
        for declaration in module.variables:
            env[declaration.name] = self.evaluate(declaration.value, env)
        return self.evaluate(module.body, env)

    # ------------------------------------------------------------------ #
    def evaluate(self, node: ast.Expr, env: dict[str, list[Any]]) -> list[Any]:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise XQueryUnsupportedError(
                f"baseline interpreter: unsupported {type(node).__name__}")
        return method(node, env)

    # -- primitives --------------------------------------------------------- #
    def _eval_Literal(self, node: ast.Literal, env) -> list[Any]:
        return [node.value]

    def _eval_EmptySequence(self, node, env) -> list[Any]:
        return []

    def _eval_VarRef(self, node: ast.VarRef, env) -> list[Any]:
        if node.name not in env:
            raise XQueryRuntimeError(f"unbound variable ${node.name}")
        return list(env[node.name])

    def _eval_ContextItem(self, node, env) -> list[Any]:
        if "." not in env:
            raise XQueryRuntimeError("context item is undefined")
        return list(env["."])

    def _eval_SequenceExpr(self, node: ast.SequenceExpr, env) -> list[Any]:
        result: list[Any] = []
        for item in node.items:
            result.extend(self.evaluate(item, env))
        return result

    def _eval_RangeExpr(self, node: ast.RangeExpr, env) -> list[Any]:
        start = to_number(self._singleton(self.evaluate(node.start, env)))
        end = to_number(self._singleton(self.evaluate(node.end, env)))
        if start is None or end is None:
            return []
        return list(range(int(start), int(end) + 1))

    def _singleton(self, items: list[Any]) -> Any:
        return items[0] if items else None

    # -- FLWOR ---------------------------------------------------------------- #
    def _eval_FLWORExpr(self, node: ast.FLWORExpr, env) -> list[Any]:
        tuples: list[dict[str, list[Any]]] = [dict(env)]
        for clause in node.clauses:
            if isinstance(clause, ast.LetClause):
                for binding in tuples:
                    binding[clause.variable] = self.evaluate(clause.value, binding)
                continue
            expanded: list[dict[str, list[Any]]] = []
            for binding in tuples:
                sequence = self.evaluate(clause.sequence, binding)
                for position, item in enumerate(sequence, start=1):
                    new_binding = dict(binding)
                    new_binding[clause.variable] = [item]
                    if clause.position_variable:
                        new_binding[clause.position_variable] = [position]
                    expanded.append(new_binding)
            tuples = expanded
        if node.where is not None:
            tuples = [binding for binding in tuples
                      if effective_boolean_value(self.evaluate(node.where, binding))]
        if node.order_by:
            def order_key(binding):
                key = []
                for spec in node.order_by:
                    value = self._singleton(self.evaluate(spec.key, binding))
                    value = atomize(value) if value is not None else None
                    number = to_number(value) if value is not None else None
                    if number is None:
                        key.append((1 if value is None else 0, 0.0,
                                    to_string(value) if value is not None else ""))
                    else:
                        key.append((0, number, ""))
                return key
            for index in range(len(node.order_by) - 1, -1, -1):
                spec = node.order_by[index]
                tuples.sort(key=lambda binding, index=index: order_key(binding)[index],
                            reverse=spec.descending)
        result: list[Any] = []
        for binding in tuples:
            result.extend(self.evaluate(node.return_expr, binding))
        return result

    def _eval_QuantifiedExpr(self, node: ast.QuantifiedExpr, env) -> list[Any]:
        bindings: list[dict[str, list[Any]]] = [dict(env)]
        for variable, sequence_expr in node.bindings:
            expanded = []
            for binding in bindings:
                for item in self.evaluate(sequence_expr, binding):
                    new_binding = dict(binding)
                    new_binding[variable] = [item]
                    expanded.append(new_binding)
            bindings = expanded
        outcomes = [effective_boolean_value(self.evaluate(node.satisfies, binding))
                    for binding in bindings]
        if node.quantifier == "some":
            return [any(outcomes)]
        return [all(outcomes)]

    # -- logic / comparisons / arithmetic --------------------------------------- #
    def _eval_IfExpr(self, node: ast.IfExpr, env) -> list[Any]:
        if effective_boolean_value(self.evaluate(node.condition, env)):
            return self.evaluate(node.then_branch, env)
        return self.evaluate(node.else_branch, env)

    def _eval_AndExpr(self, node: ast.AndExpr, env) -> list[Any]:
        return [all(effective_boolean_value(self.evaluate(operand, env))
                    for operand in node.operands)]

    def _eval_OrExpr(self, node: ast.OrExpr, env) -> list[Any]:
        return [any(effective_boolean_value(self.evaluate(operand, env))
                    for operand in node.operands)]

    def _compare(self, op: str, left: Any, right: Any) -> bool:
        from ..relational.operators import compare_values
        return compare_values(op, atomize(left), atomize(right))

    def _eval_GeneralComparison(self, node: ast.GeneralComparison, env) -> list[Any]:
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        return [any(self._compare(node.op, lhs, rhs)
                    for lhs in left for rhs in right)]

    def _eval_ValueComparison(self, node: ast.ValueComparison, env) -> list[Any]:
        left = self._singleton(self.evaluate(node.left, env))
        right = self._singleton(self.evaluate(node.right, env))
        if left is None or right is None:
            return []
        return [self._compare(node.op, left, right)]

    def _eval_ArithmeticExpr(self, node: ast.ArithmeticExpr, env) -> list[Any]:
        from ..relational.operators import arithmetic
        left = self._singleton(self.evaluate(node.left, env))
        right = self._singleton(self.evaluate(node.right, env))
        if left is None or right is None:
            return []
        value = arithmetic(node.op, atomize(left), atomize(right))
        return [] if value is None else [value]

    def _eval_UnaryExpr(self, node: ast.UnaryExpr, env) -> list[Any]:
        value = to_number(self._singleton(self.evaluate(node.operand, env)))
        if value is None:
            return []
        return [-value if node.negate else value]

    # -- paths -------------------------------------------------------------------- #
    def _eval_PathExpr(self, node: ast.PathExpr, env) -> list[Any]:
        if node.absolute:
            context = self._eval_ContextItem(ast.ContextItem(), env)
            current = []
            for item in context:
                if not isinstance(item, NodeRef):
                    raise XQueryTypeError("context item is not a node")
                current.append(NodeRef(item.container,
                                       item.container.root_pre(item.pre)))
        elif node.start is not None:
            current = self.evaluate(node.start, env)
        else:
            current = self._eval_ContextItem(ast.ContextItem(), env)
        for step in node.steps:
            if not isinstance(step, ast.AxisStep):
                raise XQueryUnsupportedError("only axis steps inside paths")
            current = self._eval_axis_step(step, current, env)
        return current

    def _eval_FilterExpr(self, node: ast.FilterExpr, env) -> list[Any]:
        items = self.evaluate(node.base, env)
        for predicate in node.predicates:
            items = self._filter(items, predicate, env)
        return items

    def _eval_axis_step(self, step: ast.AxisStep, context: list[Any], env) -> list[Any]:
        results: list[NodeRef] = []
        seen: set[NodeRef] = set()
        for item in context:
            if not isinstance(item, NodeRef):
                raise XQueryTypeError("path step over a non-node item")
            produced = self._axis_nodes(item, step)
            for predicate in step.predicates:
                produced = self._filter(produced, predicate, env)
            for produced_node in produced:
                if produced_node not in seen:
                    seen.add(produced_node)
                    results.append(produced_node)
        results.sort(key=lambda node: node.order_key())
        return list(results)

    def _axis_nodes(self, node: NodeRef, step: ast.AxisStep) -> list[NodeRef]:
        container = node.container
        test = step.node_test
        axis = step.axis

        if axis is Axis.ATTRIBUTE:
            if node.attr is not None:
                return []
            produced = [container.attribute(index)
                        for index in container.attributes_of(node.pre)]
            if test.name not in (None, "*"):
                produced = [attribute for attribute in produced
                            if attribute.name() == test.name]
            return produced

        if node.attr is not None:
            # XPath defines the vertical and horizontal axes for attribute
            # nodes via the owning element: the owner is the parent, its
            # ancestor-or-self chain are the ancestors, and the attribute
            # sorts after the owner but before the owner's children — so
            # following(attr) = descendant(owner) ∪ following(owner) and
            # preceding(attr) = preceding(owner).  Candidate lists are
            # built in axis order (proximity-first for reverse axes) so
            # positional predicates count along the axis direction.
            owner = NodeRef(container, node.pre)
            if axis is Axis.PARENT:
                return self._axis_nodes(
                    owner, ast.AxisStep(axis=Axis.SELF, node_test=test))
            if axis is Axis.SELF:
                return [node] if test.kind in ("attribute", "node") else []
            if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
                produced = [node] if axis is Axis.ANCESTOR_OR_SELF \
                    and test.kind in ("attribute", "node") else []
                produced += self._axis_nodes(
                    owner, ast.AxisStep(axis=Axis.ANCESTOR_OR_SELF,
                                        node_test=test))
                return produced
            if axis is Axis.FOLLOWING:
                return self._axis_nodes(
                    owner, ast.AxisStep(axis=Axis.DESCENDANT,
                                        node_test=test)) \
                    + self._axis_nodes(
                        owner, ast.AxisStep(axis=Axis.FOLLOWING,
                                            node_test=test))
            if axis is Axis.PRECEDING:
                return self._axis_nodes(
                    owner, ast.AxisStep(axis=Axis.PRECEDING, node_test=test))
            return []

        pre = node.pre
        size = container.size[pre]
        candidates: list[int]
        if axis is Axis.SELF:
            candidates = [pre]
        elif axis is Axis.CHILD:
            candidates = list(container.children_pre(pre))
        elif axis is Axis.DESCENDANT:
            candidates = list(container.descendants_pre(pre))
        elif axis is Axis.DESCENDANT_OR_SELF:
            candidates = [pre] + list(container.descendants_pre(pre))
        elif axis is Axis.PARENT:
            parent = container.parent_pre(pre)
            candidates = [] if parent is None else [parent]
        elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            candidates = []
            if axis is Axis.ANCESTOR_OR_SELF:
                candidates.append(pre)
            current = container.parent_pre(pre)
            while current is not None:
                candidates.append(current)
                current = container.parent_pre(current)
        elif axis is Axis.FOLLOWING:
            candidates = list(range(pre + size + 1, container.node_count))
        elif axis is Axis.PRECEDING:
            # proximity (reverse document) order, like the ancestor chain
            # above: predicates on reverse axes count nearest-first
            candidates = [candidate for candidate in range(pre - 1, -1, -1)
                          if candidate + container.size[candidate] < pre]
        elif axis is Axis.FOLLOWING_SIBLING:
            parent = container.parent_pre(pre)
            candidates = [] if parent is None else [
                sibling for sibling in container.children_pre(parent) if sibling > pre]
        elif axis is Axis.PRECEDING_SIBLING:
            parent = container.parent_pre(pre)
            candidates = [] if parent is None else [
                sibling for sibling in reversed(list(container.children_pre(parent)))
                if sibling < pre]
        else:  # pragma: no cover - defensive
            raise XQueryUnsupportedError(f"axis {axis} not supported")

        produced = []
        for candidate in candidates:
            if self._matches_test(container, candidate, test):
                produced.append(NodeRef(container, candidate))
        return produced

    @staticmethod
    def _matches_test(container: DocumentContainer, pre: int,
                      test: ast.NodeTestExpr) -> bool:
        kind = container.kind[pre]
        if test.kind == "node":
            return True
        if test.kind == "element":
            if kind != NodeKind.ELEMENT:
                return False
            if test.name in (None, "*"):
                return True
            return container.element_name(pre) == test.name
        if test.kind == "text":
            return kind == NodeKind.TEXT
        if test.kind == "comment":
            return kind == NodeKind.COMMENT
        if test.kind == "processing-instruction":
            return kind == NodeKind.PROCESSING_INSTRUCTION
        return False

    def _filter(self, items: list[Any], predicate: ast.Expr, env) -> list[Any]:
        kept = []
        size = len(items)
        for position, item in enumerate(items, start=1):
            local = dict(env)
            local["."] = [item]
            local["fs:position"] = [position]
            local["fs:last"] = [size]
            outcome = self.evaluate(predicate, local)
            if len(outcome) == 1 and isinstance(outcome[0], (int, float)) \
                    and not isinstance(outcome[0], bool):
                if outcome[0] == position:
                    kept.append(item)
            elif effective_boolean_value(outcome):
                kept.append(item)
        return kept

    # -- functions ------------------------------------------------------------------ #
    def _eval_FunctionCall(self, node: ast.FunctionCall, env) -> list[Any]:
        name = node.name[3:] if node.name.startswith("fn:") else node.name
        if name == "position" and not node.arguments:
            return list(env.get("fs:position", []))
        if name == "last" and not node.arguments:
            return list(env.get("fs:last", []))
        if node.name in self.user_functions or name in self.user_functions:
            declaration = self.user_functions.get(node.name) or self.user_functions[name]
            call_env: dict[str, list[Any]] = {}
            for parameter, argument in zip(declaration.parameters, node.arguments):
                call_env[parameter] = self.evaluate(argument, env)
            return self.evaluate(declaration.body, call_env)
        arguments = [self.evaluate(argument, env) for argument in node.arguments]
        return self._builtin(name, arguments, env)

    def _builtin(self, name: str, args: list[list[Any]], env) -> list[Any]:
        def first(index: int) -> Any:
            return args[index][0] if index < len(args) and args[index] else None

        if name == "count":
            return [len(args[0])]
        if name == "sum":
            numbers = [to_number(item) for item in args[0]]
            return [sum(number for number in numbers if number is not None)]
        if name in ("avg", "min", "max"):
            numbers = [to_number(item) for item in args[0]]
            numbers = [number for number in numbers if number is not None]
            if not numbers:
                return []
            if name == "avg":
                return [sum(numbers) / len(numbers)]
            return [min(numbers) if name == "min" else max(numbers)]
        if name == "empty":
            return [len(args[0]) == 0]
        if name == "exists":
            return [len(args[0]) > 0]
        if name == "not":
            return [not effective_boolean_value(args[0])]
        if name == "boolean":
            return [effective_boolean_value(args[0])]
        if name == "true":
            return [True]
        if name == "false":
            return [False]
        if name == "string":
            value = first(0)
            return [to_string(value) if value is not None else ""]
        if name == "data":
            return [atomize(item) for item in args[0]]
        if name == "number":
            value = to_number(first(0))
            return [value if value is not None else math.nan]
        if name == "string-length":
            return [len(to_string(first(0)))]
        if name == "contains":
            return [to_string(first(1)) in to_string(first(0))]
        if name == "starts-with":
            return [to_string(first(0)).startswith(to_string(first(1)))]
        if name == "concat":
            return ["".join(to_string(first(index)) for index in range(len(args)))]
        if name == "string-join":
            separator = to_string(first(1)) if len(args) > 1 else ""
            return [separator.join(to_string(item) for item in args[0])]
        if name == "distinct-values":
            seen = set()
            result = []
            for item in args[0]:
                value = atomize(item)
                key = to_number(value)
                if key is None:
                    key = to_string(value)
                if key not in seen:
                    seen.add(key)
                    result.append(value)
            return result
        if name in ("zero-or-one", "one-or-more", "exactly-one"):
            return args[0]
        if name == "doc":
            container = self.store.get(to_string(first(0)))
            return [NodeRef(container, 0)]
        if name in ("name", "local-name"):
            item = first(0)
            if isinstance(item, NodeRef):
                return [item.name() or ""]
            return [""]
        if name in ("round", "floor", "ceiling", "abs"):
            value = to_number(first(0))
            if value is None:
                return []
            mapping: dict[str, Callable[[float], float]] = {
                "round": round, "floor": math.floor,
                "ceiling": math.ceil, "abs": abs}
            return [mapping[name](value)]
        raise XQueryUnsupportedError(f"baseline interpreter: unknown function {name}()")

    # -- constructors ----------------------------------------------------------------- #
    def _eval_ElementConstructor(self, node: ast.ElementConstructor, env) -> list[Any]:
        from ..xquery.constructors import construct_element
        attributes = []
        for attribute_name, template in node.attributes:
            rendered = []
            for part in template.parts:
                if isinstance(part, str):
                    rendered.append(part)
                else:
                    rendered.append(" ".join(to_string(item)
                                             for item in self.evaluate(part, env)))
            attributes.append((attribute_name, "".join(rendered)))
        content: list[Any] = []
        for part in node.content:
            if isinstance(part, str):
                content.append(part)
            else:
                content.extend(self.evaluate(part, env))
        return [construct_element(self.transient, node.name, attributes, content)]

    def _eval_TextConstructor(self, node: ast.TextConstructor, env) -> list[Any]:
        from ..xquery.constructors import construct_text
        text = " ".join(to_string(item) for item in self.evaluate(node.content, env))
        return [construct_text(self.transient, text)]


def run_baseline(store, query: str, context_document: str) -> list[Any]:
    """Convenience: evaluate a query with the baseline over a loaded document."""
    interpreter = TreeWalkingInterpreter(store)
    container = store.get(context_document)
    return interpreter.run(query, context_item=NodeRef(container, 0))
