"""Figure 16 — normalised evaluation time relative to MonetDB/XQuery.

Rather than re-timing (Table 1 already does), this benchmark computes the
normalised ratio baseline / MXQ per query directly, which is exactly the
series Figure 16 plots, and records it as ``extra_info`` so the JSON output
of ``pytest-benchmark`` contains the figure's data points.
"""

import time

import pytest

from repro.baselines import TreeWalkingInterpreter
from repro.xmark import XMARK_QUERIES
from repro.xml.document import NodeRef


QUERIES = (1, 2, 5, 6, 8, 11, 13, 17, 20)


@pytest.mark.parametrize("query", QUERIES)
def test_fig16_normalized_ratio(benchmark, xmark_engine, query):
    text = XMARK_QUERIES[query]
    container = xmark_engine.store.get("auction.xml")

    def measure_pair():
        xmark_engine.reset_transient()
        started = time.perf_counter()
        xmark_engine.query(text)
        mxq_seconds = time.perf_counter() - started

        interpreter = TreeWalkingInterpreter(xmark_engine.store)
        started = time.perf_counter()
        interpreter.run(text, context_item=NodeRef(container, 0))
        baseline_seconds = time.perf_counter() - started
        return mxq_seconds, baseline_seconds

    mxq_seconds, baseline_seconds = benchmark.pedantic(
        measure_pair, rounds=1, iterations=1, warmup_rounds=0)
    ratio = baseline_seconds / mxq_seconds if mxq_seconds > 0 else float("inf")
    benchmark.extra_info["figure"] = "fig16"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["mxq_seconds"] = round(mxq_seconds, 6)
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 6)
    benchmark.extra_info["normalized_vs_mxq"] = round(ratio, 2)
