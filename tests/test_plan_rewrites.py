"""The logical plan layer and its rewrite optimizer.

Covers the plan DAG (hash-consing), the three rewrite families — join
recognition, projection pushdown / dead-column pruning, common-subplan
sharing — and the observability hooks (explain counters, plan dumps) the
architecture documentation promises.
"""

import pytest

from repro import EngineOptions, MonetXQuery
from repro.relational import capture, optimize
from repro.relational.plan import PlanBuilder, count_references, render_plan
from repro.relational.rewrites import FULL_COLUMNS
from repro.xquery import parse, plan_module


class TestPlanBuilding:
    def test_hash_consing_shares_structurally_equal_nodes(self):
        builder = PlanBuilder()
        a = builder.node("step", (builder.node("root"),), axis="child",
                         test_name="site")
        b = builder.node("step", (builder.node("root"),), axis="child",
                         test_name="site")
        assert a is b

    def test_distinct_params_make_distinct_nodes(self):
        builder = PlanBuilder()
        a = builder.node("step", (builder.node("root"),), test_name="a")
        b = builder.node("step", (builder.node("root"),), test_name="b")
        assert a is not b

    def test_repeated_subexpression_has_refcount_two(self):
        module = parse("count(//person) + count(//person)")
        plan = plan_module(module)
        references = count_references([plan.body])
        shared = [node for node in plan.body.walk()
                  if references[node.id] > 1 and node.kind == "call"]
        assert len(shared) == 1

    def test_path_prefixes_are_shared(self):
        module = parse("count(/site/people/person/name)"
                       " + count(/site/people/person/address)")
        plan = plan_module(module)
        references = count_references([plan.body])
        prefix_steps = [node for node in plan.body.walk()
                        if node.kind == "step"
                        and node.p("test_name") == "person"]
        assert len(prefix_steps) == 1
        assert references[prefix_steps[0].id] == 2

    def test_render_plan_marks_shared_nodes(self):
        module = parse("count(//a) + count(//a)")
        plan = plan_module(module)
        references = count_references([plan.body])
        shared = {node.id for node in plan.body.walk()
                  if references[node.id] > 1}
        dump = render_plan(plan.body, shared=shared)
        assert "shared" in dump


class TestCommonSubplanSharing:
    def test_shared_aggregate_executes_once(self, engine):
        with capture() as trace:
            result = engine.query("count(//person) + count(//person)")
        assert result.items == [6]
        assert trace.count("plan.cse.reuse") == 1

    def test_sharing_disabled_recomputes(self, engine):
        options = engine.options.replace(subplan_sharing=False)
        with capture() as trace:
            result = engine.query("count(//person) + count(//person)",
                                  options=options)
        assert result.items == [6]
        assert trace.count("plan.cse.reuse") == 0

    def test_shared_path_under_one_loop_reuses_result(self, engine):
        query = ("for $p in /site/people/person "
                 "return count($p/profile/interest) "
                 "     + count($p/profile/interest)")
        with capture() as trace:
            result = engine.query(query)
        assert result.items == [2, 2, 0]
        assert trace.count("plan.cse.reuse") >= 1

    def test_constructors_are_never_shared(self, engine):
        # two structurally equal constructors must create two distinct nodes
        result = engine.query("(<x/>, <x/>)")
        assert len(result.items) == 2
        assert result.items[0] != result.items[1]

    def test_sharing_preserves_results(self, engine):
        queries = [
            "count(//person) + count(//person)",
            "sum(//price) + sum(//price)",
            "(count(/site/people/person), count(/site/people/person))",
        ]
        for query in queries:
            fast = engine.query(query).items
            slow = engine.query(
                query, options=engine.options.replace(subplan_sharing=False)).items
            assert fast == slow


class TestProjectionPushdown:
    def test_count_context_prunes_positions(self, engine):
        query = "count(for $p in /site/people/person return $p/name)"
        with capture() as trace:
            result = engine.query(query)
        assert result.items == [3]
        assert trace.count("project.pushdown") > 0

    def test_pushdown_disabled_keeps_renumbering(self, engine):
        query = "count(for $p in /site/people/person return $p/name)"
        options = engine.options.replace(projection_pushdown=False)
        with capture() as trace:
            result = engine.query(query, options=options)
        assert result.items == [3]
        assert trace.count("project.pushdown") == 0

    def test_pushdown_skips_rownum_operators(self, engine):
        query = "count(for $p in /site/people/person return $p/name)"
        with capture() as optimized:
            engine.query(query)
        with capture() as naive:
            engine.query(query, options=engine.options.replace(
                projection_pushdown=False))
        assert optimized.count("rownum.streaming") + \
            optimized.count("rownum.sorting") < \
            naive.count("rownum.streaming") + naive.count("rownum.sorting")

    def test_required_columns_annotated_on_plan(self, engine):
        prepared = engine.prepare(
            "count(for $p in /site/people/person return $p/name)")
        pruned = [node for node in prepared.plan.body.walk()
                  if prepared.plan.required_columns(node) != FULL_COLUMNS]
        assert pruned, "expected at least one operator with pruned columns"
        assert "cols=[iter,item]" in prepared.explain()

    def test_positional_predicates_keep_positions(self, engine):
        # bidder[1] addresses the pos column: the base must stay unpruned
        result = engine.query(
            "count(for $a in /site/open_auctions/open_auction "
            "return $a/bidder[1])")
        assert result.items == [1]

    def test_multi_part_binding_sequence_keeps_order(self, engine):
        # regression: the pruned union of a multi-part for-sequence must not
        # let stale per-branch pos values act as sort keys downstream
        result = engine.query("for $x in (1 to 3, 10 to 12) return $x")
        assert result.items == [1, 2, 3, 10, 11, 12]
        mixed = engine.query(
            "for $x in (/site/people/person, /site/regions//item) "
            "return $x/name/text()")
        assert mixed.strings() == \
            engine.query(
                "for $x in (/site/people/person, /site/regions//item) "
                "return $x/name/text()",
                options=engine.options.replace(
                    projection_pushdown=False)).strings()

    def test_pushdown_preserves_results(self, engine, xmark_engine):
        queries = [
            "count(//person)",
            "count(for $p in /site/people/person return $p/name)",
            "sum(for $a in /site/open_auctions/open_auction "
            "    return count($a/bidder))",
            "for $p in /site/people/person "
            "where count($p/profile) > 0 return $p/name/text()",
            "count(for $x in (1, 2, 3) return ($x, $x + 10))",
            "for $x in (1 to 3, 10 to 12) return $x * 2",
        ]
        for target in (engine, xmark_engine):
            for query in queries:
                fast = target.query(query).items
                slow = target.query(query, options=target.options.replace(
                    projection_pushdown=False)).items
                assert fast == slow


class TestJoinRecognitionRule:
    QUERY = ("for $p in /site/people/person "
             "for $c in /site/closed_auctions/closed_auction "
             "where $c/buyer/@person = $p/@id "
             "return $p/name/text()")

    def test_rule_fires_and_annotates_the_plan(self, engine):
        prepared = engine.prepare(self.QUERY)
        assert prepared.plan.report.fired("join-recognition")
        annotated = [node for node in prepared.plan.body.walk()
                     if node.kind == "flwor" and node.p("join") is not None]
        assert len(annotated) == 1
        assert "join-recognized" in prepared.explain()

    def test_rule_respects_engine_option(self, engine):
        options = engine.options.replace(join_recognition=False)
        prepared = engine.prepare(self.QUERY, options=options)
        assert not prepared.plan.report.fired("join-recognition")

    def test_join_plan_matches_nested_loop_results(self, engine):
        fast = engine.query(self.QUERY).strings()
        slow = engine.query(self.QUERY, options=engine.options.replace(
            join_recognition=False)).strings()
        assert fast == slow

    def test_dependent_inner_sequence_is_not_annotated(self, engine):
        # $p/profile depends on the outer binding: not loop-invariant
        prepared = engine.prepare(
            "for $p in /site/people/person "
            "for $i in $p/profile/interest "
            "where $i/@category = \"cat1\" "
            "return $p/name/text()")
        assert not prepared.plan.report.fired("join-recognition")

    def test_rule_fires_inside_global_declarations(self, engine):
        query = (
            "declare variable $buyers := "
            " for $p in /site/people/person "
            " for $c in /site/closed_auctions/closed_auction "
            " where $c/buyer/@person = $p/@id "
            " return $p; "
            "count($buyers)")
        prepared = engine.prepare(query)
        assert prepared.plan.report.fired("join-recognition")
        assert engine.query(query).items == \
            engine.query(query, options=engine.options.replace(
                join_recognition=False)).items


class TestPredicatePushdown:
    QUERY = ("for $c in /site/closed_auctions/closed_auction "
             "where $c/price >= 40 "
             "return $c/price/text()")

    def test_single_variable_conjunct_moves_into_the_clause(self, engine):
        prepared = engine.prepare(self.QUERY)
        assert prepared.plan.report.fired("predicate-pushdown")
        flwors = [node for node in prepared.plan.body.walk()
                  if node.kind == "flwor"]
        assert flwors and not flwors[0].p("has_where")
        for_clause = flwors[0].children[0]
        assert len(for_clause.children) == 2       # sequence + predicate
        assert "pushed-predicates=1" in prepared.explain()

    def test_pushdown_respects_the_option(self, engine):
        options = engine.options.replace(predicate_pushdown=False)
        prepared = engine.prepare(self.QUERY, options=options)
        assert not prepared.plan.report.fired("predicate-pushdown")

    def test_pushdown_preserves_results(self, engine):
        fast = engine.query(self.QUERY).strings()
        slow = engine.query(self.QUERY, options=engine.options.replace(
            predicate_pushdown=False)).strings()
        assert fast == slow == ["44", "99"]

    def test_runtime_trace_records_the_filter(self, engine):
        with capture() as trace:
            engine.query(self.QUERY)
        assert trace.count("predicate.pushdown") >= 1

    def test_multi_variable_conjunct_stays_in_where(self, engine):
        # $c/buyer/@person = $p/@id mentions two for variables: not pushable
        prepared = engine.prepare(
            "for $p in /site/people/person "
            "for $c in /site/closed_auctions/closed_auction "
            "where $c/buyer/@person = $p/@id "
            "return $p/name/text()")
        assert not prepared.plan.report.fired("predicate-pushdown")

    def test_position_variable_blocks_pushdown(self, engine):
        # filtering the binding would renumber the `at` positions
        query = ("for $c at $i in /site/closed_auctions/closed_auction "
                 "where $c/price >= 40 return $i")
        prepared = engine.prepare(query)
        assert not prepared.plan.report.fired("predicate-pushdown")
        assert engine.query(query).items == [1, 3]

    def test_let_variable_conjunct_is_not_pushed(self, engine):
        # a where conjunct on a let variable compares the *whole* sequence;
        # filtering its items would change the bound value
        query = ("for $p in /site/people/person "
                 "let $ids := $p/@id "
                 "where $ids = \"person0\" "
                 "return $p/name/text()")
        prepared = engine.prepare(query)
        assert not prepared.plan.report.fired("predicate-pushdown")
        assert engine.query(query).strings() == ["Alice"]

    def test_pushdown_shrinks_join_inputs(self, engine):
        # the pushed conjunct must filter the binding before the join runs
        query = ("for $p in /site/people/person "
                 "for $c in /site/closed_auctions/closed_auction "
                 "where $c/buyer/@person = $p/@id and $c/price >= 40 "
                 "return $p/name/text()")
        prepared = engine.prepare(query)
        assert prepared.plan.report.fired("predicate-pushdown")
        assert prepared.plan.report.fired("join-recognition")

        def join_input_rows(options):
            with capture() as trace:
                result = engine.query(query, options=options)
            rows = [entry.rows_in for entry in trace.entries
                    if entry.algorithm.startswith("existential.")]
            return result.strings(), rows

        fast, pushed_rows = join_input_rows(engine.options)
        slow, full_rows = join_input_rows(
            engine.options.replace(predicate_pushdown=False))
        assert fast == slow
        assert sum(pushed_rows) < sum(full_rows)


class TestCostBasedJoins:
    TWO_JOIN_QUERY = (
        "for $t in /site/closed_auctions/closed_auction "
        "for $p in /site/people/person "
        "for $i in /site/regions/europe/item "
        "where $p/@id = $t/buyer/@person and $i/@id = $t/itemref/@item "
        "return <r>{ $p/name/text() }{ $i/name/text() }</r>")

    def test_all_join_candidates_are_recognized(self, engine):
        prepared = engine.prepare(self.TWO_JOIN_QUERY)
        flwors = [node for node in prepared.plan.body.walk()
                  if node.kind == "flwor" and node.p("joins") is not None]
        assert len(flwors) == 1
        assert len(flwors[0].p("joins")) == 2
        assert prepared.explain().count("join-recognized") == 2

    def test_first_match_baseline_with_cost_disabled(self, engine):
        options = engine.options.replace(cost_based_joins=False)
        prepared = engine.prepare(self.TWO_JOIN_QUERY, options=options)
        flwors = [node for node in prepared.plan.body.walk()
                  if node.kind == "flwor" and node.p("join") is not None]
        assert len(flwors) == 1
        assert len(flwors[0].p("joins")) == 1

    def test_estimates_and_build_sides_annotated(self, engine):
        prepared = engine.prepare(self.TWO_JOIN_QUERY)
        flwor = next(node for node in prepared.plan.body.walk()
                     if node.kind == "flwor" and node.p("joins"))
        estimates = prepared.plan.join_estimates.get(flwor.id)
        assert estimates is not None and len(estimates) == 2
        for estimate in estimates:
            assert estimate.build_rows > 0
            assert estimate.build_side in ("binding", "outer")

    def test_smaller_build_side_ordered_first(self, xmark_engine):
        prepared = xmark_engine.prepare(self.TWO_JOIN_QUERY)
        flwor = next(node for node in prepared.plan.body.walk()
                     if node.kind == "flwor" and node.p("joins"))
        order = flwor.p("clause_order")
        if order is not None:
            estimates = {estimate.clause: estimate for estimate in
                         prepared.plan.join_estimates[flwor.id]}
            scheduled_joins = [index for index in order if index in estimates]
            builds = [estimates[index].build_rows for index in scheduled_joins]
            assert builds == sorted(builds)

    def test_reordered_execution_preserves_tuple_order(self, engine,
                                                       xmark_engine):
        for target in (engine, xmark_engine):
            fast = target.query(self.TWO_JOIN_QUERY).serialize()
            slow = target.query(
                self.TWO_JOIN_QUERY,
                options=target.options.replace(cost_based_joins=False)
            ).serialize()
            naive = target.query(
                self.TWO_JOIN_QUERY,
                options=target.options.replace(join_recognition=False)
            ).serialize()
            assert fast == slow == naive

    def test_one_to_many_joins_exercise_the_order_restore(self, engine):
        # != joins match many rows per outer iteration, so the reordered
        # schedule genuinely permutes the inner loop — the executor must
        # renumber it back into syntactic (t, p, i) tuple order
        query = ("for $t in /site/closed_auctions/closed_auction "
                 "for $p in /site/people/person "
                 "for $i in /site/regions/europe/item "
                 "where $p/@id != $t/buyer/@person "
                 "  and $i/@id != $t/itemref/@item "
                 "return <r>{ $p/name/text() }{ $i/name/text() }</r>")
        with capture() as trace:
            fast = engine.query(query).serialize()
        assert trace.count("join.order-restore") == 1
        naive = engine.query(query, options=engine.options.replace(
            join_recognition=False)).serialize()
        assert fast == naive

    def test_join_hoists_above_independent_driving_loop(self, engine):
        # the join's conjunct references only constants: it may execute
        # before the driving for clause, and the tuple order must survive
        query = ("for $x in (1, 2) "
                 "for $c in /site/closed_auctions/closed_auction "
                 "where $c/buyer/@person = \"person0\" "
                 "return <r x=\"{$x}\">{ $c/price/text() }</r>")
        fast = engine.query(query).serialize()
        slow = engine.query(query, options=engine.options.replace(
            join_recognition=False, cost_based_joins=False)).serialize()
        assert fast == slow


class TestRewriteAblations:
    QUERIES = [
        "count(//person)",
        "count(//person) + count(//person)",
        "count(for $p in /site/people/person return $p/name)",
        "for $x in (3, 1, 2) order by $x return $x",
        "for $p in /site/people/person "
        "let $t := for $c in /site/closed_auctions/closed_auction "
        "          where $c/buyer/@person = $p/@id return $c "
        "return count($t)",
    ]

    @pytest.mark.parametrize("flag", ["projection_pushdown", "subplan_sharing",
                                      "predicate_pushdown", "cost_based_joins"])
    @pytest.mark.parametrize("query", QUERIES)
    def test_new_flags_preserve_semantics(self, engine, flag, query):
        expected = engine.query(query).items
        options = engine.options.replace(**{flag: False})
        assert engine.query(query, options=options).items == expected

    def test_optimize_reports_are_deterministic(self):
        module = parse("count(//a) + count(//a)")
        first = optimize(plan_module(module), EngineOptions())
        second = optimize(plan_module(module), EngineOptions())
        assert first.report.entries == second.report.entries
