"""Column and table properties used by the peephole optimizer.

Section 4.1 of the paper defines a small set of properties that the
property-driven peephole optimization stage maintains on intermediate
relational results:

``dense(c)``
    column *c* is a densely increasing integer sequence ``base, base+1, ...``
``key(c)``
    column *c* contains no duplicate values
``const(c = v)``
    column *c* carries the constant value *v* in every row
``ord([c1, ..., cn])``
    the table is lexicographically ordered on the listed columns
``grpord([ci], g)``
    within every group of rows sharing the same value in column *g*, the rows
    are ordered on the listed columns (groups need not be clustered)
``indep({ci})``
    the table's contents do not depend on the listed columns (used by join
    recognition at the compiler level)

In MonetDB the properties live on (materialised) intermediate results; we
mirror that by attaching a :class:`ColumnProps` to every column of a
:class:`~repro.relational.table.Table` and an ordering description to the
table itself.  Operators propagate the properties so that later operators can
pick cheaper physical algorithms (positional lookup, merge instead of hash,
skipped sorts, streaming DENSE_RANK).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence


_MISSING = object()


@dataclass
class ColumnProps:
    """Per-column properties tracked on intermediate results."""

    #: column is ``base, base+1, base+2, ...`` (implies ``key``)
    dense: bool = False
    #: first value of a dense column (only meaningful when ``dense`` is True)
    dense_base: int = 0
    #: column holds no duplicate values
    key: bool = False
    #: column holds a single constant value in every row
    const: bool = False
    #: the constant value (only meaningful when ``const`` is True)
    const_value: Any = None

    def copy(self) -> "ColumnProps":
        return replace(self)

    def weakened(self) -> "ColumnProps":
        """Return a copy with all properties dropped (safe default)."""
        return ColumnProps()

    def describe(self) -> str:
        parts = []
        if self.dense:
            parts.append(f"dense(base={self.dense_base})")
        if self.key:
            parts.append("key")
        if self.const:
            parts.append(f"const({self.const_value!r})")
        return ",".join(parts) if parts else "-"


@dataclass
class GroupOrder:
    """A ``grpord([cols], group)`` property: per-group secondary ordering."""

    columns: tuple[str, ...]
    group: str

    def renamed(self, mapping: dict[str, str]) -> "GroupOrder | None":
        """Translate through a column renaming; drop if any column vanishes."""
        if self.group not in mapping:
            return None
        cols = []
        for col in self.columns:
            if col not in mapping:
                return None
            cols.append(mapping[col])
        return GroupOrder(tuple(cols), mapping[self.group])


@dataclass
class TableProps:
    """Table-level ordering properties."""

    #: lexicographic ordering of the whole table (``ord`` in the paper)
    order: tuple[str, ...] = ()
    #: secondary, per-group orderings (``grpord`` in the paper)
    group_orders: tuple[GroupOrder, ...] = ()

    def copy(self) -> "TableProps":
        return TableProps(order=tuple(self.order),
                          group_orders=tuple(self.group_orders))

    def ordered_on(self, columns: Sequence[str]) -> bool:
        """True if the table is known to be ordered on the given prefix."""
        columns = tuple(columns)
        return self.order[: len(columns)] == columns

    def group_ordered_on(self, columns: Sequence[str], group: str) -> bool:
        """True if a matching ``grpord`` property is known."""
        columns = tuple(columns)
        if self.ordered_on((group, *columns)):
            return True
        for grpord in self.group_orders:
            if grpord.group == group and grpord.columns[: len(columns)] == columns:
                return True
        return False

    def describe(self) -> str:
        parts = []
        if self.order:
            parts.append("ord[" + ",".join(self.order) + "]")
        for grpord in self.group_orders:
            parts.append(
                "grpord[" + ",".join(grpord.columns) + f"/{grpord.group}]")
        return " ".join(parts) if parts else "-"


def is_dense_sequence(values: Iterable[int]) -> tuple[bool, int]:
    """Check whether ``values`` is a dense integer sequence.

    Returns ``(True, base)`` when the values are ``base, base+1, ...`` and
    ``(False, 0)`` otherwise.  An empty sequence counts as dense with base 0.
    """
    if isinstance(values, range):
        # virtual dense columns answer without a scan
        if len(values) == 0:
            return True, 0
        if values.step == 1:
            return True, values.start
        return (True, values.start) if len(values) == 1 else (False, 0)
    base = 0
    expected = _MISSING
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool):
            return False, 0
        if expected is _MISSING:
            base = value
            expected = value + 1
        else:
            if value != expected:
                return False, 0
            expected += 1
    return True, base


def infer_column_props(values: Sequence[Any]) -> ColumnProps:
    """Derive :class:`ColumnProps` by inspecting actual column values.

    This is the "measurement" path used when a column is created from raw
    data (e.g. document encoding tables created by the shredder) rather than
    derived through operators that propagate properties analytically.
    """
    props = ColumnProps()
    if not len(values):
        props.dense = True
        props.key = True
        props.const = False
        return props
    dense, base = is_dense_sequence(values)
    if dense:
        props.dense = True
        props.dense_base = base
        props.key = True
        return props
    try:
        unique = len(set(values)) == len(values)
    except TypeError:  # unhashable items: give up on key inference
        unique = False
    props.key = unique
    first = values[0]
    if all(value == first for value in values):
        props.const = True
        props.const_value = first
    return props
