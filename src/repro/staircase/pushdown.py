"""Nametest / predicate pushdown variants of the loop-lifted staircase join.

Section 3.2: instead of applying a name test (or a more general predicate)
as a post-filter on the full step result, the predicate can be evaluated on
the whole document first — typically answered by the element-name index of
the document container — and the location step is then executed only against
this *candidate list*.  Result generation checks membership in the candidate
list via a two-way merge, and the skipping logic can jump over context nodes
that can never reach the next candidate.

This pays off whenever the name test is more selective than the pure
location step (e.g. the descendant steps from the document root in XMark
Q6/Q7, where without pushdown the step would materialise almost the whole
document).
"""

from __future__ import annotations

import bisect

from ..xml.document import DocumentContainer
from .axes import Axis, NodeTest
from .iterative import StaircaseStats
from .loop_lifted import (ContextPairs, ResultPairs, ancestor_stack_scan,
                          ll_attribute, loop_lifted_step, normalize_context)


def candidate_list(container: DocumentContainer, node_test: NodeTest) -> list[int] | None:
    """The document-ordered candidate pre list for a node test.

    Returns ``None`` when no index-backed candidate list is available (no
    name test, or a non-element kind test) — callers then fall back to the
    post-filter strategy.
    """
    if node_test is None or not node_test.has_name or node_test.kind != "element":
        return None
    return container.candidates_by_name(node_test.name)


def ll_child_pushdown(container: DocumentContainer, context: ContextPairs,
                      candidates: list[int], *,
                      stats: StaircaseStats | None = None,
                      normalized: bool = False) -> ResultPairs:
    """Loop-lifted child step against a sorted candidate list.

    For every (outermost-per-iteration) context node the candidates falling
    inside its subtree are located with a range lookup; a candidate is a
    child iff its level is one below the context node's level.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    result: ResultPairs = []
    size = container.size
    level = container.level
    for pre, iteration in context:
        stats.touch()
        end = pre + size[pre]
        child_level = level[pre] + 1
        start = bisect.bisect_right(candidates, pre)
        position = start
        while position < len(candidates) and candidates[position] <= end:
            candidate = candidates[position]
            stats.touch()
            if level[candidate] == child_level:
                result.append((iteration, candidate))
            position += 1
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def ll_descendant_pushdown(container: DocumentContainer, context: ContextPairs,
                           candidates: list[int], *, or_self: bool = False,
                           stats: StaircaseStats | None = None,
                           normalized: bool = False) -> ResultPairs:
    """Loop-lifted descendant(-or-self) step against a sorted candidate list.

    Per iteration the context nodes are pruned to their outermost
    representatives; each surviving context contributes the candidates inside
    its pre range, located by binary search (skipping over candidate-free
    document regions entirely).
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size

    # prune per iteration: keep only context nodes not covered by an earlier
    # context node of the same iteration
    covered_until: dict[int, int] = {}
    pruned: ContextPairs = []
    for pre, iteration in context:
        end = covered_until.get(iteration, -1)
        if pre <= end:
            stats.contexts_pruned += 1
            continue
        pruned.append((pre, iteration))
        covered_until[iteration] = pre + size[pre]

    result: ResultPairs = []
    for pre, iteration in pruned:
        stats.touch()
        low = pre if or_self else pre + 1
        high = pre + size[pre]
        start = bisect.bisect_left(candidates, low)
        position = start
        while position < len(candidates) and candidates[position] <= high:
            stats.touch()
            result.append((iteration, candidates[position]))
            position += 1
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def ll_following_pushdown(container: DocumentContainer, context: ContextPairs,
                          candidates: list[int], *,
                          stats: StaircaseStats | None = None,
                          normalized: bool = False) -> ResultPairs:
    """Loop-lifted following step against a sorted candidate list.

    Per iteration the following window is everything after the earliest
    context subtree end; one ``bisect`` finds the matching candidate
    suffix — no document scan, no post-filter.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    bound: dict[int, int] = {}          # iteration -> min subtree end
    for pre, iteration in context:
        end = pre + size[pre]
        if iteration not in bound or end < bound[iteration]:
            bound[iteration] = end
    result: ResultPairs = []
    for iteration, end in bound.items():
        start = bisect.bisect_right(candidates, end)
        stats.touch(len(candidates) - start)
        result.extend((iteration, candidate)
                      for candidate in candidates[start:])
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def ll_preceding_pushdown(container: DocumentContainer, context: ContextPairs,
                          candidates: list[int], *,
                          stats: StaircaseStats | None = None,
                          normalized: bool = False) -> ResultPairs:
    """Loop-lifted preceding step against a sorted candidate list.

    Per iteration only candidates before the latest context pre can
    qualify (one ``bisect``), and of those only the non-ancestors — the
    ``end < bound`` filter drops the O(depth) ancestors of the bound node.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    bound: dict[int, int] = {}          # iteration -> max context pre
    for pre, iteration in context:
        if iteration not in bound or pre > bound[iteration]:
            bound[iteration] = pre
    result: ResultPairs = []
    for iteration, limit in bound.items():
        stop = bisect.bisect_left(candidates, limit)
        stats.touch(stop)
        result.extend((iteration, candidate)
                      for candidate in candidates[:stop]
                      if candidate + size[candidate] < limit)
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def ll_sibling_pushdown(container: DocumentContainer, context: ContextPairs,
                        candidates: list[int], *, following: bool,
                        stats: StaircaseStats | None = None,
                        normalized: bool = False) -> ResultPairs:
    """Loop-lifted sibling steps against a sorted candidate list.

    Parents come from the one-pass ancestor-stack scan; context nodes
    sharing a parent within an iteration collapse to one representative
    (earliest for following-sibling, latest for preceding-sibling).  The
    candidates inside the sibling window are located by binary search; a
    candidate is a sibling iff its level equals the context level —
    within the parent's subtree that pins it to the child level.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size
    level = container.level
    groups: dict[tuple[int, int, int], int] = {}
    for pre, iterations, stack in ancestor_stack_scan(container, context):
        stats.touch()
        if not stack:
            continue                    # document root: no siblings
        parent, parent_end = stack[-1]
        for iteration in iterations:
            key = (parent, parent_end, iteration)
            if following:
                groups.setdefault(key, pre)
            else:
                groups[key] = pre
    result: ResultPairs = []
    for (parent, parent_end, iteration), pre in groups.items():
        sibling_level = level[pre]
        if following:
            low = bisect.bisect_right(candidates, pre + size[pre])
            high = bisect.bisect_right(candidates, parent_end)
        else:
            low = bisect.bisect_right(candidates, parent)
            high = bisect.bisect_left(candidates, pre)
        for candidate in candidates[low:high]:
            stats.touch()
            if level[candidate] == sibling_level:
                result.append((iteration, candidate))
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def loop_lifted_step_pushdown(container: DocumentContainer, context: ContextPairs,
                              axis: Axis, node_test: NodeTest | None, *,
                              stats: StaircaseStats | None = None,
                              normalized: bool = False) -> ResultPairs | None:
    """Pushdown-enabled location step.

    Returns ``None`` when pushdown is not applicable for the axis/node-test
    combination, in which case the caller should use the post-filter variant
    (:func:`repro.staircase.loop_lifted.loop_lifted_step`).  The self,
    parent and ancestor axes stay on the post-filter path: their result
    is bounded by the context (times depth) already, so the candidate
    merge buys nothing.  As with the plain array producers,
    ``normalized=True`` promises the context is already sorted on
    ``[pre, iter]`` and duplicate free.
    """
    candidates = candidate_list(container, node_test) if node_test else None
    if candidates is None:
        return None
    if axis is Axis.CHILD:
        return ll_child_pushdown(container, context, candidates, stats=stats,
                                 normalized=normalized)
    if axis is Axis.DESCENDANT:
        return ll_descendant_pushdown(container, context, candidates,
                                      stats=stats, normalized=normalized)
    if axis is Axis.DESCENDANT_OR_SELF:
        return ll_descendant_pushdown(container, context, candidates,
                                      or_self=True, stats=stats,
                                      normalized=normalized)
    if axis is Axis.FOLLOWING:
        return ll_following_pushdown(container, context, candidates,
                                     stats=stats, normalized=normalized)
    if axis is Axis.PRECEDING:
        return ll_preceding_pushdown(container, context, candidates,
                                     stats=stats, normalized=normalized)
    if axis is Axis.FOLLOWING_SIBLING:
        return ll_sibling_pushdown(container, context, candidates,
                                   following=True, stats=stats,
                                   normalized=normalized)
    if axis is Axis.PRECEDING_SIBLING:
        return ll_sibling_pushdown(container, context, candidates,
                                   following=False, stats=stats,
                                   normalized=normalized)
    return None
