"""Shared benchmark fixtures.

All benchmarks run on generated XMark documents at small scale factors —
absolute times are meaningless for a pure-Python engine, the *shapes*
(relative speedups, linear vs. quadratic growth, who wins) are what each
benchmark regenerates.  Scale factors can be raised via the environment
variable ``REPRO_BENCH_SCALE`` for longer runs.

Every benchmark module additionally emits a machine-readable
``benchmarks/results/BENCH_<module>.json`` artifact at session end (one
record per pytest-benchmark measurement, plus whatever a module writes
itself through :func:`write_bench_json`), so the perf trajectory of the
engine is recorded run over run and can be archived by CI.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro import EngineOptions, MonetXQuery
from repro.xmark import generate_document


BASE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))
SEED = 42

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one ``BENCH_<name>.json`` artifact under ``benchmarks/results``.

    The envelope records scale factor, python version and timestamp so
    artifacts from different runs/machines remain comparable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "scale": BASE_SCALE,
        "python": platform.python_version(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Dump every pytest-benchmark measurement grouped per bench module."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    per_module: dict[str, list[dict]] = {}
    for bench in getattr(bench_session, "benchmarks", ()):
        try:
            module = Path(bench.fullname.split("::", 1)[0]).stem
            module = module.removeprefix("bench_")
            stats = bench.stats.stats if hasattr(bench.stats, "stats") \
                else bench.stats
            entry = {
                "name": bench.name,
                "group": bench.group,
                "mean_s": getattr(stats, "mean", None),
                "stddev_s": getattr(stats, "stddev", None),
                "min_s": getattr(stats, "min", None),
                "rounds": getattr(stats, "rounds", None),
                "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
            }
        except Exception:       # pragma: no cover - defensive vs. plugin API
            continue
        per_module.setdefault(module, []).append(entry)
    for module, entries in per_module.items():
        write_bench_json(module, {"benchmarks": entries})


def build_engine(scale: float, options: EngineOptions | None = None) -> MonetXQuery:
    engine = MonetXQuery(options=options)
    engine.load_document_text(generate_document(scale, SEED), name="auction.xml")
    return engine


@pytest.fixture(scope="session")
def xmark_scale() -> float:
    return BASE_SCALE


@pytest.fixture(scope="session")
def xmark_engine() -> MonetXQuery:
    """One shared engine over the base-scale XMark document."""
    return build_engine(BASE_SCALE)


@pytest.fixture(scope="session")
def xmark_document_text() -> str:
    return generate_document(BASE_SCALE, SEED)
