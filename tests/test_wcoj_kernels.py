"""Property tests for the WCOJ kernels: gallop search, run intersection,
the generic join driver and the sort-based existential equi-join."""

from array import array
from bisect import bisect_left

from hypothesis import given, strategies as st

from repro.relational import capture
from repro.relational.sorting import (argsort_ints, gallop, gallop_intersect,
                                      intersect_runs)
from repro.relational.wcoj import JoinAttribute, eq_join_pairs, generic_join


sorted_buffers = st.lists(st.integers(-50, 50), max_size=60).map(sorted)


# --------------------------------------------------------------------------- #
# gallop search
# --------------------------------------------------------------------------- #
class TestGallop:
    def test_empty_buffer(self):
        assert gallop(array("q"), 5) == 0

    def test_single_element(self):
        assert gallop(array("q", [3]), 2) == 0
        assert gallop(array("q", [3]), 3) == 0
        assert gallop(array("q", [3]), 4) == 1

    def test_duplicates_find_first(self):
        buffer = array("q", [1, 2, 2, 2, 5])
        assert gallop(buffer, 2) == 1
        assert gallop(buffer, 3) == 4

    def test_respects_lower_bound(self):
        buffer = array("q", [1, 2, 2, 2, 5])
        assert gallop(buffer, 2, lo=3) == 3
        assert gallop(buffer, 2, lo=4) == 4


@given(sorted_buffers, st.integers(-60, 60),
       st.integers(0, 60))
def test_gallop_matches_bisect_left(values, target, lo):
    lo = min(lo, len(values))
    buffer = array("q", values)
    assert gallop(buffer, target, lo) == bisect_left(buffer, target, lo)


# --------------------------------------------------------------------------- #
# gallop intersection and run alignment
# --------------------------------------------------------------------------- #
class TestIntersect:
    def test_empty_sides(self):
        assert gallop_intersect(array("q"), array("q", [1, 2])) == []
        assert gallop_intersect(array("q", [1, 2]), array("q")) == []

    def test_single_elements(self):
        assert gallop_intersect(array("q", [7]), array("q", [7])) == [7]
        assert gallop_intersect(array("q", [7]), array("q", [8])) == []

    def test_duplicates_collapse(self):
        left = array("q", [1, 1, 1, 2, 9, 9])
        right = array("q", [1, 2, 2, 9])
        assert gallop_intersect(left, right) == [1, 2, 9]

    def test_runs_carry_boundaries(self):
        left = array("q", [1, 1, 3, 5, 5, 5])
        right = array("q", [1, 5, 5, 8])
        assert intersect_runs(left, right) == [
            (1, 0, 2, 0, 1), (5, 3, 6, 1, 3)]


@given(sorted_buffers, sorted_buffers)
def test_gallop_intersect_matches_set_intersection(left, right):
    result = gallop_intersect(array("q", left), array("q", right))
    assert result == sorted(set(left) & set(right))


@given(sorted_buffers, sorted_buffers)
def test_intersect_runs_covers_every_common_value(left, right):
    left_buffer, right_buffer = array("q", left), array("q", right)
    runs = intersect_runs(left_buffer, right_buffer)
    assert [run[0] for run in runs] == sorted(set(left) & set(right))
    for value, left_lo, left_hi, right_lo, right_hi in runs:
        # each half-open range is exactly the run of `value` on that side
        assert set(left_buffer[left_lo:left_hi]) == {value}
        assert left.count(value) == left_hi - left_lo
        assert set(right_buffer[right_lo:right_hi]) == {value}
        assert right.count(value) == right_hi - right_lo


@given(st.lists(st.integers(-100, 100), max_size=50))
def test_argsort_is_a_stable_sorting_permutation(values):
    order = argsort_ints(array("q", values))
    assert sorted(order) == list(range(len(values)))
    assert [values[i] for i in order] == sorted(values)


# --------------------------------------------------------------------------- #
# the generic join driver
# --------------------------------------------------------------------------- #
def _attribute(left_rel, right_rel, left_values, right_values):
    """A JoinAttribute over single-valued numeric relations."""
    attribute = JoinAttribute(left_rel, right_rel)
    for values in (left_values, right_values):
        attribute.add_side(
            (attribute.intern(("n", value), numeric=True), index, True)
            for index, value in enumerate(values))
    return attribute


class TestGenericJoin:
    def test_two_way_matches_nested_loop(self):
        left, right = [1, 2, 2, 5], [2, 5, 5, 7]
        expected = {(i, j) for i, lv in enumerate(left)
                    for j, rv in enumerate(right) if lv == rv}
        attribute = _attribute(0, 1, left, right)
        assert generic_join([len(left), len(right)], [attribute]) == expected

    def test_empty_relation_short_circuits(self):
        attribute = _attribute(0, 1, [1], [])
        assert generic_join([1, 0], [attribute]) == set()

    def test_triangle_matches_nested_loop(self):
        r = [(1, 10), (2, 10), (3, 20)]          # (x, y)
        s = [(10, 7), (20, 8), (20, 9)]          # (y, z)
        t = [(7, 1), (8, 3), (9, 9)]             # (z, x)
        expected = {(i, j, k)
                    for i, (rx, ry) in enumerate(r)
                    for j, (sy, sz) in enumerate(s)
                    for k, (tz, tx) in enumerate(t)
                    if ry == sy and sz == tz and tx == rx}
        assert expected                          # the shape is non-trivial
        attributes = [
            _attribute(0, 1, [ry for _, ry in r], [sy for sy, _ in s]),
            _attribute(1, 2, [sz for _, sz in s], [tz for tz, _ in t]),
            _attribute(2, 0, [tx for _, tx in t], [rx for rx, _ in r]),
        ]
        assert generic_join([3, 3, 3], attributes) == expected

    def test_cast_pairs_only_match_genuine_numerics(self):
        # per-pair typing: a cast key ("1" read as 1.0) pairs with a
        # genuinely numeric 1 but never with another cast
        attribute = JoinAttribute(0, 1)
        attribute.add_side([            # left: item 0 genuine 1, item 1 cast
            (attribute.intern(("n", 1.0), numeric=True), 0, True),
            (attribute.intern(("n", 1.0), numeric=True), 1, False),
        ])
        attribute.add_side([            # right: item 0 cast, item 1 genuine
            (attribute.intern(("n", 1.0), numeric=True), 0, False),
            (attribute.intern(("n", 1.0), numeric=True), 1, True),
        ])
        assert generic_join([2, 2], [attribute]) == {
            (0, 0), (0, 1), (1, 1)}    # cast x cast (1, 0) is excluded


@given(st.lists(st.integers(0, 4), min_size=1, max_size=8),
       st.lists(st.integers(0, 4), min_size=1, max_size=8),
       st.lists(st.integers(0, 4), min_size=1, max_size=8))
def test_generic_join_triangle_matches_nested_loop(xs, ys, zs):
    """Random triangle R(a)=S(a), S(b)=T(b), T(c)=R(c) over tiny domains
    (every relation single-valued per attribute, so relation i's attribute
    values are derived from its item index)."""
    r = [(value, index % 3) for index, value in enumerate(xs)]   # (a, c)
    s = [(value, index % 3) for index, value in enumerate(ys)]   # (a, b)
    t = [(value, index % 3) for index, value in enumerate(zs)]   # (b, c)
    expected = {(i, j, k)
                for i, (ra, rc) in enumerate(r)
                for j, (sa, sb) in enumerate(s)
                for k, (tb, tc) in enumerate(t)
                if ra == sa and sb == tb and tc == rc}
    attributes = [
        _attribute(0, 1, [ra for ra, _ in r], [sa for sa, _ in s]),
        _attribute(1, 2, [sb for _, sb in s], [tb for tb, _ in t]),
        _attribute(2, 0, [tc for _, tc in t], [rc for _, rc in r]),
    ]
    assert generic_join([len(r), len(s), len(t)], attributes) == expected


# --------------------------------------------------------------------------- #
# the sort-based existential equi-join
# --------------------------------------------------------------------------- #
class TestEqJoinPairs:
    def test_duplicate_groups_deduplicate(self):
        left = [(1, "a"), (1, "a"), (2, "a")]
        right = [(9, "a"), (9, "b")]
        assert eq_join_pairs(left, right) == [(1, 9), (2, 9)]

    def test_numeric_unification_matches_hash_buckets(self):
        # dict-bucket semantics: 1 == 1.0 (Python value equality)
        assert eq_join_pairs([(1, 1)], [(2, 1.0)]) == [(1, 2)]

    def test_records_the_vectorized_trace(self):
        with capture() as trace:
            eq_join_pairs([(1, "x")], [(2, "x")])
        assert trace.count("join.sort-runs") == 1


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 6)), max_size=30),
       st.lists(st.tuples(st.integers(0, 5), st.integers(0, 6)), max_size=30))
def test_eq_join_pairs_matches_nested_loop(left, right):
    expected = sorted({(lg, rg) for lg, lv in left
                       for rg, rv in right if lv == rv})
    assert eq_join_pairs(left, right) == expected
